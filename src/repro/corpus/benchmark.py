"""Query/answer benchmark generation (the MS MARCO stand-in).

The paper scores search quality on MS MARCO: real queries, each with a
human-chosen best document, measured by MRR@100 (SS8.1-8.2).  We
generate the analogous artifact from the synthetic corpus: each query
targets a known document and belongs to one of three families that
mirror the paper's qualitative findings:

* ``conceptual`` -- words sampled from the target's *topics* (mostly
  not verbatim from the document): where embeddings shine;
* ``lexical`` -- words sampled from the document itself: where exact
  matching (tf-idf / BM25) is strongest;
* ``exact`` -- the document's unique entity string (phone number or
  address): where the paper says Tiptoe performs worst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.synthetic import SyntheticCorpus

FAMILIES = ("conceptual", "lexical", "exact")


@dataclass(frozen=True)
class Query:
    """One benchmark query with its ground-truth best document."""

    text: str
    target_doc_id: int
    family: str


@dataclass
class QueryBenchmark:
    """A set of labeled queries over one corpus."""

    queries: list[Query]

    @classmethod
    def generate(
        cls,
        corpus: SyntheticCorpus,
        num_queries: int,
        rng: np.random.Generator,
        family_weights: dict[str, float] | None = None,
        query_length: tuple[int, int] = (4, 9),
    ) -> "QueryBenchmark":
        """Sample queries; the target is always a real corpus document."""
        # MS MARCO queries are mostly natural-language questions --
        # topical paraphrases of their answer document -- with a
        # minority of verbatim-keyword and exact-string lookups.
        weights = family_weights or {
            "conceptual": 0.75,
            "lexical": 0.15,
            "exact": 0.1,
        }
        unknown = set(weights) - set(FAMILIES)
        if unknown:
            raise ValueError(f"unknown query families: {unknown}")
        names = list(weights)
        probs = np.array([weights[n] for n in names], dtype=np.float64)
        probs /= probs.sum()
        with_entities = corpus.documents_with_entities()
        queries: list[Query] = []
        while len(queries) < num_queries:
            family = names[int(rng.choice(len(names), p=probs))]
            if family == "exact":
                if not with_entities:
                    continue
                doc = with_entities[int(rng.integers(len(with_entities)))]
                queries.append(
                    Query(text=doc.entity, target_doc_id=doc.doc_id, family="exact")
                )
                continue
            doc = corpus.documents[int(rng.integers(corpus.num_docs))]
            length = int(rng.integers(*query_length))
            if family == "conceptual":
                text = cls._conceptual_text(corpus, doc, length, rng)
            else:
                text = cls._lexical_text(doc, length, rng)
            if not text:
                continue
            queries.append(
                Query(text=text, target_doc_id=doc.doc_id, family=family)
            )
        return cls(queries=queries)

    @staticmethod
    def _conceptual_text(corpus, doc, length, rng) -> str:
        """Paraphrase: sample fresh words from the document's topics."""
        word_dist = doc.topic_mixture @ corpus.topic_word_dists
        total = word_dist.sum()
        if total <= 0:
            return ""
        ids = rng.choice(len(corpus.vocabulary), size=length, p=word_dist / total)
        return " ".join(corpus.vocabulary[i] for i in ids)

    @staticmethod
    def _lexical_text(doc, length, rng) -> str:
        """Sample words verbatim from the document."""
        words = [w for w in doc.text.split() if len(w) > 1]
        if not words:
            return ""
        picks = rng.choice(len(words), size=min(length, len(words)), replace=False)
        return " ".join(words[i] for i in sorted(picks))

    def __len__(self) -> int:
        return len(self.queries)

    def by_family(self, family: str) -> list[Query]:
        return [q for q in self.queries if q.family == family]

    def family_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for q in self.queries:
            counts[q.family] = counts.get(q.family, 0) + 1
        return counts
