"""Simulated caption/image corpus for text-to-image search (SS8.3).

Stands in for LAION-400M (DESIGN.md substitution 5).  Every image is a
latent topic vector pushed through a fixed random modality map (plus
per-image noise); its caption is text generated from the same topic
mixture.  A text query about a topic therefore genuinely retrieves the
images *about* that topic, once the joint embedder has aligned the two
modalities -- the same property CLIP provides the paper.

Per SS8.1, the image corpus is 1.2x larger than the text corpus and
uses 2x larger embeddings; callers control both ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig


@dataclass(frozen=True)
class ImageDoc:
    """One image: a latent vector, its caption, and its URL."""

    image_id: int
    caption: str
    url: str
    latent: np.ndarray


@dataclass
class ImageCorpus:
    """A generated image corpus with caption ground truth."""

    images: list[ImageDoc]
    latent_dim: int

    @classmethod
    def generate(
        cls,
        num_images: int,
        latent_dim: int = 32,
        text_config: SyntheticCorpusConfig | None = None,
        noise: float = 0.05,
        seed: int = 0,
    ) -> "ImageCorpus":
        """Generate images from a fresh synthetic "caption corpus"."""
        config = text_config or SyntheticCorpusConfig(
            num_docs=num_images, seed=seed
        )
        if config.num_docs != num_images:
            raise ValueError("text_config.num_docs must equal num_images")
        corpus = SyntheticCorpus.generate(config)
        rng = np.random.default_rng(seed + 1)
        # A fixed linear map from topic space to "pixel-latent" space.
        modality_map = rng.standard_normal((config.num_topics, latent_dim))
        images = []
        for doc in corpus.documents:
            latent = doc.topic_mixture @ modality_map
            latent = latent + noise * rng.standard_normal(latent_dim)
            images.append(
                ImageDoc(
                    image_id=doc.doc_id,
                    caption=doc.text,
                    url=doc.url.replace("https://", "https://img."),
                    latent=latent,
                )
            )
        return cls(images=images, latent_dim=latent_dim)

    @property
    def num_images(self) -> int:
        return len(self.images)

    def captions(self) -> list[str]:
        return [im.caption for im in self.images]

    def urls(self) -> list[str]:
        return [im.url for im in self.images]

    def latent_matrix(self) -> np.ndarray:
        return np.stack([im.latent for im in self.images])
