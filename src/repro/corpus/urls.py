"""URL batching, content grouping, and compression (SS5).

SimplePIR serves ~40 KiB chunks, so Tiptoe packs ~880 URLs into each
record: URLs are *grouped by content* (documents from the same cluster
land in the same batch), overlong URLs (> 500 chars) are dropped, and
each batch is zlib-compressed -- bringing the average URL down to ~22
bytes.  Retrieving the single batch containing the best match then
usually also yields the other top matches' URLs (Fig. 9, steps 3-4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

MAX_URL_CHARS = 500


@dataclass(frozen=True)
class UrlBatch:
    """One compressed batch of (doc_id, url) pairs."""

    payload: bytes
    doc_ids: tuple[int, ...]

    def decompress(self) -> dict[int, str]:
        lines = zlib.decompress(self.payload).decode().splitlines()
        out: dict[int, str] = {}
        for line in lines:
            doc_id, url = line.split(" ", 1)
            out[int(doc_id)] = url
        return out

    def compressed_bytes(self) -> int:
        return len(self.payload)


@dataclass
class UrlBatcher:
    """Builds content-grouped, compressed URL batches."""

    batch_size: int = 880

    def build_batches(
        self,
        urls: list[str],
        grouping: list[list[int]] | None = None,
    ) -> tuple[list[UrlBatch], list[int]]:
        """Return (batches, doc_to_batch).

        ``grouping`` is an ordered partition of document ids (e.g. the
        ranking service's cluster assignments); consecutive documents
        of one group go to the same batch.  Without it, documents are
        batched in id order (the Fig. 9 step-3 ablation).  Documents
        whose URL exceeds 500 characters are dropped from batches (the
        paper drops them outright); their ``doc_to_batch`` entry is -1.
        Documents appearing in several groups are batched once, at
        their first occurrence.
        """
        order: list[int] = []
        seen: set[int] = set()
        if grouping is None:
            order = list(range(len(urls)))
        else:
            for group in grouping:
                for doc in group:
                    if doc not in seen:
                        seen.add(doc)
                        order.append(doc)
            if len(order) != len(urls):
                missing = set(range(len(urls))) - set(order)
                order.extend(sorted(missing))
        kept = [d for d in order if len(urls[d]) <= MAX_URL_CHARS]
        doc_to_batch = [-1] * len(urls)
        batches: list[UrlBatch] = []
        for start in range(0, len(kept), self.batch_size):
            chunk = kept[start : start + self.batch_size]
            lines = "\n".join(f"{d} {urls[d]}" for d in chunk)
            payload = zlib.compress(lines.encode(), level=9)
            for d in chunk:
                doc_to_batch[d] = len(batches)
            batches.append(UrlBatch(payload=payload, doc_ids=tuple(chunk)))
        return batches, doc_to_batch

    def build_positional_batches(
        self, urls_in_layout_order: list[str]
    ) -> list[UrlBatch]:
        """Batch URLs keyed by their *position* in a fixed layout.

        Tiptoe's client never learns global document ids from the
        ranking step -- only (cluster, row) positions.  Because the URL
        layout mirrors the ranking layout, position ``i`` always lands
        in batch ``i // batch_size``, which the client can compute from
        the cluster-size metadata alone.  Overlong URLs are blanked
        (not removed) so positions stay stable.
        """
        batches: list[UrlBatch] = []
        for start in range(0, len(urls_in_layout_order), self.batch_size):
            chunk = urls_in_layout_order[start : start + self.batch_size]
            lines = "\n".join(
                f"{start + i} {url if len(url) <= MAX_URL_CHARS else ''}"
                for i, url in enumerate(chunk)
            )
            payload = zlib.compress(lines.encode(), level=9)
            batches.append(
                UrlBatch(
                    payload=payload,
                    doc_ids=tuple(range(start, start + len(chunk))),
                )
            )
        return batches

    @staticmethod
    def average_bytes_per_url(batches: list[UrlBatch]) -> float:
        total_urls = sum(len(b.doc_ids) for b in batches)
        total_bytes = sum(b.compressed_bytes() for b in batches)
        return total_bytes / max(1, total_urls)
