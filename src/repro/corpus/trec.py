"""TREC-style export/import of corpora and benchmarks.

MS MARCO ships as TSV files (queries.tsv, qrels); exporting our
synthetic stand-in in the same shape lets external IR tooling consume
it, and lets a benchmark run be frozen to disk and reloaded
bit-identically.  Formats:

* ``docs.tsv``   -- ``doc_id \\t url \\t text``
* ``queries.tsv`` -- ``query_id \\t family \\t text``
* ``qrels.tsv``  -- ``query_id \\t 0 \\t doc_id \\t 1`` (TREC qrels)
"""

from __future__ import annotations

import pathlib

from repro.corpus.benchmark import Query, QueryBenchmark

_TAB = "\t"


def _clean(field: str) -> str:
    return field.replace("\t", " ").replace("\n", " ")


def export_documents(path, texts: list[str], urls: list[str]) -> None:
    """Write docs.tsv."""
    if len(texts) != len(urls):
        raise ValueError("need one URL per document")
    lines = [
        f"{i}{_TAB}{_clean(url)}{_TAB}{_clean(text)}"
        for i, (text, url) in enumerate(zip(texts, urls))
    ]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def import_documents(path) -> tuple[list[str], list[str]]:
    """Read docs.tsv back as (texts, urls), ordered by doc id."""
    rows = []
    for line in pathlib.Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc_id, url, text = line.split(_TAB, 2)
        rows.append((int(doc_id), url, text))
    rows.sort()
    if [r[0] for r in rows] != list(range(len(rows))):
        raise ValueError("docs.tsv ids must be dense and zero-based")
    return [r[2] for r in rows], [r[1] for r in rows]


def export_benchmark(
    queries_path, qrels_path, benchmark: QueryBenchmark
) -> None:
    """Write queries.tsv and TREC qrels."""
    q_lines = []
    rel_lines = []
    for qid, query in enumerate(benchmark.queries):
        q_lines.append(f"{qid}{_TAB}{query.family}{_TAB}{_clean(query.text)}")
        rel_lines.append(f"{qid}{_TAB}0{_TAB}{query.target_doc_id}{_TAB}1")
    pathlib.Path(queries_path).write_text("\n".join(q_lines) + "\n")
    pathlib.Path(qrels_path).write_text("\n".join(rel_lines) + "\n")


def import_benchmark(queries_path, qrels_path) -> QueryBenchmark:
    """Read queries.tsv + qrels back into a QueryBenchmark."""
    texts: dict[int, tuple[str, str]] = {}
    for line in pathlib.Path(queries_path).read_text().splitlines():
        if not line.strip():
            continue
        qid, family, text = line.split(_TAB, 2)
        texts[int(qid)] = (family, text)
    targets: dict[int, int] = {}
    for line in pathlib.Path(qrels_path).read_text().splitlines():
        if not line.strip():
            continue
        qid, _, doc_id, rel = line.split(_TAB)
        if int(rel) > 0:
            targets[int(qid)] = int(doc_id)
    missing = set(texts) - set(targets)
    if missing:
        raise ValueError(f"queries without relevant documents: {missing}")
    queries = [
        Query(
            text=texts[qid][1],
            target_doc_id=targets[qid],
            family=texts[qid][0],
        )
        for qid in sorted(texts)
    ]
    return QueryBenchmark(queries=queries)
