"""Synthetic topic-model web corpus (the C4 stand-in).

Documents are generated from a sparse mixture of latent topics over a
Zipf-distributed pseudo-word vocabulary.  This preserves the two
statistical properties Tiptoe's evaluation depends on:

* *topical structure*: documents about the same topics share related
  (but not identical) vocabulary, so semantic embeddings genuinely
  beat exact matching on paraphrased queries and k-means finds
  meaningful clusters;
* *rare exact strings*: a fraction of documents carry unique entities
  (phone numbers, street addresses), the query family the paper says
  Tiptoe handles worst (SS1, SS9).

Each document also gets a plausible URL whose slug is built from its
own topical words, so the URL service's "group by content" batching
(SS5) has real structure to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"
_TLDS = ["com", "org", "net", "io", "info", "edu"]


def _pseudo_word(rng: np.random.Generator, syllables: int) -> str:
    return "".join(
        _CONSONANTS[rng.integers(len(_CONSONANTS))]
        + _VOWELS[rng.integers(len(_VOWELS))]
        for _ in range(syllables)
    )


def make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Generate ``size`` distinct pronounceable pseudo-words."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        word = _pseudo_word(rng, int(rng.integers(2, 5)))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


@dataclass(frozen=True)
class Document:
    """One synthetic web page."""

    doc_id: int
    text: str
    url: str
    topic_mixture: np.ndarray
    entity: str | None = None


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Knobs for the generator; defaults suit fast tests."""

    num_docs: int = 500
    num_topics: int = 12
    vocab_size: int = 900
    words_per_doc: tuple[int, int] = (30, 80)
    topics_per_doc: tuple[int, int] = (1, 3)
    topic_concentration: float = 12.0
    entity_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 1 or self.num_docs < 1:
            raise ValueError("need at least one topic and one document")
        if self.vocab_size < self.num_topics * 10:
            raise ValueError("vocabulary too small for the topic count")


@dataclass
class SyntheticCorpus:
    """A generated corpus plus its latent generative state."""

    config: SyntheticCorpusConfig
    vocabulary: list[str]
    topic_word_dists: np.ndarray  # (topics, vocab)
    documents: list[Document]

    @classmethod
    def generate(cls, config: SyntheticCorpusConfig) -> "SyntheticCorpus":
        rng = np.random.default_rng(config.seed)
        vocab = make_vocabulary(config.vocab_size, rng)
        topic_dists = cls._make_topics(config, rng)
        documents = [
            cls._make_document(i, config, vocab, topic_dists, rng)
            for i in range(config.num_docs)
        ]
        return cls(
            config=config,
            vocabulary=vocab,
            topic_word_dists=topic_dists,
            documents=documents,
        )

    @staticmethod
    def _make_topics(
        config: SyntheticCorpusConfig, rng: np.random.Generator
    ) -> np.ndarray:
        """Each topic concentrates on its own slice of the vocabulary.

        A Zipf-shaped weight over the topic's core words sits on top of
        a small uniform background, so topics overlap a little (as real
        topics do) but remain clearly distinguishable.
        """
        v, k = config.vocab_size, config.num_topics
        core_size = v // k
        dists = np.full((k, v), 0.05 / v)
        for t in range(k):
            core = rng.permutation(v)[:core_size]
            ranks = np.arange(1, core_size + 1, dtype=np.float64)
            zipf = 1.0 / ranks
            dists[t, core] += 0.95 * zipf / zipf.sum()
        return dists / dists.sum(axis=1, keepdims=True)

    @staticmethod
    def _make_document(
        doc_id: int,
        config: SyntheticCorpusConfig,
        vocab: list[str],
        topic_dists: np.ndarray,
        rng: np.random.Generator,
    ) -> Document:
        k = config.num_topics
        lo, hi = config.topics_per_doc
        active = rng.choice(k, size=int(rng.integers(lo, hi + 1)), replace=False)
        raw = rng.dirichlet(np.full(len(active), config.topic_concentration / k))
        mixture = np.zeros(k)
        mixture[active] = raw
        word_dist = mixture @ topic_dists
        n_words = int(rng.integers(*config.words_per_doc))
        word_ids = rng.choice(len(vocab), size=n_words, p=word_dist)
        words = [vocab[w] for w in word_ids]
        entity = None
        if rng.random() < config.entity_fraction:
            entity = SyntheticCorpus._make_entity(rng)
            words.insert(int(rng.integers(len(words) + 1)), entity)
        url = SyntheticCorpus._make_url(words, rng)
        return Document(
            doc_id=doc_id,
            text=" ".join(words),
            url=url,
            topic_mixture=mixture,
            entity=entity,
        )

    @staticmethod
    def _make_entity(rng: np.random.Generator) -> str:
        """A rare exact string: phone number or street address token."""
        if rng.random() < 0.5:
            return f"ph{rng.integers(10**9, 10**10)}"
        return f"{rng.integers(1, 999)}mainst{rng.integers(10000, 99999)}"

    @staticmethod
    def _make_url(words: list[str], rng: np.random.Generator) -> str:
        domain = words[int(rng.integers(len(words)))][:12]
        slug = "-".join(
            words[int(rng.integers(len(words)))] for _ in range(3)
        )
        tld = _TLDS[int(rng.integers(len(_TLDS)))]
        return f"https://www.{domain}.{tld}/{slug}"

    # -- accessors ---------------------------------------------------------

    @property
    def num_docs(self) -> int:
        return len(self.documents)

    def texts(self) -> list[str]:
        return [d.text for d in self.documents]

    def urls(self) -> list[str]:
        return [d.url for d in self.documents]

    def latent_vectors(self) -> np.ndarray:
        """The true topic mixtures -- ground truth for the oracle baseline."""
        return np.stack([d.topic_mixture for d in self.documents])

    def documents_with_entities(self) -> list[Document]:
        return [d for d in self.documents if d.entity is not None]

    def average_document_bytes(self) -> float:
        return float(np.mean([len(d.text) for d in self.documents]))
