"""Streaming document sources for the ingestion plane.

The one-shot build path (:meth:`TiptoeIndex.build`) takes ``texts`` and
``urls`` as in-memory lists, which caps the corpus at whatever fits in
RAM.  The ingestion plane (:mod:`repro.ingest`) instead pulls documents
through the :class:`DocumentSource` iterator protocol: a source yields
bounded :class:`DocumentBatch` objects in a deterministic order, so a
multi-million-document corpus streams through the staged pipeline
without ever being materialized.

Three adapters cover the corpora this repo models:

* :class:`SyntheticDocumentSource` -- the topic-model web corpus,
  generated *incrementally*: the documents streamed are bit-identical
  to ``SyntheticCorpus.generate(config).documents``, for any batch
  size, because generation consumes one sequential seeded RNG exactly
  as the list-building path does;
* :class:`TrecDocumentSource` -- streams a ``docs.tsv`` export
  (:mod:`repro.corpus.trec`) line by line;
* :class:`ImageDocumentSource` -- the caption side of an
  :class:`~repro.corpus.images.ImageCorpus` (text-to-image search
  indexes captions; the latents ride along separately).

:class:`ListDocumentSource` wraps in-memory lists (tests, small
updates), and :class:`MutatedDocumentSource` applies a deterministic
per-document mutation to a base source -- the seeded "corpus snapshot
changed" generator the delta-reindex tests and benchmarks diff against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig, make_vocabulary

#: Default number of documents per streamed batch.
DEFAULT_BATCH_SIZE = 512


@dataclass(frozen=True)
class DocumentBatch:
    """A bounded, contiguous slice of the document stream.

    ``start_id`` is the id of the first document; ids are dense, so
    document ``start_id + i`` is ``(texts[i], urls[i])``.
    """

    start_id: int
    texts: tuple[str, ...]
    urls: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.texts) != len(self.urls):
            raise ValueError("need exactly one URL per document")

    def __len__(self) -> int:
        return len(self.texts)


def doc_digest(text: str, url: str) -> bytes:
    """The 32-byte content identity of one document.

    The delta reindex diffs snapshots positionally by this digest: a
    document whose digest is unchanged keeps its embedding and cluster
    membership without being recomputed.
    """
    h = hashlib.sha256()
    h.update(text.encode("utf-8"))
    h.update(b"\x00")
    h.update(url.encode("utf-8"))
    return h.digest()


@runtime_checkable
class DocumentSource(Protocol):
    """Anything that can stream a corpus in bounded batches."""

    def batches(self) -> Iterator[DocumentBatch]:
        """Yield the corpus as dense, ordered, bounded batches."""
        ...

    def fingerprint(self) -> dict:
        """A cheap JSON-able identity used to key pipeline checkpoints.

        Two sources with equal fingerprints must stream equal corpora;
        the pipeline additionally keys downstream stages on the actual
        content digest it observes, so a fingerprint collision is
        caught rather than silently reusing stale artifacts.
        """
        ...


class ListDocumentSource:
    """Stream in-memory ``texts``/``urls`` lists (tests, small corpora)."""

    def __init__(
        self,
        texts: list[str],
        urls: list[str],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if len(texts) != len(urls):
            raise ValueError("need exactly one URL per document")
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self._texts = list(texts)
        self._urls = list(urls)
        self.batch_size = batch_size

    def batches(self) -> Iterator[DocumentBatch]:
        for start in range(0, len(self._texts), self.batch_size):
            stop = start + self.batch_size
            yield DocumentBatch(
                start_id=start,
                texts=tuple(self._texts[start:stop]),
                urls=tuple(self._urls[start:stop]),
            )

    def fingerprint(self) -> dict:
        h = hashlib.sha256()
        for text, url in zip(self._texts, self._urls):
            h.update(doc_digest(text, url))
        return {"kind": "list", "content": h.hexdigest()}


class SyntheticDocumentSource:
    """Stream the synthetic topic-model corpus without materializing it.

    Bit-compatible with :meth:`SyntheticCorpus.generate`: the vocabulary
    and topic distributions are drawn first, then each document draws
    from the same sequential RNG -- so document ``i`` is identical to
    ``SyntheticCorpus.generate(config).documents[i]`` regardless of the
    batch size this source streams with.
    """

    def __init__(
        self,
        config: SyntheticCorpusConfig,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.config = config
        self.batch_size = batch_size

    def batches(self) -> Iterator[DocumentBatch]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        vocab = make_vocabulary(config.vocab_size, rng)
        topic_dists = SyntheticCorpus._make_topics(config, rng)
        texts: list[str] = []
        urls: list[str] = []
        start = 0
        for i in range(config.num_docs):
            doc = SyntheticCorpus._make_document(
                i, config, vocab, topic_dists, rng
            )
            texts.append(doc.text)
            urls.append(doc.url)
            if len(texts) == self.batch_size:
                yield DocumentBatch(
                    start_id=start, texts=tuple(texts), urls=tuple(urls)
                )
                start += len(texts)
                texts, urls = [], []
        if texts:
            yield DocumentBatch(
                start_id=start, texts=tuple(texts), urls=tuple(urls)
            )

    def fingerprint(self) -> dict:
        cfg = self.config
        return {
            "kind": "synthetic",
            "num_docs": cfg.num_docs,
            "num_topics": cfg.num_topics,
            "vocab_size": cfg.vocab_size,
            "words_per_doc": list(cfg.words_per_doc),
            "topics_per_doc": list(cfg.topics_per_doc),
            "topic_concentration": cfg.topic_concentration,
            "entity_fraction": cfg.entity_fraction,
            "seed": cfg.seed,
        }


class TrecDocumentSource:
    """Stream a ``docs.tsv`` export (:mod:`repro.corpus.trec`) from disk.

    Rows must be dense and zero-based, exactly as
    :func:`repro.corpus.trec.export_documents` writes them; out-of-order
    ids are rejected rather than buffered (buffering the whole file is
    what this class exists to avoid).
    """

    def __init__(self, path: str | Path, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.path = Path(path)
        self.batch_size = batch_size

    def batches(self) -> Iterator[DocumentBatch]:
        texts: list[str] = []
        urls: list[str] = []
        start = 0
        expected = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                if not line.strip():
                    continue
                doc_id, url, text = line.rstrip("\n").split("\t", 2)
                if int(doc_id) != expected:
                    raise ValueError(
                        f"{self.path}: doc ids must be dense and ordered;"
                        f" saw {doc_id}, expected {expected}"
                    )
                expected += 1
                texts.append(text)
                urls.append(url)
                if len(texts) == self.batch_size:
                    yield DocumentBatch(
                        start_id=start, texts=tuple(texts), urls=tuple(urls)
                    )
                    start += len(texts)
                    texts, urls = [], []
        if texts:
            yield DocumentBatch(
                start_id=start, texts=tuple(texts), urls=tuple(urls)
            )

    def fingerprint(self) -> dict:
        stat = self.path.stat()
        return {
            "kind": "trec",
            "path": str(self.path.resolve()),
            "size": stat.st_size,
            "mtime_ns": stat.st_mtime_ns,
        }


class ImageDocumentSource:
    """Stream the caption/URL side of a generated image corpus.

    Captions are what the text-to-image index embeds (SS8.3); the
    corpus is generated once up front (the latent image vectors are a
    by-product other code paths consume) and streamed in batches so the
    ingestion pipeline sees the same protocol for every modality.
    """

    def __init__(
        self,
        num_images: int,
        seed: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        latent_dim: int = 32,
    ):
        from repro.corpus.images import ImageCorpus

        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.batch_size = batch_size
        self._params = {
            "num_images": num_images,
            "seed": seed,
            "latent_dim": latent_dim,
        }
        self._corpus = ImageCorpus.generate(
            num_images, latent_dim=latent_dim, seed=seed
        )

    @property
    def corpus(self):
        return self._corpus

    def batches(self) -> Iterator[DocumentBatch]:
        captions = self._corpus.captions()
        urls = self._corpus.urls()
        for start in range(0, len(captions), self.batch_size):
            stop = start + self.batch_size
            yield DocumentBatch(
                start_id=start,
                texts=tuple(captions[start:stop]),
                urls=tuple(urls[start:stop]),
            )

    def fingerprint(self) -> dict:
        return {"kind": "images", **self._params}


class MutatedDocumentSource:
    """A base source with a deterministic seeded fraction of edits.

    Each document decides *independently* (from ``(mutate_seed,
    doc_id)``) whether it is mutated, so the mutated stream is
    identical for any batch size -- which is what lets a delta reindex
    and a from-scratch rebuild of the same mutated snapshot be compared
    bit-for-bit.  A mutated document gets one of its own words
    duplicated (changing its term frequencies, and therefore its
    embedding under a *pinned* model whose vocabulary predates the
    edit); its URL is unchanged.
    """

    def __init__(
        self,
        base: DocumentSource,
        fraction: float,
        mutate_seed: int = 0,
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("mutation fraction must be in [0, 1]")
        self.base = base
        self.fraction = fraction
        self.mutate_seed = mutate_seed

    def _is_mutated(self, doc_id: int) -> bool:
        draw = np.random.default_rng([self.mutate_seed, doc_id]).random()
        return bool(draw < self.fraction)

    def _mutate(self, doc_id: int, text: str) -> str:
        words = text.split()
        if not words:
            return f"{text} upd{doc_id}"
        # Duplicate ~a quarter of the document's words: enough term-
        # frequency shift to move the embedding past the fixed-precision
        # quantization grid, so the edit is visible to the delta build.
        rng = np.random.default_rng([self.mutate_seed, doc_id, 1])
        picks = rng.integers(len(words), size=max(1, len(words) // 4))
        extra = " ".join(words[int(p)] for p in picks)
        return f"{text} {extra}"

    def mutated_ids(self, num_docs: int) -> list[int]:
        """The mutated document ids in ``[0, num_docs)`` (test oracle)."""
        return [i for i in range(num_docs) if self._is_mutated(i)]

    def batches(self) -> Iterator[DocumentBatch]:
        for batch in self.base.batches():
            texts = list(batch.texts)
            for offset in range(len(texts)):
                doc_id = batch.start_id + offset
                if self._is_mutated(doc_id):
                    texts[offset] = self._mutate(doc_id, texts[offset])
            yield DocumentBatch(
                start_id=batch.start_id,
                texts=tuple(texts),
                urls=batch.urls,
            )

    def fingerprint(self) -> dict:
        return {
            "kind": "mutated",
            "fraction": self.fraction,
            "mutate_seed": self.mutate_seed,
            "base": self.base.fingerprint(),
        }
