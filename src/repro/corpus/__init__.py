"""Corpora and benchmarks (DESIGN.md substitutions 2-5).

The paper evaluates on the C4 web crawl, the MS MARCO benchmark, and
LAION-400M -- none of which are available offline.  This subpackage
generates synthetic stand-ins that exercise the same code paths:

* :mod:`synthetic` -- a topic-model web corpus with realistic URLs and
  rare exact-match entities (phone numbers, addresses);
* :mod:`benchmark` -- query/answer pairs in three families
  (conceptual, lexical, exact-string), mirroring the query mix the
  paper discusses in SS1 and SS8.2;
* :mod:`urls` -- URL batching, content grouping, zlib compression (SS5);
* :mod:`images` -- a caption/image corpus for text-to-image search;
* :mod:`source` -- the :class:`DocumentSource` streaming protocol the
  ingestion plane (:mod:`repro.ingest`) pulls corpora through.
"""

from repro.corpus.benchmark import Query, QueryBenchmark
from repro.corpus.images import ImageCorpus
from repro.corpus.source import (
    DocumentBatch,
    DocumentSource,
    ImageDocumentSource,
    ListDocumentSource,
    MutatedDocumentSource,
    SyntheticDocumentSource,
    TrecDocumentSource,
    doc_digest,
)
from repro.corpus.synthetic import Document, SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.urls import UrlBatcher, UrlBatch

__all__ = [
    "Document",
    "DocumentBatch",
    "DocumentSource",
    "ImageCorpus",
    "ImageDocumentSource",
    "ListDocumentSource",
    "MutatedDocumentSource",
    "Query",
    "QueryBenchmark",
    "SyntheticCorpus",
    "SyntheticCorpusConfig",
    "SyntheticDocumentSource",
    "TrecDocumentSource",
    "UrlBatch",
    "UrlBatcher",
    "doc_digest",
]
