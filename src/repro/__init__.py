"""repro -- a from-scratch reproduction of Tiptoe (SOSP 2023).

Tiptoe is a private web search engine: clients search a server-held
corpus while the servers learn nothing about the query, under standard
lattice assumptions.  See README.md for the architecture overview and
DESIGN.md for the system inventory and experiment index.

Quickstart::

    from repro import TiptoeConfig, TiptoeEngine

    engine = TiptoeEngine.build(texts, urls, TiptoeConfig())
    result = engine.new_client().search("knee pain")
    top_urls = result.urls()[:10]

Library modules log through the ``repro`` logging tree (never
``print``; enforced by ``python -m repro.analysis``).  Embedders see
nothing unless they configure a handler::

    logging.getLogger("repro").setLevel(logging.INFO)
"""

import logging

from repro.core import (
    SearchResult,
    TiptoeClient,
    TiptoeConfig,
    TiptoeEngine,
    TiptoeIndex,
)

logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "SearchResult",
    "TiptoeClient",
    "TiptoeConfig",
    "TiptoeEngine",
    "TiptoeIndex",
    "__version__",
]
