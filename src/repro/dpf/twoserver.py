"""The two-server (non-colluding) Tiptoe variant of SS9.

Both servers hold the same plaintext data structures as the
single-server deployment.  The client DPF-shares its augmented query;
each server expands its share into a full q-tilde share and runs the
identical linear scan of SS4 *on plaintext integers* -- no encryption,
no hints, no tokens.  Summing the two answers (mod 2^64) yields the
same inner-product scores the encrypted protocol produces.  No
server-to-server communication happens; privacy holds as long as the
two providers do not collude.

The same machinery gives two-server PIR for the URL step (payload 1,
domain = batches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpf.dpf import DpfKey, eval_all, gen_keys


@dataclass
class TwoServerAnswer:
    """One server's additive share of the scores."""

    share: np.ndarray

    def wire_bytes(self) -> int:
        return self.share.nbytes


class TwoServerRankingService:
    """One of the two ranking servers."""

    def __init__(self, matrix: np.ndarray, dim: int):
        """``matrix`` is the Fig. 3 layout: (rows, dim * clusters)."""
        if matrix.shape[1] % dim != 0:
            raise ValueError("matrix width must be a multiple of dim")
        self.matrix = matrix.astype(np.int64)
        self.dim = dim
        self.num_clusters = matrix.shape[1] // dim

    def answer(self, key: DpfKey) -> TwoServerAnswer:
        """Expand the DPF share and run the SS4 linear scan on it."""
        shares = eval_all(key, self.num_clusters, self.dim)  # (C, dim)
        q_tilde_share = shares.reshape(-1)
        with np.errstate(over="ignore"):
            partial = self.matrix.astype(np.uint64) @ q_tilde_share
        return TwoServerAnswer(share=partial)


def two_server_rank(
    matrix: np.ndarray,
    dim: int,
    query_embedding: np.ndarray,
    cluster_index: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Client-side driver: share, query both servers, reconstruct.

    Returns (signed scores for the chosen cluster's rows, total query
    bytes uploaded).
    """
    servers = [
        TwoServerRankingService(matrix, dim),
        TwoServerRankingService(matrix, dim),
    ]
    num_clusters = matrix.shape[1] // dim
    k0, k1 = gen_keys(cluster_index, query_embedding, num_clusters, rng)
    a0 = servers[0].answer(k0)
    a1 = servers[1].answer(k1)
    with np.errstate(over="ignore"):
        combined = a0.share + a1.share
    scores = combined.astype(np.int64)  # centered mod 2^64
    return scores, k0.wire_bytes() + k1.wire_bytes()


class TwoServerPir:
    """Two-server PIR over byte records via scalar DPFs."""

    def __init__(self, records: list[bytes]):
        if not records:
            raise ValueError("cannot serve an empty database")
        width = max(len(r) for r in records)
        self.matrix = np.zeros((len(records), width), dtype=np.uint64)
        for i, rec in enumerate(records):
            self.matrix[i, : len(rec)] = np.frombuffer(rec, dtype=np.uint8)
        self.record_lengths = [len(r) for r in records]

    @property
    def num_records(self) -> int:
        return self.matrix.shape[0]

    def answer(self, key: DpfKey) -> TwoServerAnswer:
        selector = eval_all(key, self.num_records, 1).reshape(-1)
        with np.errstate(over="ignore"):
            share = selector @ self.matrix
        return TwoServerAnswer(share=share)

    def retrieve(
        self, index: int, rng: np.random.Generator
    ) -> tuple[bytes, int]:
        """Client-side driver: returns (record bytes, query bytes)."""
        k0, k1 = gen_keys(index, np.array([1]), self.num_records, rng)
        a0 = self.answer(k0)
        a1 = self.answer(k1)
        with np.errstate(over="ignore"):
            combined = (a0.share + a1.share).astype(np.uint8)
        return (
            # tiptoe-lint: disable=taint-wire -- combining both servers' shares recovers the requested record client-side; nothing leaves the client
            combined[: self.record_lengths[index]].tobytes(),
            k0.wire_bytes() + k1.wire_bytes(),
        )


def two_server_query_bytes(
    num_clusters: int,
    dim: int,
    cluster_size: int,
    num_batches: int,
    batch_bytes: int,
    score_bytes: int = 8,
) -> dict:
    """Analytic per-query communication for the two-server variant.

    SS9 estimates ~1 MiB on the C4 corpus (vs. Tiptoe's 56.9 MiB).
    """
    import math

    def key_bytes(domain: int, payload_words: int) -> int:
        bits = max(1, (domain - 1).bit_length())
        return 16 + bits * 17 + payload_words * 8 + 2

    rank_up = 2 * key_bytes(num_clusters, dim)
    rank_down = 2 * cluster_size * score_bytes
    url_up = 2 * key_bytes(num_batches, 1)
    url_down = 2 * batch_bytes
    return {
        "ranking_up": rank_up,
        "ranking_down": rank_down,
        "url_up": url_up,
        "url_down": url_down,
        "total": rank_up + rank_down + url_up + url_down,
    }
