"""Tree-based distributed point functions (Boyle-Gilboa-Ishai).

A DPF secret-shares the point function ``f(x) = beta if x == alpha
else 0`` between two parties: each key alone is pseudorandom, but the
two evaluations at any x sum to f(x).  Payloads here are vectors over
Z_{2^64} -- for the two-server ranking variant, ``beta`` is the
client's quantized query embedding and ``alpha`` its cluster index;
for two-server PIR, ``beta`` is the scalar 1.

Key size is logarithmic in the domain: ~(16 + 1) bytes per tree level
plus one payload-sized final correction word -- the source of the
two-server variant's ~1 MiB total query traffic (SS9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpf import prg


@dataclass(frozen=True)
class CorrectionWord:
    seed: bytes
    t_left: int
    t_right: int


@dataclass(frozen=True)
class DpfKey:
    """One party's DPF key."""

    party: int  # 0 or 1
    root_seed: bytes
    levels: tuple[CorrectionWord, ...]
    final_cw: np.ndarray  # payload-sized vector over Z_{2^64}
    domain_bits: int

    def wire_bytes(self) -> int:
        per_level = prg.SEED_BYTES + 1
        return (
            prg.SEED_BYTES
            + len(self.levels) * per_level
            + self.final_cw.nbytes
            + 2
        )


def _domain_bits(domain_size: int) -> int:
    if domain_size < 1:
        raise ValueError("domain must be non-empty")
    return max(1, (domain_size - 1).bit_length())


def gen_keys(
    alpha: int,
    beta: np.ndarray,
    domain_size: int,
    rng: np.random.Generator,
) -> tuple[DpfKey, DpfKey]:
    """Generate the two DPF keys for f(alpha) = beta."""
    if not 0 <= alpha < domain_size:
        raise ValueError(f"alpha {alpha} outside domain of size {domain_size}")
    beta = np.asarray(beta).astype(np.int64).astype(np.uint64)
    bits = _domain_bits(domain_size)
    seed0 = rng.bytes(prg.SEED_BYTES)
    seed1 = rng.bytes(prg.SEED_BYTES)
    s = [seed0, seed1]
    t = [0, 1]
    levels: list[CorrectionWord] = []
    for i in range(bits):
        bit = (alpha >> (bits - 1 - i)) & 1
        exp = [prg.expand(s[0]), prg.expand(s[1])]
        # exp[b] = (left seed, left bit, right seed, right bit)
        if bit == 0:
            keep, lose = 0, 2  # keep left, lose right
        else:
            keep, lose = 2, 0
        s_cw = prg.xor_bytes(exp[0][lose], exp[1][lose])
        t_cw_left = exp[0][1] ^ exp[1][1] ^ bit ^ 1
        t_cw_right = exp[0][3] ^ exp[1][3] ^ bit
        levels.append(
            CorrectionWord(seed=s_cw, t_left=t_cw_left, t_right=t_cw_right)
        )
        t_cw_keep = t_cw_right if bit else t_cw_left
        for b in (0, 1):
            seed_keep = exp[b][keep]
            bit_keep = exp[b][keep + 1]
            if t[b]:
                seed_keep = prg.xor_bytes(seed_keep, s_cw)
                bit_keep ^= t_cw_keep
            s[b] = seed_keep
            t[b] = bit_keep
    convert0 = prg.convert(s[0], len(beta))
    convert1 = prg.convert(s[1], len(beta))
    with np.errstate(over="ignore"):
        final = beta - convert0 + convert1
        if t[1]:
            final = np.uint64(0) - final
    key0 = DpfKey(
        party=0, root_seed=seed0, levels=tuple(levels), final_cw=final,
        domain_bits=bits,
    )
    key1 = DpfKey(
        party=1, root_seed=seed1, levels=tuple(levels), final_cw=final,
        domain_bits=bits,
    )
    return key0, key1


def _walk(key: DpfKey, x: int) -> tuple[bytes, int]:
    s = key.root_seed
    t = key.party
    for i, cw in enumerate(key.levels):
        left_s, left_t, right_s, right_t = prg.expand(s)
        if t:
            left_s = prg.xor_bytes(left_s, cw.seed)
            right_s = prg.xor_bytes(right_s, cw.seed)
            left_t ^= cw.t_left
            right_t ^= cw.t_right
        bit = (x >> (key.domain_bits - 1 - i)) & 1
        s, t = (right_s, right_t) if bit else (left_s, left_t)
    return s, t


def eval_point(key: DpfKey, x: int, payload_len: int) -> np.ndarray:
    """One party's share of f(x), a vector over Z_{2^64}."""
    s, t = _walk(key, x)
    share = prg.convert(s, payload_len)
    with np.errstate(over="ignore"):
        if t:
            share = share + key.final_cw
        if key.party:
            share = np.uint64(0) - share
    return share


def eval_all(key: DpfKey, domain_size: int, payload_len: int) -> np.ndarray:
    """One party's shares at every domain point: (domain, payload).

    Expands the GGM tree level by level, so the whole-domain
    evaluation costs O(domain) PRG calls rather than O(domain * log).
    """
    nodes: list[tuple[bytes, int]] = [(key.root_seed, key.party)]
    for cw in key.levels:
        next_nodes: list[tuple[bytes, int]] = []
        for s, t in nodes:
            left_s, left_t, right_s, right_t = prg.expand(s)
            if t:
                left_s = prg.xor_bytes(left_s, cw.seed)
                right_s = prg.xor_bytes(right_s, cw.seed)
                left_t ^= cw.t_left
                right_t ^= cw.t_right
            next_nodes.append((left_s, left_t))
            next_nodes.append((right_s, right_t))
        nodes = next_nodes
    out = np.empty((domain_size, payload_len), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for x in range(domain_size):
            s, t = nodes[x]
            share = prg.convert(s, payload_len)
            if t:
                share = share + key.final_cw
            if key.party:
                share = np.uint64(0) - share
            out[x] = share
    return out
