"""Distributed point functions and the two-server deployment (SS9).

SS9 sketches a variant of Tiptoe for two *non-colluding* services: the
client secret-shares its augmented query vector with a distributed
point function (DPF), the servers run the SS4 linear scan on their
shares (no encryption needed -- the operations are linear), and the
client sums the two answer shares.  Communication drops from ~57 MiB
to ~1 MiB per query.

This subpackage implements that variant from scratch:

* :mod:`prg` -- a length-doubling PRG from BLAKE2b;
* :mod:`dpf` -- the tree-based DPF of Boyle-Gilboa-Ishai, with
  vector-valued payloads (the query embedding);
* :mod:`twoserver` -- the two-server ranking service and PIR.
"""

from repro.dpf.dpf import DpfKey, eval_all, eval_point, gen_keys
from repro.dpf.twoserver import (
    TwoServerPir,
    TwoServerRankingService,
    two_server_query_bytes,
)

__all__ = [
    "DpfKey",
    "TwoServerPir",
    "TwoServerRankingService",
    "eval_all",
    "eval_point",
    "gen_keys",
    "two_server_query_bytes",
]
