"""A length-doubling PRG for the DPF tree, built on BLAKE2b.

Each 16-byte seed expands to two child seeds plus two control bits
(the GGM construction).  A second "convert" mode stretches a leaf seed
into a vector of 64-bit group elements for the DPF payload.
"""

from __future__ import annotations

import hashlib

import numpy as np

SEED_BYTES = 16

_EXPAND_PERSON = b"tiptoe-dpf-ex"
_CONVERT_PERSON = b"tiptoe-dpf-cv"


def expand(seed: bytes) -> tuple[bytes, int, bytes, int]:
    """seed -> (left seed, left bit, right seed, right bit)."""
    if len(seed) != SEED_BYTES:
        raise ValueError(f"seeds must be {SEED_BYTES} bytes")
    digest = hashlib.blake2b(
        seed, digest_size=SEED_BYTES * 2 + 1, person=_EXPAND_PERSON
    ).digest()
    left = digest[:SEED_BYTES]
    right = digest[SEED_BYTES : 2 * SEED_BYTES]
    bits = digest[-1]
    return left, bits & 1, right, (bits >> 1) & 1


def convert(seed: bytes, length: int) -> np.ndarray:
    """Stretch a leaf seed into ``length`` uniform Z_{2^64} elements."""
    out = np.empty(length, dtype=np.uint64)
    counter = 0
    filled = 0
    while filled < length:
        block = hashlib.blake2b(
            seed + counter.to_bytes(4, "little"),
            digest_size=64,
            person=_CONVERT_PERSON,
        ).digest()
        words = np.frombuffer(block, dtype=np.uint64)
        take = min(len(words), length - filled)
        out[filled : filled + take] = words[:take]
        filled += take
        counter += 1
    return out


def xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))
