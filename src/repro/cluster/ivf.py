"""IVF (inverted-file) approximate nearest-neighbor search.

The paper's batch jobs use Faiss for clustering and nearest-neighbor
search (SS7); this is the equivalent substrate built on our spherical
k-means: an inverted file of cluster -> member vectors, searched by
probing the ``nprobe`` closest centroids.  ``nprobe = 1`` is exactly
the retrieval behavior Tiptoe's private protocol implements; larger
``nprobe`` is the non-private headroom the paper alludes to when it
notes that "querying more clusters could improve search quality, but
would substantially increase Tiptoe's costs" (SS8.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.assign import ClusterIndex


@dataclass
class IvfIndex:
    """An inverted-file index over unit-norm embeddings."""

    clusters: ClusterIndex
    embeddings: np.ndarray

    @classmethod
    def build(
        cls,
        embeddings: np.ndarray,
        target_cluster_size: int,
        rng: np.random.Generator,
        boundary_fraction: float = 0.0,
    ) -> "IvfIndex":
        embeddings = np.asarray(embeddings, dtype=np.float64)
        clusters = ClusterIndex.build(
            embeddings,
            target_cluster_size=target_cluster_size,
            rng=rng,
            boundary_fraction=boundary_fraction,
        )
        return cls(clusters=clusters, embeddings=embeddings)

    @property
    def nlist(self) -> int:
        """Number of inverted lists (clusters)."""
        return self.clusters.num_clusters

    def search(
        self, query: np.ndarray, k: int = 10, nprobe: int = 1
    ) -> list[int]:
        """Top-k document ids from the ``nprobe`` closest lists."""
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in [1, {self.nlist}]")
        query = np.asarray(query, dtype=np.float64)
        probed = self.clusters.nearest_clusters(query, nprobe)
        candidates: list[int] = []
        seen: set[int] = set()
        for cluster in probed:
            for doc in self.clusters.assignments[cluster]:
                if doc not in seen:
                    seen.add(doc)
                    candidates.append(doc)
        if not candidates:
            return []
        scores = self.embeddings[candidates] @ query
        order = np.argsort(-scores, kind="stable")[:k]
        return [candidates[int(i)] for i in order]

    def exhaustive_search(self, query: np.ndarray, k: int = 10) -> list[int]:
        """Ground truth: scan every vector."""
        scores = self.embeddings @ np.asarray(query, dtype=np.float64)
        return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]

    def recall_at_k(
        self,
        queries: np.ndarray,
        k: int = 10,
        nprobe: int = 1,
    ) -> float:
        """Fraction of exhaustive top-k recovered by probed search."""
        queries = np.atleast_2d(queries)
        hits = 0
        total = 0
        for q in queries:
            truth = set(self.exhaustive_search(q, k))
            got = set(self.search(q, k, nprobe))
            hits += len(truth & got)
            total += len(truth)
        return hits / max(1, total)
