"""The cluster index: centroids, assignments, and boundary duplication.

This is the artifact the data-loading batch jobs produce for the
ranking service (SS3.2): unit-norm centroids (the client's ahead-of-
time download) and the per-cluster document lists (the layout of the
ranking matrix).  Following SS7, 20% of documents -- those closest to a
cluster boundary -- are assigned to their two nearest clusters, for a
~1.2x index-size overhead and a +0.015 MRR@100 gain (Fig. 9, step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.balance import split_oversized
from repro.cluster.kmeans import spherical_kmeans


@dataclass
class ClusterIndex:
    """Centroids plus cluster membership for a document corpus."""

    centroids: np.ndarray
    assignments: list[list[int]]
    doc_to_clusters: list[list[int]]

    @classmethod
    def build(
        cls,
        embeddings: np.ndarray,
        target_cluster_size: int,
        rng: np.random.Generator,
        boundary_fraction: float = 0.2,
        sample_size: int | None = None,
    ) -> "ClusterIndex":
        """Run the full SS7 pipeline: cluster, balance, multi-assign."""
        if not 0.0 <= boundary_fraction < 1.0:
            raise ValueError("boundary fraction must be in [0, 1)")
        embeddings = np.asarray(embeddings, dtype=np.float64)
        n = embeddings.shape[0]
        k = max(1, -(-n // target_cluster_size))
        result = spherical_kmeans(
            embeddings, k, rng, sample_size=sample_size
        )
        centroids, labels = split_oversized(
            embeddings,
            result.centroids,
            result.labels,
            max_size=max(1, int(target_cluster_size * 1.5)),
            rng=rng,
        )
        num_clusters = centroids.shape[0]
        assignments: list[list[int]] = [[] for _ in range(num_clusters)]
        doc_to_clusters: list[list[int]] = [[] for _ in range(n)]
        for doc, label in enumerate(labels):
            assignments[label].append(doc)
            doc_to_clusters[doc].append(int(label))
        if boundary_fraction > 0.0 and num_clusters > 1:
            cls._assign_boundaries(
                embeddings,
                centroids,
                labels,
                boundary_fraction,
                assignments,
                doc_to_clusters,
            )
        return cls(
            centroids=centroids,
            assignments=assignments,
            doc_to_clusters=doc_to_clusters,
        )

    @staticmethod
    def _assign_boundaries(
        embeddings: np.ndarray,
        centroids: np.ndarray,
        labels: np.ndarray,
        fraction: float,
        assignments: list[list[int]],
        doc_to_clusters: list[list[int]],
    ) -> None:
        sims = embeddings @ centroids.T
        order = np.argsort(-sims, axis=1)
        second = np.where(order[:, 0] == labels, order[:, 1], order[:, 0])
        best_sim = sims[np.arange(len(labels)), labels]
        second_sim = sims[np.arange(len(labels)), second]
        margin = best_sim - second_sim  # small margin = near a boundary
        budget = int(len(labels) * fraction)
        for doc in np.argsort(margin)[:budget]:
            assignments[second[doc]].append(int(doc))
            doc_to_clusters[doc].append(int(second[doc]))

    @property
    def num_clusters(self) -> int:
        return self.centroids.shape[0]

    @property
    def num_documents(self) -> int:
        return len(self.doc_to_clusters)

    def max_cluster_size(self) -> int:
        return max(len(a) for a in self.assignments)

    def total_assignments(self) -> int:
        """Total slots including duplicates (the 1.2x overhead)."""
        return sum(len(a) for a in self.assignments)

    def duplication_overhead(self) -> float:
        return self.total_assignments() / max(1, self.num_documents)

    def nearest_cluster(self, query_embedding: np.ndarray) -> int:
        """The client-side cluster pick: max inner product centroid."""
        return int(np.argmax(self.centroids @ np.asarray(query_embedding)))

    def nearest_clusters(self, query_embedding: np.ndarray, k: int) -> list[int]:
        sims = self.centroids @ np.asarray(query_embedding)
        return [int(i) for i in np.argsort(-sims)[:k]]

    def centroid_bytes(self, compressed: bool = False) -> int:
        """Client download size of the centroid table.

        ``compressed`` models the paper's compressed-update format,
        which ships ~1 byte per dimension instead of a float32.
        """
        per_value = 1 if compressed else 4
        return int(self.centroids.size * per_value)
