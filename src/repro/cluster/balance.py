"""Recursive splitting of oversized clusters (SS7).

The private-ranking matrix is padded to the *largest* cluster, so one
giant cluster inflates everyone's cost.  The paper "recursively
split[s] large clusters into multiple smaller ones"; this module does
exactly that: any cluster above ``max_size`` is re-clustered with
spherical k-means into enough parts to fit, recursing until all
clusters comply.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import spherical_kmeans


def split_oversized(
    data: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    max_size: int,
    rng: np.random.Generator,
    max_depth: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (new_centroids, new_labels) with every cluster <= max_size.

    Clusters already within bounds keep their centroid; oversized ones
    are replaced by their sub-cluster centroids.
    """
    if max_size < 1:
        raise ValueError("max_size must be positive")
    data = np.asarray(data, dtype=np.float64)
    new_centroids: list[np.ndarray] = []
    new_labels = np.empty(len(labels), dtype=np.int64)
    for c in range(centroids.shape[0]):
        member_ids = np.nonzero(labels == c)[0]
        _assign_split(
            data,
            member_ids,
            centroids[c],
            max_size,
            rng,
            new_centroids,
            new_labels,
            max_depth,
        )
    return np.stack(new_centroids), new_labels


def _assign_split(
    data: np.ndarray,
    member_ids: np.ndarray,
    centroid: np.ndarray,
    max_size: int,
    rng: np.random.Generator,
    out_centroids: list[np.ndarray],
    out_labels: np.ndarray,
    depth: int,
) -> None:
    if len(member_ids) == 0:
        return
    if len(member_ids) <= max_size or depth == 0:
        if depth == 0 and len(member_ids) > max_size:
            # Degenerate data (e.g., many identical points): fall back
            # to arbitrary chunking so the size bound still holds.
            for start in range(0, len(member_ids), max_size):
                chunk = member_ids[start : start + max_size]
                out_labels[chunk] = len(out_centroids)
                out_centroids.append(centroid)
            return
        out_labels[member_ids] = len(out_centroids)
        out_centroids.append(centroid)
        return
    parts = min(len(member_ids), -(-len(member_ids) // max_size))
    sub = spherical_kmeans(data[member_ids], parts, rng)
    for sub_c in range(sub.k):
        sub_ids = member_ids[sub.labels == sub_c]
        _assign_split(
            data,
            sub_ids,
            sub.centroids[sub_c],
            max_size,
            rng,
            out_centroids,
            out_labels,
            depth - 1,
        )
