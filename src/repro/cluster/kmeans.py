"""Spherical k-means with k-means++ initialization, from scratch.

Embeddings are unit vectors compared by inner product (SS3.1), so the
natural clustering is spherical k-means: assign points to the centroid
with the largest dot product, recompute centroids as normalized means.
The paper computes centroids on a ~10M-document sample of the corpus
and then assigns every document to its nearest centroid (SS7);
:func:`spherical_kmeans` takes an optional ``sample_size`` for the
same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)


def kmeans_plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart.

    Uses squared cosine distance (1 - x . c) as the sampling weight.
    """
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]))
    centroids[0] = data[rng.integers(n)]
    best_sim = data @ centroids[0]
    for i in range(1, k):
        weights = np.maximum(1.0 - best_sim, 0.0) ** 2
        total = weights.sum()
        if total <= 0:
            idx = rng.integers(n)
        else:
            idx = rng.choice(n, p=weights / total)
        centroids[i] = data[idx]
        best_sim = np.maximum(best_sim, data @ centroids[i])
    return centroids


@dataclass
class KmeansResult:
    """Unit-norm centroids plus the per-point cluster labels."""

    centroids: np.ndarray
    labels: np.ndarray
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def spherical_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int = 50,
    sample_size: int | None = None,
) -> KmeansResult:
    """Cluster unit vectors by inner-product similarity.

    When ``sample_size`` is given, centroids are trained on a random
    sample and then every point is assigned to its nearest centroid --
    the paper's large-corpus procedure (SS7).
    """
    data = _normalize_rows(np.asarray(data, dtype=np.float64))
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} must be in [1, {n}]")
    train = data
    if sample_size is not None and sample_size < n:
        train = data[rng.choice(n, size=sample_size, replace=False)]
    centroids = kmeans_plus_plus_init(train, k, rng)
    iterations = 0
    prev_labels = None
    for iterations in range(1, max_iter + 1):
        sims = train @ centroids.T
        labels = np.argmax(sims, axis=1)
        if prev_labels is not None and np.array_equal(labels, prev_labels):
            break
        prev_labels = labels
        for c in range(k):
            members = train[labels == c]
            if len(members) == 0:
                # Reseed an empty cluster at the worst-served point.
                worst = np.argmin(np.max(sims, axis=1))
                centroids[c] = train[worst]
            else:
                centroids[c] = members.mean(axis=0)
        centroids = _normalize_rows(centroids)
    final_labels = np.argmax(data @ centroids.T, axis=1)
    return KmeansResult(
        centroids=centroids, labels=final_labels, iterations=iterations
    )
