"""Document clustering for the ranking service (SS3.1, SS7).

Clustering is what makes Tiptoe's communication scale as sqrt(N): the
client downloads cluster centroids ahead of time, then privately asks
for the scores of just one cluster's documents.  The paper clusters
with a k-means variant (trained on a corpus sample), recursively
splits oversized clusters, and assigns the 20% of documents nearest a
cluster boundary to two clusters.
"""

from repro.cluster.assign import ClusterIndex
from repro.cluster.balance import split_oversized
from repro.cluster.kmeans import KmeansResult, kmeans_plus_plus_init, spherical_kmeans
from repro.cluster.minibatch import (
    MiniBatchSphericalKMeans,
    assign_batch,
    batch_margins,
    boundary_threshold,
)

__all__ = [
    "ClusterIndex",
    "KmeansResult",
    "MiniBatchSphericalKMeans",
    "assign_batch",
    "batch_margins",
    "boundary_threshold",
    "kmeans_plus_plus_init",
    "spherical_kmeans",
    "split_oversized",
]
