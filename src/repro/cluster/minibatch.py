"""Minibatch spherical k-means and streaming cluster assignment.

The one-shot :meth:`ClusterIndex.build` holds the full embedding
matrix and assigns boundary documents with a *global* budget rule
(the ``boundary_fraction`` smallest margins corpus-wide), both of
which require the whole corpus at once.  The ingestion plane replaces
them with streaming equivalents:

* :class:`MiniBatchSphericalKMeans` -- centroids fitted by
  ``partial_fit`` over bounded embedding batches (the web-scale
  k-means of SS7, which the paper also runs on a sample rather than
  the full corpus);
* a *threshold* boundary rule -- at initial build time the
  ``boundary_fraction`` quantile of the streamed margins is computed
  once (:func:`boundary_threshold`) and published with the index;
  afterwards each document's dual-assignment decision
  (:func:`assign_batch`) depends only on its own embedding and that
  stored threshold.  Per-document determinism is what lets a delta
  reindex reproduce unchanged documents' membership exactly instead
  of re-running a corpus-global argsort.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import kmeans_plus_plus_init


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)


class MiniBatchSphericalKMeans:
    """Web-scale spherical k-means fitted one bounded batch at a time.

    Centroid updates use per-cluster running counts as learning rates
    (the classic minibatch k-means rule), renormalized to the unit
    sphere after every step so inner product stays cosine similarity.
    Initialization buffers the first few batches and runs k-means++
    over them; everything is driven by the caller's seeded generator,
    so a fixed batch sequence yields fixed centroids.
    """

    def __init__(self, k: int, rng: np.random.Generator, init_buffer: int | None = None):
        if k < 1:
            raise ValueError("need at least one cluster")
        self.k = k
        self._rng = rng
        self._init_target = max(init_buffer or 4 * k, k)
        self._init_rows: list[np.ndarray] = []
        self._buffered = 0
        self.centroids: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def _initialize(self) -> None:
        total = self._buffered
        dim = self._init_rows[0].shape[1]
        buffer = np.zeros((total, dim), dtype=np.float64)
        cursor = 0
        for rows in self._init_rows:
            buffer[cursor : cursor + rows.shape[0]] = rows
            cursor += rows.shape[0]
        self._init_rows = []
        init = kmeans_plus_plus_init(buffer, self.k, self._rng)
        self.centroids = _normalize_rows(init)
        self._counts = np.zeros(self.k, dtype=np.int64)
        self._apply_update(buffer)

    def partial_fit(self, batch: np.ndarray) -> None:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[0] == 0:
            raise ValueError("partial_fit needs a non-empty 2-D batch")
        if self.centroids is None:
            self._init_rows.append(batch.copy())
            self._buffered += batch.shape[0]
            if self._buffered >= self._init_target:
                self._initialize()
            return
        self._apply_update(batch)

    def _apply_update(self, batch: np.ndarray) -> None:
        labels = np.argmax(batch @ self.centroids.T, axis=1)
        sums = np.zeros_like(self.centroids)
        np.add.at(sums, labels, batch)
        counts = np.bincount(labels, minlength=self.k)
        touched = counts > 0
        self._counts[touched] += counts[touched]
        # Per-cluster learning rate n_batch / n_total: the running mean
        # of all points ever assigned, the standard minibatch rule.
        rate = counts[touched] / self._counts[touched]
        means = sums[touched] / counts[touched, None]
        self.centroids[touched] += rate[:, None] * (
            means - self.centroids[touched]
        )
        self.centroids[touched] = _normalize_rows(self.centroids[touched])

    def finalize(self) -> np.ndarray:
        """Finish fitting and return the unit-norm centroid matrix."""
        if self.centroids is None:
            if not self._init_rows:
                raise ValueError("no data was fitted")
            if self._buffered < self.k:
                raise ValueError(
                    f"need at least k={self.k} points to place centroids;"
                    f" saw {self._buffered}"
                )
            self._initialize()
        return self.centroids


def batch_margins(
    embeddings: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-document ``(primary, second, margin)`` against fixed centroids.

    ``primary`` is the nearest centroid, ``second`` the runner-up, and
    ``margin = sim(primary) - sim(second)`` (small margin = near a
    boundary), matching the one-shot ``_assign_boundaries`` quantities.
    With a single centroid, ``second`` equals ``primary`` and the
    margin is +inf (no boundary duplication possible).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    sims = embeddings @ centroids.T
    if centroids.shape[0] == 1:
        zeros = np.zeros(embeddings.shape[0], dtype=np.int64)
        return zeros, zeros, np.full(embeddings.shape[0], np.inf)
    order = np.argsort(-sims, axis=1)
    primary = order[:, 0]
    second = order[:, 1]
    rows = np.arange(embeddings.shape[0])
    margin = sims[rows, primary] - sims[rows, second]
    return primary.astype(np.int64), second.astype(np.int64), margin


def boundary_threshold(margins: np.ndarray, fraction: float) -> float:
    """The margin threshold that dual-assigns ~``fraction`` of documents.

    Returns the ``k``-th smallest margin where ``k = floor(n *
    fraction)``; documents with ``margin <= threshold`` get a second
    cluster.  With ``fraction == 0`` (or k == 0) returns ``-1.0``,
    which no non-negative margin satisfies.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("boundary fraction must be in [0, 1)")
    margins = np.asarray(margins, dtype=np.float64)
    budget = int(margins.shape[0] * fraction)
    if budget < 1:
        return -1.0
    finite = margins[np.isfinite(margins)]
    if finite.shape[0] == 0:
        return -1.0
    budget = min(budget, finite.shape[0])
    return float(np.partition(finite, budget - 1)[budget - 1])


def assign_batch(
    primary: np.ndarray,
    second: np.ndarray,
    margin: np.ndarray,
    threshold: float,
) -> list[list[int]]:
    """Per-document cluster memberships under the threshold rule.

    Returns one list per document: ``[primary]`` or ``[primary,
    second]``.  Pure per-document arithmetic -- the same document with
    the same embedding always gets the same membership, whatever the
    rest of the corpus looks like.
    """
    out: list[list[int]] = []
    for p, s, m in zip(primary, second, margin):
        if m <= threshold and p != s:
            out.append([int(p), int(s)])
        else:
            out.append([int(p)])
    return out
