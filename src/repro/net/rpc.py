"""The RPC layer with honest on-the-wire byte accounting.

The client and services exchange *serialized* messages through
:class:`RpcChannel`: every call encodes its request, hands the bytes
to a :class:`~repro.net.transport.Transport` (loopback by default, a
real socket in a deployment), decodes the serialized response, and
logs both sizes (plus framing) into the caller's
:class:`~repro.net.transport.TrafficLog`.  The traffic numbers the
evaluation reports are therefore lengths of real encodings, not
estimates.

The channel never touches a service object directly -- all request
bytes cross the transport seam (enforced by the ``net-dispatch`` lint
rule), which is what lets the same client code run in-process or
against ``python -m repro serve`` over TCP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.net.transport import Transport, TrafficLog
from repro.obs import runtime as obs

_FRAME = struct.Struct("<16sI")

#: Hard cap on encoded method names; the frame header is fixed-width.
MAX_METHOD_BYTES = 16


def frame(method: str, payload: bytes) -> bytes:
    """Length-prefixed message framing: [method:16][len:4][payload].

    Method names longer than the 16-byte header field are rejected
    rather than truncated: silent truncation made two long names alias
    to the same handler on dispatch.
    """
    name = method.encode()
    if len(name) > MAX_METHOD_BYTES:
        raise ValueError(
            f"method name {method!r} encodes to {len(name)} bytes;"
            f" the frame header holds at most {MAX_METHOD_BYTES}"
        )
    return _FRAME.pack(name.ljust(MAX_METHOD_BYTES, b"\0"), len(payload)) + payload


def unframe(blob: bytes) -> tuple[str, bytes]:
    """Parse one frame; the blob must be exactly header + payload.

    Rejects both truncation (payload shorter than declared) and
    trailing garbage (payload longer than declared): a frame that
    round-trips is byte-identical to what ``frame`` produced.
    """
    if len(blob) < _FRAME.size:
        raise ValueError("truncated RPC frame")
    name, length = _FRAME.unpack_from(blob)
    payload = blob[_FRAME.size :]
    if len(payload) < length:
        raise ValueError("truncated RPC frame")
    if len(payload) > length:
        raise ValueError(
            f"RPC frame carries {len(payload) - length} trailing bytes"
            " beyond the declared payload length"
        )
    return name.rstrip(b"\0").decode(), payload


@dataclass
class ServiceEndpoint:
    """One service: a dispatch table of method -> handler(bytes)->bytes."""

    name: str
    handlers: dict[str, Callable[[bytes], bytes]] = field(default_factory=dict)

    def register(self, method: str, handler: Callable[[bytes], bytes]) -> None:
        if method in self.handlers:
            raise ValueError(f"method {method!r} already registered")
        self.handlers[method] = handler

    def dispatch(self, request: bytes) -> bytes:
        method, payload = unframe(request)
        handler = self.handlers.get(method)
        if handler is None:
            raise KeyError(f"{self.name}: no such method {method!r}")
        with obs.span(
            "rpc.dispatch",
            service=self.name,
            method=method,
            request_bytes=len(request),
        ) as sp:
            response = frame(method, handler(payload))
            if sp is not None:
                sp.set(response_bytes=len(response))
        return response


@dataclass
class RpcChannel:
    """Client-side channel: serializes, transports, and counts bytes.

    ``call`` addresses services by *name*; the bound transport decides
    what that name means (an in-process endpoint for loopback, a TCP
    listener for sockets).  ``timeout`` is the per-call deadline in
    seconds, forwarded to transports that support one.
    """

    log: TrafficLog
    transport: Transport

    def call(
        self,
        service: str,
        phase: str,
        method: str,
        payload: bytes,
        timeout: float | None = None,
    ) -> bytes:
        request = frame(method, payload)
        with obs.span(
            "rpc.call", service=service, phase=phase, method=method
        ) as sp:
            self.log.record(phase, "up", len(request))
            response = self.transport.request(
                service, request, timeout=timeout
            )
            self.log.record(phase, "down", len(response))
            if sp is not None:
                sp.set(bytes_up=len(request), bytes_down=len(response))
            obs.count("rpc.calls")
            obs.count("rpc.bytes_up", len(request))
            obs.count("rpc.bytes_down", len(response))
        got_method, body = unframe(response)
        if got_method != method:
            raise ValueError(
                f"response method {got_method!r} does not match {method!r}"
            )
        return body


FRAME_BYTES = _FRAME.size
