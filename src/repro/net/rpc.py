"""An in-process RPC layer with honest on-the-wire byte accounting.

The simulation's client and services exchange *serialized* messages
through :class:`RpcChannel`: every call encodes its request, hands the
bytes to the service endpoint, decodes the serialized response, and
logs both sizes (plus framing) into the caller's
:class:`~repro.net.transport.TrafficLog`.  The traffic numbers the
evaluation reports are therefore lengths of real encodings, not
estimates.

This models exactly what crosses the network in the paper's
deployment; it deliberately does not model serialization *time*
(negligible next to the homomorphic scan).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.net.transport import TrafficLog

_FRAME = struct.Struct("<16sI")


def frame(method: str, payload: bytes) -> bytes:
    """Length-prefixed message framing: [method:16][len:4][payload]."""
    name = method.encode()[:16].ljust(16, b"\0")
    return _FRAME.pack(name, len(payload)) + payload


def unframe(blob: bytes) -> tuple[str, bytes]:
    name, length = _FRAME.unpack_from(blob)
    payload = blob[_FRAME.size : _FRAME.size + length]
    if len(payload) != length:
        raise ValueError("truncated RPC frame")
    return name.rstrip(b"\0").decode(), payload


@dataclass
class ServiceEndpoint:
    """One service: a dispatch table of method -> handler(bytes)->bytes."""

    name: str
    handlers: dict[str, Callable[[bytes], bytes]] = field(default_factory=dict)

    def register(self, method: str, handler: Callable[[bytes], bytes]) -> None:
        if method in self.handlers:
            raise ValueError(f"method {method!r} already registered")
        self.handlers[method] = handler

    def dispatch(self, request: bytes) -> bytes:
        method, payload = unframe(request)
        handler = self.handlers.get(method)
        if handler is None:
            raise KeyError(f"{self.name}: no such method {method!r}")
        return frame(method, handler(payload))


@dataclass
class RpcChannel:
    """Client-side channel: serializes, dispatches, and counts bytes."""

    log: TrafficLog

    def call(
        self,
        endpoint: ServiceEndpoint,
        phase: str,
        method: str,
        payload: bytes,
    ) -> bytes:
        request = frame(method, payload)
        self.log.record(phase, "up", len(request))
        response = endpoint.dispatch(request)
        self.log.record(phase, "down", len(response))
        got_method, body = unframe(response)
        if got_method != method:
            raise ValueError(
                f"response method {got_method!r} does not match {method!r}"
            )
        return body


FRAME_BYTES = _FRAME.size
