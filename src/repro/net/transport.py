"""Traffic logging and the client-link latency model."""

from __future__ import annotations

from dataclasses import dataclass, field

MIB = 1024 * 1024


@dataclass(frozen=True)
class LinkModel:
    """The simulated client-coordinator link of SS8.1."""

    bandwidth_mbps: float = 100.0
    rtt_ms: float = 50.0

    def transfer_seconds(self, num_bytes: int) -> float:
        """Serialization delay for a payload of the given size."""
        return num_bytes * 8 / (self.bandwidth_mbps * 1e6)

    def round_trip_seconds(self, up_bytes: int, down_bytes: int) -> float:
        """One request/response exchange: RTT plus both transfers."""
        return (
            self.rtt_ms / 1e3
            + self.transfer_seconds(up_bytes)
            + self.transfer_seconds(down_bytes)
        )


@dataclass(frozen=True)
class Message:
    """One logged protocol message."""

    phase: str
    direction: str  # "up" (client -> server) or "down"
    num_bytes: int


@dataclass
class TrafficLog:
    """Per-phase byte accounting for one client session."""

    messages: list[Message] = field(default_factory=list)

    def record(self, phase: str, direction: str, num_bytes: int) -> None:
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        if num_bytes < 0:
            raise ValueError("message size cannot be negative")
        self.messages.append(
            Message(phase=phase, direction=direction, num_bytes=int(num_bytes))
        )

    def bytes_up(self, phase: str | None = None) -> int:
        return self._total("up", phase)

    def bytes_down(self, phase: str | None = None) -> int:
        return self._total("down", phase)

    def total_bytes(self, phase: str | None = None) -> int:
        return self.bytes_up(phase) + self.bytes_down(phase)

    def _total(self, direction: str, phase: str | None) -> int:
        return sum(
            m.num_bytes
            for m in self.messages
            if m.direction == direction and (phase is None or m.phase == phase)
        )

    def phases(self) -> list[str]:
        seen: list[str] = []
        for m in self.messages:
            if m.phase not in seen:
                seen.append(m.phase)
        return seen

    def phase_summary(self) -> dict[str, tuple[int, int]]:
        """phase -> (bytes up, bytes down)."""
        return {
            phase: (self.bytes_up(phase), self.bytes_down(phase))
            for phase in self.phases()
        }

    def message_sizes(self, phase: str, direction: str) -> list[int]:
        """All message sizes in one phase/direction -- used by the
        privacy tests to check sizes are query-independent."""
        return [
            m.num_bytes
            for m in self.messages
            if m.phase == phase and m.direction == direction
        ]

    def simulated_latency(
        self, link: LinkModel, phases: list[str] | None = None
    ) -> float:
        """Latency if each selected phase is one request/response."""
        selected = phases if phases is not None else self.phases()
        return sum(
            link.round_trip_seconds(self.bytes_up(p), self.bytes_down(p))
            for p in selected
        )
