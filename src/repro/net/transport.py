"""The transport seam, traffic logging, and the client-link latency model.

This module defines the *transport plane* of the serving stack: the
:class:`Transport` protocol is the only way request bytes reach a
service.  :class:`RpcChannel <repro.net.rpc.RpcChannel>` talks to a
transport and never to a service object, so the same client code runs
in-process (:class:`LoopbackTransport`, the default -- bit-identical
to the original direct dispatch) or across real sockets
(:class:`repro.net.tcp.SocketTransport`).

Failure handling lives here too: :class:`RetryPolicy` describes a
bounded retry-with-exponential-backoff schedule and
:class:`RetryingTransport` applies it to any transport whose calls can
time out or lose their connection.

Privacy note: a retry resends the *same* fixed-size ciphertext bytes.
Every protocol message is semantically-secure ciphertext of
query-independent size, so the traffic shape under retries still
reveals nothing about the query (the retry count depends only on
network weather, never on the plaintext).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.obs import runtime as obs

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.net.rpc import ServiceEndpoint

MIB = 1024 * 1024


# -- transport errors ---------------------------------------------------------


class TransportError(RuntimeError):
    """Base class for transport-plane failures."""


class TransportTimeout(TransportError):
    """The per-call deadline elapsed before a response arrived."""


class TransportConnectionLost(TransportError):
    """The underlying connection was reset or closed mid-call."""


class TransportExhausted(TransportError):
    """Every allowed attempt failed; the call cannot complete."""


class RemoteCallError(TransportError):
    """The server reached the handler but the handler raised.

    Not retryable: the request arrived intact, so resending the same
    bytes would deterministically fail again.
    """


#: Exception types a retry policy may act on.  Anything else (a server
#: application error, a protocol violation) fails the call immediately.
RETRYABLE_ERRORS = (TransportTimeout, TransportConnectionLost)


# -- the transport protocol ---------------------------------------------------


@runtime_checkable
class Transport(Protocol):
    """One request/response exchange with a named service.

    ``request`` carries an already-framed RPC request (see
    :func:`repro.net.rpc.frame`) and returns the framed response.
    Implementations raise :class:`TransportError` subclasses on
    failure; ``timeout`` (seconds) bounds one call where the transport
    supports deadlines.
    """

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes: ...

    def close(self) -> None: ...


class LoopbackTransport:
    """Direct in-process dispatch -- the default transport.

    Wraps a set of service endpoints; ``request`` hands the bytes to
    the named endpoint synchronously.  Results are bit-identical to
    calling the endpoint directly (this *is* the old code path, moved
    behind the seam), so every in-process test and benchmark is
    unaffected by the transport refactor.
    """

    def __init__(self, endpoints: dict[str, "ServiceEndpoint"]):
        self._endpoints = dict(endpoints)

    @property
    def service_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        endpoint = self._endpoints.get(service)
        if endpoint is None:
            raise TransportError(
                f"no such service {service!r}; serving {self.service_names}"
            )
        return endpoint.dispatch(request)

    def close(self) -> None:
        """Nothing to release; loopback holds no OS resources."""


# -- retry / deadline policy --------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures.

    ``max_attempts`` counts the first try: 3 attempts means at most two
    retries.  The wait before retry ``k`` (k = 0 for the first retry)
    is ``min(base * multiplier**k, max_backoff)`` seconds.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff must not shrink between retries")

    def backoff(self, retry_index: int) -> float:
        """Seconds to wait before retry number ``retry_index`` (from 0)."""
        if retry_index < 0:
            raise ValueError("retry index cannot be negative")
        return min(
            self.base_backoff_s * self.backoff_multiplier**retry_index,
            self.max_backoff_s,
        )


class RetryingTransport:
    """Applies a :class:`RetryPolicy` to any inner transport.

    Only :data:`RETRYABLE_ERRORS` (timeout, connection reset) trigger a
    retry; server-side application errors propagate immediately.  Each
    retry resends the byte-identical request -- see the module privacy
    note.  ``sleep`` is injectable so tests can assert the backoff
    schedule without waiting it out.
    """

    def __init__(
        self,
        inner: Transport,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
    ):
        import time

        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        last: TransportError | None = None
        for attempt in range(self.policy.max_attempts):
            try:
                return self.inner.request(service, request, timeout=timeout)
            except RETRYABLE_ERRORS as exc:
                last = exc
                if attempt + 1 >= self.policy.max_attempts:
                    break
                obs.count("rpc.retries")
                self._sleep(self.policy.backoff(attempt))
        raise TransportExhausted(
            f"call to service {service!r} failed after"
            f" {self.policy.max_attempts} attempts: {last}"
        ) from last

    def close(self) -> None:
        self.inner.close()


# -- generation-tagged addressing ---------------------------------------------

#: Separates a service name from its index-generation tag on the wire:
#: ``ranking@1f2e3d4c`` addresses the ``ranking`` plane of the index
#: whose artifact digest starts ``1f2e3d4c``.  The tagged form must
#: still fit the 16-byte service field, which is why generation tags
#: are 8 hex characters (``ranking@`` + 8 = 16 exactly).
GENERATION_SEP = "@"


def tag_service(service: str, generation: str) -> str:
    """The generation-pinned wire name for a service."""
    if not generation:
        raise ValueError("generation tag cannot be empty")
    if GENERATION_SEP in service:
        raise ValueError(f"service {service!r} already carries a tag")
    return f"{service}{GENERATION_SEP}{generation}"


def split_service(service: str) -> tuple[str, str | None]:
    """(plain service name, generation tag or None)."""
    name, sep, generation = service.partition(GENERATION_SEP)
    return name, (generation if sep else None)


class TaggedTransport:
    """Pins every request of a session to one index generation.

    A fleet front door can serve several index generations at once
    during a rolling swap; a client whose token was minted against one
    generation must have *all* of its requests answered by that same
    generation (the hint, and therefore every answer byte, changes with
    the index).  This wrapper rewrites each service name to its
    ``service@generation`` form, so the router can never route a
    tagged session across a cut-over.
    """

    def __init__(self, inner: Transport, generation: str):
        self.inner = inner
        self.generation = generation

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        return self.inner.request(
            tag_service(service, self.generation), request, timeout=timeout
        )

    def close(self) -> None:
        self.inner.close()


# -- the simulated client link ------------------------------------------------


@dataclass(frozen=True)
class LinkModel:
    """The simulated client-coordinator link of SS8.1."""

    bandwidth_mbps: float = 100.0
    rtt_ms: float = 50.0

    def transfer_seconds(self, num_bytes: int) -> float:
        """Serialization delay for a payload of the given size."""
        return num_bytes * 8 / (self.bandwidth_mbps * 1e6)

    def round_trip_seconds(self, up_bytes: int, down_bytes: int) -> float:
        """One request/response exchange: RTT plus both transfers."""
        return (
            self.rtt_ms / 1e3
            + self.transfer_seconds(up_bytes)
            + self.transfer_seconds(down_bytes)
        )


@dataclass(frozen=True)
class Message:
    """One logged protocol message."""

    phase: str
    direction: str  # "up" (client -> server) or "down"
    num_bytes: int


@dataclass
class TrafficLog:
    """Per-phase byte accounting for one client session.

    Thread-safe: with parallel shard fan-out and socket-server worker
    pools, concurrent ``record`` calls interleave on shared logs, so
    every mutation and every aggregate read takes the log's lock.
    """

    messages: list[Message] = field(default_factory=list)  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, phase: str, direction: str, num_bytes: int) -> None:
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        if num_bytes < 0:
            raise ValueError("message size cannot be negative")
        message = Message(
            phase=phase, direction=direction, num_bytes=int(num_bytes)
        )
        with self._lock:
            self.messages.append(message)

    def _snapshot(self) -> list[Message]:
        with self._lock:
            return list(self.messages)

    def bytes_up(self, phase: str | None = None) -> int:
        return self._total("up", phase)

    def bytes_down(self, phase: str | None = None) -> int:
        return self._total("down", phase)

    def total_bytes(self, phase: str | None = None) -> int:
        return self.bytes_up(phase) + self.bytes_down(phase)

    def _total(self, direction: str, phase: str | None) -> int:
        return sum(
            m.num_bytes
            for m in self._snapshot()
            if m.direction == direction and (phase is None or m.phase == phase)
        )

    def phases(self) -> list[str]:
        seen: list[str] = []
        for m in self._snapshot():
            if m.phase not in seen:
                seen.append(m.phase)
        return seen

    def phase_summary(self) -> dict[str, tuple[int, int]]:
        """phase -> (bytes up, bytes down)."""
        return {
            phase: (self.bytes_up(phase), self.bytes_down(phase))
            for phase in self.phases()
        }

    def message_sizes(self, phase: str, direction: str) -> list[int]:
        """All message sizes in one phase/direction -- used by the
        privacy tests to check sizes are query-independent."""
        return [
            m.num_bytes
            for m in self._snapshot()
            if m.phase == phase and m.direction == direction
        ]

    def simulated_latency(
        self, link: LinkModel, phases: list[str] | None = None
    ) -> float:
        """Latency if each selected phase is one request/response."""
        selected = phases if phases is not None else self.phases()
        return sum(
            link.round_trip_seconds(self.bytes_up(p), self.bytes_down(p))
            for p in selected
        )
