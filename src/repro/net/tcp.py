"""TCP transport and server: length-prefixed frames with request IDs.

The wire format wraps every RPC message (already framed by
:func:`repro.net.rpc.frame`) in one fixed-width socket header::

    [request_id: u64][service: 16s][status: u8][length: u32][payload]

* ``request_id`` matches a response to its request.  After a timeout
  the client retries with a *new* id, so a late or duplicated response
  to the old attempt is recognized and discarded -- duplicate
  responses can never be mistaken for the answer to a fresh request.
* ``service`` routes the frame to one registered service (same
  fixed-width convention as RPC method names).
* ``status`` is 0 for success; 1 marks a server-side handler error
  whose payload is a UTF-8 message (not retryable: the request arrived
  intact, so resending the same bytes would fail the same way).
* ``length`` is validated against :data:`MAX_FRAME_PAYLOAD` before any
  allocation, so a corrupt header cannot request an absurd buffer.

:class:`SocketTransport` is the client side (per-call deadlines,
stale-response rejection); :class:`ServerRunner` binds any set of
:class:`~repro.net.service.Service` objects to a listener with a
worker-thread pool and a built-in ``_meta``/``health`` endpoint.
Retry policy is layered on top by
:class:`~repro.net.transport.RetryingTransport` (see
:func:`connect_transport`); a retry resends byte-identical ciphertext,
so the traffic shape stays query-independent.
"""

from __future__ import annotations

import itertools
import json
import socket
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable

from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service
from repro.net.transport import (
    RemoteCallError,
    RetryingTransport,
    RetryPolicy,
    Transport,
    TransportConnectionLost,
    TransportError,
    TransportTimeout,
)
from repro.obs import runtime as obs
from repro.obs.clock import MONOTONIC, Clock

_SOCK_HEADER = struct.Struct("<Q16sBI")

#: Fixed socket framing overhead per message.
SOCKET_FRAME_BYTES = _SOCK_HEADER.size

#: Hard cap on one frame's payload; headers declaring more are corrupt.
MAX_FRAME_PAYLOAD = 1 << 30

#: Wire-visible service names share the RPC method-name width limit.
MAX_SERVICE_BYTES = 16

STATUS_OK = 0
STATUS_ERROR = 1


def _pack_service(service: str) -> bytes:
    name = service.encode()
    if len(name) > MAX_SERVICE_BYTES:
        raise ValueError(
            f"service name {service!r} encodes to {len(name)} bytes;"
            f" the frame header holds at most {MAX_SERVICE_BYTES}"
        )
    return name.ljust(MAX_SERVICE_BYTES, b"\0")


class FrameConnection:
    """Blocking framed I/O over one socket (or socket-like object).

    Translates OS-level failures into transport errors: a read/write
    timeout raises :class:`TransportTimeout`; a reset or half-closed
    connection raises :class:`TransportConnectionLost`.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock

    @classmethod
    def open(
        cls, host: str, port: int, timeout: float | None = None
    ) -> "FrameConnection":
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise TransportConnectionLost(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def send_frame(
        self, request_id: int, service: str, status: int, payload: bytes
    ) -> None:
        if len(payload) > MAX_FRAME_PAYLOAD:
            raise ValueError("frame payload exceeds the protocol maximum")
        header = _SOCK_HEADER.pack(
            request_id, _pack_service(service), status, len(payload)
        )
        try:
            self._sock.sendall(header + payload)
        except socket.timeout as exc:
            raise TransportTimeout("send timed out") from exc
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise TransportConnectionLost(f"send failed: {exc}") from exc

    def _recv_exact(self, num_bytes: int) -> bytes:
        chunks = []
        remaining = num_bytes
        while remaining > 0:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as exc:
                raise TransportTimeout("receive timed out") from exc
            except (ConnectionError, OSError) as exc:
                raise TransportConnectionLost(
                    f"receive failed: {exc}"
                ) from exc
            if not chunk:
                raise TransportConnectionLost("connection closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv_frame(
        self, timeout: float | None = None
    ) -> tuple[int, str, int, bytes]:
        """One (request_id, service, status, payload) frame."""
        self._sock.settimeout(timeout)
        header = self._recv_exact(_SOCK_HEADER.size)
        request_id, service, status, length = _SOCK_HEADER.unpack(header)
        if length > MAX_FRAME_PAYLOAD:
            raise TransportError(
                f"frame declares {length} payload bytes, maximum is"
                f" {MAX_FRAME_PAYLOAD}"
            )
        payload = self._recv_exact(length) if length else b""
        return request_id, service.rstrip(b"\0").decode(), status, payload

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # already gone; closing is best-effort
            pass


class SocketTransport:
    """Client side of the TCP transport.

    One connection, one in-flight request at a time (the Tiptoe client
    is sequential within a query; callers needing concurrency open one
    transport per thread).  Each call gets a fresh request id and a
    deadline; responses bearing any other id -- duplicates, or answers
    to attempts that already timed out -- are discarded, never
    returned.  ``connect`` is injectable so the fault-injection tests
    can substitute a scripted connection for a real socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 5.0,
        connect: Callable[[], FrameConnection] | None = None,
        clock: Clock | None = None,
    ):
        if timeout <= 0:
            raise ValueError("default timeout must be positive")
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connect = connect or (
            lambda: FrameConnection.open(host, port, timeout)
        )
        self._clock = clock if clock is not None else MONOTONIC
        self._conn: FrameConnection | None = None  # guarded-by: _lock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    # requires-lock: _lock
    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        budget = timeout if timeout is not None else self.timeout
        if budget <= 0:
            raise ValueError("per-call timeout must be positive")
        with self._lock:
            deadline = self._clock() + budget
            if self._conn is None:
                self._conn = self._connect()
            conn = self._conn
            request_id = next(self._ids)
            try:
                # tiptoe-lint: disable=lock-blocking-call -- by design: one in-flight request per transport; the lock IS the serialization, and send/recv are deadline-bounded
                conn.send_frame(request_id, service, STATUS_OK, request)
                while True:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        raise TransportTimeout(
                            f"deadline of {budget:.3f}s elapsed waiting for"
                            f" service {service!r}"
                        )
                    # tiptoe-lint: disable=lock-blocking-call -- by design: the receive wait is bounded by the remaining per-call deadline
                    got_id, _, status, payload = conn.recv_frame(remaining)
                    if got_id != request_id:
                        # A duplicate, or the answer to an attempt that
                        # already timed out: reject by request id.
                        obs.count("rpc.stale_responses")
                        continue
                    if status != STATUS_OK:
                        raise RemoteCallError(
                            payload.decode("utf-8", errors="replace")
                        )
                    return payload
            except RemoteCallError:
                # A complete, well-formed error frame: the stream is
                # still aligned on a frame boundary, so the connection
                # stays usable for the next request.
                raise
            except TransportError:
                # Anything else -- a timeout that may have struck
                # mid-frame in ``_recv_exact``, a corrupt length field,
                # a reset -- can leave partial header/payload bytes in
                # the stream.  Reusing the connection would misparse
                # those leftovers as the next frame header, so drop it;
                # the next request reconnects cleanly.
                self._drop_connection()
                raise

    def close(self) -> None:
        with self._lock:
            self._drop_connection()


def connect_transport(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    policy: RetryPolicy | None = None,
) -> RetryingTransport:
    """A ready-to-use client transport: sockets under a retry policy."""
    return RetryingTransport(
        SocketTransport(host, port, timeout=timeout), policy=policy
    )


class PooledSocketTransport:
    """Concurrent requests to one upstream over a bounded pool.

    :class:`SocketTransport` is deliberately one-in-flight-per-
    connection (the lock *is* the request/response serialization), so a
    caller with many concurrent requests to the same upstream -- the
    fleet router, fanning a whole front door's traffic onto each worker
    -- multiplexes across a pool of them instead: a request checks an
    idle transport out, opening a new one when none is idle and the
    pool is under ``max_connections``, and blocks for a free slot at
    the cap.  A transport that saw any desync-capable error has already
    dropped its connection, but it is discarded from the pool anyway so
    the slot count stays an honest bound on open sockets.

    ``transport_factory`` is injectable for tests (scripted
    connections instead of real sockets).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 5.0,
        max_connections: int = 8,
        transport_factory: Callable[[], Transport] | None = None,
    ):
        if max_connections < 1:
            raise ValueError("pool needs at least one connection")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_connections = max_connections
        self._factory = transport_factory or (
            lambda: SocketTransport(host, port, timeout=timeout)
        )
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._idle: list[Transport] = []  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def _checkout(self) -> Transport:
        with self._free:
            while True:
                if self._closed:
                    raise TransportError("transport pool is closed")
                if self._idle:
                    return self._idle.pop()
                if self._total < self.max_connections:
                    self._total += 1
                    break
                # tiptoe-lint: disable=lock-blocking-call -- bounded wait for a pool slot; holders never take this lock while blocked on I/O
                if not self._free.wait(self.timeout):
                    raise TransportTimeout(
                        f"no pool slot freed within {self.timeout:.3f}s"
                        f" ({self.max_connections} connections busy)"
                    )
        # The handshake happens outside the lock, on first request.
        return self._factory()

    def _checkin(self, transport: Transport) -> None:
        with self._free:
            if not self._closed:
                self._idle.append(transport)
                self._free.notify()
                return
            self._total -= 1
        transport.close()

    def _discard(self, transport: Transport) -> None:
        with self._free:
            self._total -= 1
            self._free.notify()
        transport.close()

    @property
    def open_connections(self) -> int:
        with self._lock:
            return self._total

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        transport = self._checkout()
        try:
            response = transport.request(service, request, timeout=timeout)
        except RemoteCallError:
            # The exchange completed; the connection is still good.
            self._checkin(transport)
            raise
        except BaseException:
            self._discard(transport)
            raise
        self._checkin(transport)
        return response

    def close(self) -> None:
        with self._free:
            self._closed = True
            idle, self._idle = self._idle, []
            self._total -= len(idle)
            self._free.notify_all()
        for transport in idle:
            transport.close()


class ServerRunner:
    """Binds a set of services to one TCP listener with a worker pool.

    The runner owns the services' lifecycle: ``start`` opens them and
    begins accepting, ``close`` stops the listener, drains the workers,
    and closes the services.  Each accepted connection is handled by
    one pool worker that loops frames until the peer disconnects, so a
    deployment is ``ServerRunner(build_services(index)).start()`` --
    which is exactly what ``python -m repro serve`` runs.

    A built-in ``_meta`` service exposes ``health`` returning the JSON
    of every service's :meth:`~repro.net.service.Service.health`.
    """

    def __init__(
        self,
        services: Iterable[Service],
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        fallback: Callable[[str, bytes], bytes] | None = None,
    ):
        #: Handler for service names with no registered endpoint --
        #: how the fleet router front-door intercepts worker-bound
        #: traffic (incl. ``@generation``-tagged names that can never
        #: be statically registered).  Exceptions become error frames.
        self._fallback = fallback
        self._services: dict[str, Service] = {}
        for service in services:
            name = service.service_name
            if name in self._services:
                raise ValueError(f"duplicate service name {name!r}")
            _pack_service(name)  # validate width up front
            self._services[name] = service
        if not self._services:
            raise ValueError("a server needs at least one service")
        self._endpoints = {
            name: service.endpoint
            for name, service in self._services.items()
        }
        self._endpoints["_meta"] = self._build_meta_endpoint()
        self.host = host
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._max_workers = max_workers

    def _build_meta_endpoint(self) -> ServiceEndpoint:
        endpoint = ServiceEndpoint("_meta")
        endpoint.register("health", self._handle_health)
        return endpoint

    def _handle_health(self, payload: bytes) -> bytes:
        # Per-service isolation: one service whose health() raises must
        # not take down the whole endpoint -- the fleet router keys its
        # failover decisions on this report, so a half-sick worker has
        # to stay distinguishable from a dead one.
        report = {}
        for name, service in self._services.items():
            try:
                report[name] = service.health()
            except Exception as exc:
                report[name] = {
                    "service": name,
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
        return json.dumps(report, sort_keys=True).encode()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "ServerRunner":
        if self._listener is not None:
            return self
        opened: list[Service] = []
        listener: socket.socket | None = None
        try:
            for service in self._services.values():
                service.open()
                opened.append(service)
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self._requested_port))
            listener.listen()
        except Exception:
            # ``bind`` on an occupied port (or any service failing to
            # open) must not leak the services opened so far -- their
            # pools and refill workers would outlive the failed start.
            if listener is not None:
                listener.close()
            for service in opened:
                service.close()
            raise
        listener.settimeout(0.2)  # lets the accept loop see _stop
        self._listener = listener
        self._stop.clear()
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers,
            thread_name_prefix="repro-serve",
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        # ``close()`` nulls self._listener and self._pool from another
        # thread; re-reading either attribute mid-loop could raise
        # AttributeError and kill this (daemon, hence silent) thread.
        # Capture both locally at entry -- the listener stays valid to
        # accept on until its close() wakes us with an OSError.
        listener, pool = self._listener, self._pool
        while not self._stop.is_set():
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed during shutdown
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                pool.submit(self._serve_connection, FrameConnection(sock))
            except RuntimeError:  # pool shut down during close()
                sock.close()
                return

    def _serve_connection(self, conn: FrameConnection) -> None:
        try:
            while not self._stop.is_set():
                try:
                    request_id, service, _, payload = conn.recv_frame(
                        timeout=0.2
                    )
                except TransportTimeout:
                    continue  # idle; re-check the stop flag
                except (TransportConnectionLost, TransportError):
                    return
                obs.count("server.requests")
                status, response = self._dispatch(service, payload)
                try:
                    conn.send_frame(request_id, service, status, response)
                except TransportError:
                    return
        finally:
            conn.close()

    def _dispatch(self, service: str, payload: bytes) -> tuple[int, bytes]:
        endpoint = self._endpoints.get(service)
        if endpoint is None:
            if self._fallback is not None:
                try:
                    return STATUS_OK, self._fallback(service, payload)
                except Exception as exc:
                    obs.count("server.errors")
                    return (
                        STATUS_ERROR,
                        f"{type(exc).__name__}: {exc}".encode(),
                    )
            obs.count("server.errors")
            return STATUS_ERROR, f"no such service {service!r}".encode()
        try:
            return STATUS_OK, endpoint.dispatch(payload)
        except Exception as exc:  # handler errors become status frames
            obs.count("server.errors")
            return STATUS_ERROR, f"{type(exc).__name__}: {exc}".encode()

    def serve_forever(self) -> None:
        """Block until :meth:`close` is called (or the thread is
        interrupted); the accept loop runs in the background."""
        self.start()
        self._stop.wait()

    def close(self) -> None:
        """Stop accepting, drain workers, close every service."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for service in self._services.values():
            service.close()

    def __enter__(self) -> "ServerRunner":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
