"""Wire serialization for protocol messages.

The byte counts the evaluation reports (`wire_bytes`) correspond to
real serialized formats; this module provides those formats and lets
the tests verify the accounting is honest: every message's declared
size equals the length of its encoding.

Formats are little-endian and self-describing enough for a fixed
protocol version:

* ciphertext vectors: [u8 q_bits][u32 length][length words]
* PIR / ranking answers: same layout
* RLWE ciphertexts: [u16 k][u32 n][k*n u64 b][k*n u64 a]

Every decoder validates declared lengths against the actual payload
*before* touching ``np.frombuffer`` and raises a ``ValueError`` that
names both sizes -- a truncated or corrupted frame (from a flaky
transport, a crashed peer, or a malicious server) fails loudly instead
of surfacing as an opaque numpy error or, worse, a misshaped array.
Decoded arrays are always fresh writable copies, never read-only views
into the network buffer.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.lwe.modular import dtype_for
from repro.lwe.params import LweParams
from repro.lwe.regev import Ciphertext
from repro.rlwe.bfv import BfvCiphertext

_HEADER = struct.Struct("<BI")
_RLWE_HEADER = struct.Struct("<HI")


def _require_header(blob: bytes, header: struct.Struct, what: str) -> None:
    if len(blob) < header.size:
        raise ValueError(
            f"{what}: payload is {len(blob)} bytes, expected at least"
            f" {header.size} for the header"
        )


def _require_words(
    blob: bytes, offset: int, count: int, word_bytes: int, what: str
) -> None:
    """Check a declared word count fits in the remaining payload."""
    expected = count * word_bytes
    available = len(blob) - offset
    if available < expected:
        raise ValueError(
            f"{what}: payload is {available} bytes after the header,"
            f" expected {expected} ({count} x {word_bytes}-byte words)"
        )


def encode_ciphertext(ct: Ciphertext) -> bytes:
    """Serialize an inner-layer ciphertext vector."""
    q_bits = ct.params.q_bits
    body = np.ascontiguousarray(ct.c, dtype=dtype_for(q_bits)).tobytes()
    return _HEADER.pack(q_bits, len(ct.c)) + body


def decode_ciphertext(blob: bytes, params: LweParams) -> Ciphertext:
    _require_header(blob, _HEADER, "ciphertext")
    q_bits, length = _HEADER.unpack_from(blob)
    if q_bits != params.q_bits:
        raise ValueError(
            f"wire modulus 2^{q_bits} does not match parameters"
            f" (2^{params.q_bits})"
        )
    _require_words(blob, _HEADER.size, length, q_bits // 8, "ciphertext")
    body = np.frombuffer(
        blob, dtype=dtype_for(q_bits), offset=_HEADER.size, count=length
    )
    return Ciphertext(c=body.copy(), params=params)


def encode_answer(values: np.ndarray, q_bits: int) -> bytes:
    """Serialize an evaluated ciphertext (server answer)."""
    body = np.ascontiguousarray(values, dtype=dtype_for(q_bits)).tobytes()
    return _HEADER.pack(q_bits, len(values)) + body


def decode_answer(blob: bytes) -> tuple[np.ndarray, int]:
    _require_header(blob, _HEADER, "answer")
    q_bits, length = _HEADER.unpack_from(blob)
    if q_bits not in (32, 64):
        raise ValueError(f"answer declares unsupported modulus 2^{q_bits}")
    _require_words(blob, _HEADER.size, length, q_bits // 8, "answer")
    values = np.frombuffer(
        blob, dtype=dtype_for(q_bits), offset=_HEADER.size, count=length
    )
    return values.copy(), q_bits


_BATCH_HEADER = struct.Struct("<BIH")


def encode_batch(batch) -> bytes:
    """Serialize a stacked query batch: [u8 q_bits][u32 m][u16 Q][m*Q words].

    Words are C-order over the (m, Q) stack, so the columns (queries)
    interleave; the count is validated on decode before any reshape.
    """
    q_bits = batch.params.q_bits
    m, q = batch.stacked.shape
    body = np.ascontiguousarray(
        batch.stacked, dtype=dtype_for(q_bits)
    ).tobytes()
    return _BATCH_HEADER.pack(q_bits, m, q) + body


def decode_batch(blob: bytes, params: LweParams):
    from repro.core.ranking import RankingBatch

    _require_header(blob, _BATCH_HEADER, "query batch")
    q_bits, m, q = _BATCH_HEADER.unpack_from(blob)
    if q_bits != params.q_bits:
        raise ValueError(
            f"wire modulus 2^{q_bits} does not match parameters"
            f" (2^{params.q_bits})"
        )
    if q == 0:
        raise ValueError("query batch declares zero queries")
    _require_words(blob, _BATCH_HEADER.size, m * q, q_bits // 8, "query batch")
    words = np.frombuffer(
        blob, dtype=dtype_for(q_bits), offset=_BATCH_HEADER.size, count=m * q
    )
    return RankingBatch(stacked=words.reshape(m, q).copy(), params=params)


def encode_batch_answer(answer, q_bits: int) -> bytes:
    """Serialize a stacked answer: [u8 q_bits][u32 rows][u16 Q][rows*Q words]."""
    rows, q = answer.stacked.shape
    body = np.ascontiguousarray(
        answer.stacked, dtype=dtype_for(q_bits)
    ).tobytes()
    return _BATCH_HEADER.pack(q_bits, rows, q) + body


def decode_batch_answer(blob: bytes) -> tuple[np.ndarray, int]:
    """Decode a stacked answer into the (rows, Q) matrix and q_bits."""
    _require_header(blob, _BATCH_HEADER, "batch answer")
    q_bits, rows, q = _BATCH_HEADER.unpack_from(blob)
    if q_bits not in (32, 64):
        raise ValueError(
            f"batch answer declares unsupported modulus 2^{q_bits}"
        )
    if q == 0:
        raise ValueError("batch answer declares zero queries")
    _require_words(
        blob, _BATCH_HEADER.size, rows * q, q_bits // 8, "batch answer"
    )
    words = np.frombuffer(
        blob, dtype=dtype_for(q_bits), offset=_BATCH_HEADER.size, count=rows * q
    )
    return words.reshape(rows, q).copy(), q_bits


_MATRIX_HEADER = struct.Struct("<BII")


def encode_matrix(matrix: np.ndarray, q_bits: int) -> bytes:
    """Serialize a Z_q matrix (e.g., a raw SimplePIR hint)."""
    rows, cols = matrix.shape
    body = np.ascontiguousarray(matrix, dtype=dtype_for(q_bits)).tobytes()
    return _MATRIX_HEADER.pack(q_bits, rows, cols) + body


def decode_matrix(blob: bytes) -> tuple[np.ndarray, int]:
    _require_header(blob, _MATRIX_HEADER, "matrix")
    q_bits, rows, cols = _MATRIX_HEADER.unpack_from(blob)
    if q_bits not in (32, 64):
        raise ValueError(f"matrix declares unsupported modulus 2^{q_bits}")
    _require_words(
        blob, _MATRIX_HEADER.size, rows * cols, q_bits // 8, "matrix"
    )
    values = np.frombuffer(
        blob,
        dtype=dtype_for(q_bits),
        offset=_MATRIX_HEADER.size,
        count=rows * cols,
    )
    return values.reshape(rows, cols).copy(), q_bits


def encode_rlwe(ct: BfvCiphertext) -> bytes:
    """Serialize an outer-layer (RLWE) ciphertext in RNS form."""
    k, n = ct.b.shape
    return (
        _RLWE_HEADER.pack(k, n)
        + np.ascontiguousarray(ct.b, dtype=np.uint64).tobytes()
        + np.ascontiguousarray(ct.a, dtype=np.uint64).tobytes()
    )


def decode_rlwe(blob: bytes) -> BfvCiphertext:
    _require_header(blob, _RLWE_HEADER, "RLWE ciphertext")
    k, n = _RLWE_HEADER.unpack_from(blob)
    _require_words(blob, _RLWE_HEADER.size, 2 * k * n, 8, "RLWE ciphertext")
    words = np.frombuffer(
        blob, dtype=np.uint64, offset=_RLWE_HEADER.size, count=2 * k * n
    )
    b = words[: k * n].reshape(k, n).copy()
    a = words[k * n :].reshape(k, n).copy()
    return BfvCiphertext(b=b, a=a)


#: Fixed framing overhead per inner-layer message.
HEADER_BYTES = _HEADER.size
RLWE_HEADER_BYTES = _RLWE_HEADER.size

_KEY_HEADER = struct.Struct("<III")
_HINT_HEADER = struct.Struct("<II")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _pack_str(name: str) -> bytes:
    data = name.encode()
    return _U8.pack(len(data)) + data


def _unpack_str(blob: bytes, pos: int) -> tuple[str, int]:
    if len(blob) - pos < _U8.size:
        raise ValueError(
            f"string field: payload is {len(blob) - pos} bytes at offset"
            f" {pos}, expected at least {_U8.size}"
        )
    (length,) = _U8.unpack_from(blob, pos)
    pos += _U8.size
    if len(blob) - pos < length:
        raise ValueError(
            f"string field: payload is {len(blob) - pos} bytes,"
            f" expected {length}"
        )
    return blob[pos : pos + length].decode(), pos + length


def _pack_blob(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def _unpack_blob(blob: bytes, pos: int) -> tuple[bytes, int]:
    if len(blob) - pos < _U32.size:
        raise ValueError(
            f"blob field: payload is {len(blob) - pos} bytes at offset"
            f" {pos}, expected at least {_U32.size}"
        )
    (length,) = _U32.unpack_from(blob, pos)
    pos += _U32.size
    if len(blob) - pos < length:
        raise ValueError(
            f"blob field: payload is {len(blob) - pos} bytes,"
            f" expected {length}"
        )
    return blob[pos : pos + length], pos + length


def encode_mint_request(enc_keys: dict) -> bytes:
    """Serialize a token-mint request.

    Shared keys (Appendix A.3) are uploaded once: the format lists the
    unique encrypted keys, then maps each service name to one of them.
    """
    unique: list = []
    key_index: dict[int, int] = {}
    for key in enc_keys.values():
        if id(key) not in key_index:
            key_index[id(key)] = len(unique)
            unique.append(key)
    parts = [_U16.pack(len(unique))]
    parts += [_pack_blob(encode_encrypted_key(k)) for k in unique]
    parts.append(_U16.pack(len(enc_keys)))
    for name, key in enc_keys.items():
        parts.append(_pack_str(name))
        parts.append(_U16.pack(key_index[id(key)]))
    return b"".join(parts)


def decode_mint_request(blob: bytes) -> dict:
    _require_header(blob, _U16, "mint request")
    (num_unique,) = _U16.unpack_from(blob)
    pos = _U16.size
    unique = []
    for _ in range(num_unique):
        data, pos = _unpack_blob(blob, pos)
        unique.append(decode_encrypted_key(data))
    if len(blob) - pos < _U16.size:
        raise ValueError("mint request: truncated service count")
    (num_services,) = _U16.unpack_from(blob, pos)
    pos += _U16.size
    out = {}
    for _ in range(num_services):
        name, pos = _unpack_str(blob, pos)
        if len(blob) - pos < _U16.size:
            raise ValueError("mint request: truncated key index")
        (idx,) = _U16.unpack_from(blob, pos)
        pos += _U16.size
        if idx >= len(unique):
            raise ValueError(
                f"mint request: service {name!r} references key {idx},"
                f" but only {len(unique)} keys are present"
            )
        out[name] = unique[idx]
    return out


def encode_mint_many_request(requests: list[dict]) -> bytes:
    """Serialize a batched token-mint request (K clients' key uploads).

    Each element is one client's ``enc_keys`` mapping, encoded exactly
    as a single-mint request; the batch adds only a u16 client count.
    """
    parts = [_U16.pack(len(requests))]
    parts += [_pack_blob(encode_mint_request(r)) for r in requests]
    return b"".join(parts)


def decode_mint_many_request(blob: bytes) -> list[dict]:
    _require_header(blob, _U16, "mint-many request")
    (count,) = _U16.unpack_from(blob)
    pos = _U16.size
    out = []
    for _ in range(count):
        data, pos = _unpack_blob(blob, pos)
        out.append(decode_mint_request(data))
    if pos != len(blob):
        raise ValueError(
            f"mint-many request: {len(blob) - pos} trailing bytes after"
            f" {count} clients"
        )
    return out


def encode_mint_many_payload(payloads: list) -> bytes:
    """Serialize the minted tokens for a batched request, in order."""
    parts = [_U16.pack(len(payloads))]
    parts += [_pack_blob(encode_token_payload(p)) for p in payloads]
    return b"".join(parts)


def decode_mint_many_payload(blob: bytes) -> list:
    _require_header(blob, _U16, "mint-many payload")
    (count,) = _U16.unpack_from(blob)
    pos = _U16.size
    out = []
    for _ in range(count):
        data, pos = _unpack_blob(blob, pos)
        out.append(decode_token_payload(data))
    if pos != len(blob):
        raise ValueError(
            f"mint-many payload: {len(blob) - pos} trailing bytes after"
            f" {count} tokens"
        )
    return out


def encode_token_payload(payload) -> bytes:
    """Serialize a minted token (per-service compressed hints)."""
    parts = [_U16.pack(len(payload.hints))]
    for name, hint in payload.hints.items():
        parts.append(_pack_str(name))
        parts.append(_pack_blob(encode_compressed_hint(hint)))
    return b"".join(parts)


def decode_token_payload(blob: bytes):
    from repro.homenc.token import TokenPayload

    _require_header(blob, _U16, "token payload")
    (count,) = _U16.unpack_from(blob)
    pos = _U16.size
    hints = {}
    for _ in range(count):
        name, pos = _unpack_str(blob, pos)
        data, pos = _unpack_blob(blob, pos)
        hints[name] = decode_compressed_hint(data)
    return TokenPayload(hints=hints)


def encode_encrypted_key(enc_key) -> bytes:
    """Serialize the ahead-of-time encrypted-key upload (SS6.3)."""
    n_inner, k, n_outer = enc_key.z_b.shape
    return (
        _KEY_HEADER.pack(n_inner, k, n_outer)
        + np.ascontiguousarray(enc_key.z_b, dtype=np.uint64).tobytes()
        + np.ascontiguousarray(enc_key.z_a, dtype=np.uint64).tobytes()
    )


def decode_encrypted_key(blob: bytes):
    from repro.homenc.double import EncryptedKey

    _require_header(blob, _KEY_HEADER, "encrypted key")
    n_inner, k, n_outer = _KEY_HEADER.unpack_from(blob)
    count = n_inner * k * n_outer
    _require_words(blob, _KEY_HEADER.size, 2 * count, 8, "encrypted key")
    words = np.frombuffer(
        blob, dtype=np.uint64, offset=_KEY_HEADER.size, count=2 * count
    )
    shape = (n_inner, k, n_outer)
    return EncryptedKey(
        z_b=words[:count].reshape(shape).copy(),
        z_a=words[count:].reshape(shape).copy(),
    )


def encode_compressed_hint(hint) -> bytes:
    """Serialize one service's compressed-hint token chunk list."""
    parts = [_HINT_HEADER.pack(len(hint.chunks), hint.rows)]
    for chunk in hint.chunks:
        parts.append(encode_rlwe(chunk))
    return b"".join(parts)


def decode_compressed_hint(blob: bytes):
    from repro.homenc.double import CompressedHint

    _require_header(blob, _HINT_HEADER, "compressed hint")
    num_chunks, rows = _HINT_HEADER.unpack_from(blob)
    chunks = []
    pos = _HINT_HEADER.size
    for i in range(num_chunks):
        if len(blob) - pos < _RLWE_HEADER.size:
            raise ValueError(
                f"compressed hint: payload ends at chunk {i} of"
                f" {num_chunks}"
            )
        k, n = _RLWE_HEADER.unpack_from(blob, pos)
        size = _RLWE_HEADER.size + 2 * k * n * 8
        chunks.append(decode_rlwe(blob[pos : pos + size]))
        pos += size
    return CompressedHint(chunks=tuple(chunks), rows=rows)
