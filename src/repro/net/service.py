"""The service plane: a common lifecycle for everything that serves.

The paper's deployment (SS8) runs the ranking coordinator, the URL
server, and the token mint as long-lived networked services.  This
module gives the reproduction the same shape: a :class:`Service` owns
one :class:`~repro.net.rpc.ServiceEndpoint` (built lazily from
``register_endpoint``), and exposes ``open`` / ``close`` / ``health``
so a :class:`~repro.net.tcp.ServerRunner` -- or the in-process engine
-- can manage any set of services uniformly.

Concrete services (`ShardedRankingService`, `UrlService`,
`TokenMintService`, `HintService`) subclass this and register their
wire handlers; nothing outside :mod:`repro.net` ever calls
``endpoint.dispatch`` directly (the ``net-dispatch`` lint rule).
"""

from __future__ import annotations

from repro.net.rpc import ServiceEndpoint


class Service:
    """Lifecycle + endpoint registration shared by all serving-plane
    services.

    Subclasses set ``service_name`` and implement
    :meth:`register_endpoint`; the endpoint itself is built on first
    access so construction stays cheap.  ``open`` / ``close`` default
    to no-ops and must stay idempotent.  Also usable as a context
    manager.
    """

    #: The wire-visible service name (<= 16 bytes when socket-framed).
    service_name = "service"

    @property
    def endpoint(self) -> ServiceEndpoint:
        """This service's dispatch table, built on first use."""
        endpoint = self.__dict__.get("_endpoint")
        if endpoint is None:
            endpoint = ServiceEndpoint(self.service_name)
            self.register_endpoint(endpoint)
            self.__dict__["_endpoint"] = endpoint
        return endpoint

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        """Register this service's method handlers on ``endpoint``."""
        raise NotImplementedError

    def open(self) -> None:
        """Acquire runtime resources (pools, files).  Idempotent."""

    def close(self) -> None:
        """Release runtime resources.  Idempotent."""

    def health(self) -> dict:
        """A JSON-ready liveness/readiness summary."""
        return {"service": self.service_name, "status": "ok"}

    def __enter__(self) -> "Service":
        self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
