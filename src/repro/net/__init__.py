"""The network stack: transports, RPC framing, services, and accounting.

Three layers:

* :mod:`repro.net.transport` -- the :class:`Transport` seam
  (loopback by default), retry policy, traffic logging, and the
  simulated client link of SS8.1.
* :mod:`repro.net.rpc` -- message framing and the client-side
  :class:`RpcChannel` with honest on-the-wire byte accounting.
* :mod:`repro.net.tcp` + :mod:`repro.net.service` -- the socket
  transport, the server runner, and the common service lifecycle,
  so the same stack runs in-process or across real machines.
"""

from repro.net.service import Service
from repro.net.transport import (
    LinkModel,
    LoopbackTransport,
    RetryingTransport,
    RetryPolicy,
    TrafficLog,
    Transport,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "LinkModel",
    "LoopbackTransport",
    "RetryPolicy",
    "RetryingTransport",
    "Service",
    "TrafficLog",
    "Transport",
    "TransportError",
    "TransportTimeout",
]
