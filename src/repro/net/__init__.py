"""Simulated networking: byte accounting and the latency model.

The paper's testbed links client and coordinator over a simulated
100 Mbps / 50 ms-RTT connection (SS8.1) and reports per-phase traffic
(Table 7).  This subpackage provides the same accounting for the
in-process reproduction: every protocol message is logged with a
phase tag and direction, and latency is modeled from the link.
"""

from repro.net.transport import LinkModel, TrafficLog

__all__ = ["LinkModel", "TrafficLog"]
