"""Command-line interface: ``python -m repro <command>``.

Commands
--------
demo
    Build a synthetic deployment and run one private query.
plan
    Print the analytic cost plan for a corpus size (SS8.5).
quality
    Quick search-quality evaluation (a small Fig. 4).
params
    Print the LWE parameter table for a ciphertext modulus.
obs-report
    Run instrumented queries and print the observability report
    (span tree, kernel latency histograms, cost/traffic totals).
build-index
    Run the batch jobs over a synthetic corpus and persist the index
    artifacts to a directory.
serve
    Cold-start the full service roster from saved artifacts and listen
    on TCP (the deployment entry point).  With ``--shard`` /
    ``--num-shards`` the process serves one ranking shard of a fleet.
serve-fleet
    Spawn N shard worker processes (x replicas) and serve through the
    :class:`~repro.core.fleet.FleetRouter` front door: admission
    control, replica failover, rolling index swap.
query
    Run private searches against a running ``serve`` or ``serve-fleet``
    over TCP (optionally pinned to one index generation).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import TiptoeConfig, TiptoeEngine
    from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig

    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=args.docs, seed=args.seed)
    )
    engine = TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(args.seed),
    )
    query = args.query or corpus.documents[0].text[:60]
    result = engine.search(query, np.random.default_rng(args.seed + 1))
    print(f"query: {query!r}")
    for r in result.results[:args.top]:
        print(f"  score={r.score:6d}  {r.url or '(outside fetched batch)'}")
    up, down = result.traffic.bytes_up(), result.traffic.bytes_down()
    print(f"traffic: {up:,} B up / {down:,} B down"
          f"  latency: {result.perceived_latency:.2f} s")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.evalx.costmodel import TiptoeCostModel

    model = TiptoeCostModel(dim=args.dim)
    row = model.summary(args.docs)
    for key, value in row.items():
        print(f"{key:24s} {value:,.3f}" if isinstance(value, float)
              else f"{key:24s} {value:,}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    from repro.core.config import TiptoeConfig
    from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig
    from repro.embeddings import TfidfRetriever
    from repro.evalx.quality import TiptoeQualitySim, evaluate_systems

    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=args.docs, num_topics=max(6, args.docs // 50),
            vocab_size=max(600, args.docs), seed=args.seed,
        )
    )
    bench = QueryBenchmark.generate(
        corpus, args.queries, np.random.default_rng(args.seed)
    )
    tiptoe = TiptoeQualitySim.build(
        corpus.texts(), corpus.urls(),
        TiptoeConfig(target_cluster_size=max(6, args.docs // 80)),
        rng=np.random.default_rng(args.seed),
    )
    report = evaluate_systems(
        bench,
        {"tiptoe": tiptoe, "tfidf": TfidfRetriever(corpus.texts())},
    )
    for name in report.ordering():
        print(f"{name:10s} MRR@100 = {report.mrr[name]:.3f}")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.lwe.params import (
        PAPER_TABLE_11,
        PAPER_TABLE_12,
        max_plaintext_modulus,
    )

    table = PAPER_TABLE_11 if args.q_bits == 32 else PAPER_TABLE_12
    print(f"{'m':>10s} {'p (ours)':>10s} {'p (paper)':>10s}")
    for m in sorted(table):
        p_paper, _, sigma = table[m]
        print(f"{m:10,d} {max_plaintext_modulus(m, args.q_bits, sigma):10,d}"
              f" {p_paper:10,d}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro import TiptoeConfig, TiptoeEngine, obs
    from repro.core.costs import CostLedger
    from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
    from repro.obs.export import dump_trace, metrics_to_dict

    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=args.docs, seed=args.seed)
    )
    tracer, registry = obs.enable()
    try:
        with TiptoeEngine.build(
            corpus.texts(),
            corpus.urls(),
            TiptoeConfig(),
            rng=np.random.default_rng(args.seed),
        ) as engine:
            result = None
            for i in range(args.queries):
                query = corpus.documents[i % len(corpus.documents)].text[:60]
                result = engine.search(
                    query, np.random.default_rng(args.seed + 1 + i)
                )
            ledger = CostLedger()
            ledger.merge(engine.ranking_service.ledger)
            ledger.merge(engine.url_service.ledger)
            trace = tracer.last_trace()
            if args.json:
                print(json.dumps(metrics_to_dict(registry), indent=2))
            else:
                print(
                    obs.render_report(
                        metrics=registry,
                        trace=trace,
                        ledger=ledger,
                        traffic=result.traffic if result else None,
                    )
                )
            if args.trace_out and trace is not None:
                path = dump_trace(trace, args.trace_out)
                print(f"trace written to {path}")
    finally:
        obs.disable()
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    from repro.core.config import TiptoeConfig
    from repro.core.indexer import TiptoeIndex
    from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig

    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=args.docs, seed=args.seed)
    )
    # --precompute also runs the kernel autotuner: the sidecar then
    # carries a KernelPlan record and serve cold-starts tuned.
    config = TiptoeConfig(
        kernel_autotune=bool(args.precompute and not args.no_kernel_autotune)
    )
    index = TiptoeIndex.build(
        corpus.texts(),
        corpus.urls(),
        config,
        rng=np.random.default_rng(args.seed),
    )
    # Only override the config default when the flag is given.
    index.save(args.out, precompute=True if args.precompute else None)
    print(f"index over {args.docs} documents written to {args.out}")
    return 0


def _cmd_tune_kernels(args: argparse.Namespace) -> int:
    from repro.core import artifacts
    from repro.core.indexer import TiptoeIndex
    from repro.lwe import backends as kernel_backends

    index = TiptoeIndex.load(args.artifacts)
    record = kernel_backends.tune_index(
        index,
        batch_size=args.batch,
        repeats=args.repeats,
        max_seconds=args.max_seconds,
    )
    artifacts.write_precompute_sidecar(
        index, args.artifacts, kernel_plan=record
    )
    for which, entry in record.items():
        print(
            f"{which}: backend={entry['backend']}"
            f" limb_bits={entry['limb_bits']}"
            f" chunk_rows={entry['chunk_rows']}"
            f" workers={entry['workers']}"
            f" throughput={entry['throughput']:.1f} q/s"
        )
    print(f"kernel plan written to {args.artifacts}/precompute.npz")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.indexer import TiptoeIndex
    from repro.core.services import build_services
    from repro.net.tcp import ServerRunner

    index = TiptoeIndex.load(args.artifacts)
    if args.kernel_backend is not None:
        index.config = index.config.with_(kernel_backend=args.kernel_backend)
    runner = ServerRunner(
        build_services(
            index, shard=args.shard, num_shards=args.num_shards
        ).values(),
        host=args.host,
        port=args.port,
        max_workers=args.workers,
    )
    runner.start()
    host, port = runner.address
    # The bound port line is the hand-off contract with `query`, the
    # fleet launcher, and the CI smoke test: printed first and flushed
    # immediately.
    print(f"serving on {host}:{port}", flush=True)
    try:
        runner.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        runner.close()
    return 0


def _write_fleet_pidfiles(run_dir, launcher) -> list:
    """Drop one pidfile per process under the run directory.

    ``router.pid`` is this process; ``shard<i>-replica<j>.pid`` are the
    worker subprocesses.  Process managers watch these instead of
    scraping stdout; they live under ``--run-dir`` (a tempdir unless
    overridden) so a killed fleet never litters the working tree.
    """
    import os

    written = []
    pids = [("router", os.getpid())]
    for shard, row in enumerate(launcher.procs):
        for replica, proc in enumerate(row):
            pids.append((f"shard{shard}-replica{replica}", proc.pid))
    for name, pid in pids:
        path = run_dir / f"{name}.pid"
        path.write_text(f"{pid}\n")
        written.append(path)
    return written


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.core import artifacts
    from repro.core.fleet import FleetConfig, FleetLauncher, FleetRouter
    from repro.net.tcp import ServerRunner

    launcher = FleetLauncher(
        args.artifacts,
        num_shards=args.shards,
        replicas_per_shard=args.replicas,
        host=args.host,
    )
    router = FleetRouter(
        FleetConfig(
            max_inflight=args.max_inflight,
            rpc_timeout_s=args.rpc_timeout,
        )
    )
    runner = ServerRunner(
        [router],
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        fallback=router.route,
    )
    # SIGTERM must run the finally below, or the worker subprocesses
    # outlive the front door as orphans (`kill <pid>` is how process
    # managers stop us).
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    if args.run_dir is not None:
        run_dir = Path(args.run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
    else:
        run_dir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    pidfiles: list = []
    try:
        spec = launcher.start()
        pidfiles = _write_fleet_pidfiles(run_dir, launcher)
        router.add_generation(spec, make_current=True)
        runner.start()
        router.warm_generation(spec.generation)
        host, port = runner.address
        # Hand-off contract, fleet flavor: first line carries the bound
        # front-door address and the serving index generation tag.
        print(
            f"fleet serving on {host}:{port}"
            f" generation {spec.generation}",
            flush=True,
        )
        print(
            f"  {args.shards} shard(s) x {args.replicas} replica(s),"
            f" artifact {artifacts.artifact_digest(args.artifacts)[:12]}...,"
            f" pidfiles in {run_dir}",
            flush=True,
        )
        runner.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        runner.close()
        launcher.stop()
        for path in pidfiles:
            path.unlink(missing_ok=True)
    return 0


def _ingest_source(args: argparse.Namespace):
    from repro.corpus.source import (
        MutatedDocumentSource,
        SyntheticDocumentSource,
        TrecDocumentSource,
    )
    from repro.corpus.synthetic import SyntheticCorpusConfig

    if args.trec is not None:
        source = TrecDocumentSource(args.trec, batch_size=args.batch_size)
    else:
        source = SyntheticDocumentSource(
            SyntheticCorpusConfig(num_docs=args.docs, seed=args.seed),
            batch_size=args.batch_size,
        )
    if getattr(args, "mutate_fraction", 0.0):
        source = MutatedDocumentSource(
            source, args.mutate_fraction, mutate_seed=args.mutate_seed
        )
    return source


def _cmd_ingest(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.config import TiptoeConfig
    from repro.ingest import IngestConfig, run_ingest

    out = Path(args.out)
    spool = Path(args.spool) if args.spool else out.with_suffix(".spool")
    report = run_ingest(
        _ingest_source(args),
        TiptoeConfig(),
        out,
        spool_dir=spool,
        ingest=IngestConfig(batch_size=args.batch_size, workers=args.workers),
        precompute=True,
    )
    for stage in report.stages:
        counters = " ".join(f"{k}={v}" for k, v in sorted(stage.counters.items()))
        print(f"  {stage.name:8s} {stage.status:8s} {counters}")
    print(
        f"index over {report.num_docs} documents"
        f" ({report.num_clusters} clusters) written to {out};"
        f" generation {report.generation_tag}, spool {spool}"
    )
    return 0


def _cmd_reindex(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.updates import reindex
    from repro.ingest import IngestConfig

    prev = Path(args.artifacts)
    spool = Path(args.spool) if args.spool else prev.with_suffix(".spool")
    report = reindex(
        prev,
        _ingest_source(args),
        args.out,
        spool_dir=spool,
        ingest=IngestConfig(batch_size=args.batch_size, workers=args.workers),
        full=args.full,
    )
    mode = "full rebuild" if report.full else "delta"
    print(
        f"{mode}: {report.docs_embedded} docs embedded"
        f" / {report.docs_reused} reused;"
        f" {report.clusters_encrypted} clusters re-encrypted"
        f" / {report.clusters_reused} reused"
    )
    print(
        f"snapshot over {report.num_docs} documents written to"
        f" {report.out_dir}; generation {report.generation_tag}"
        f" (swap-ready for serve-fleet)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.engine import TiptoeEngine
    from repro.core.indexer import TiptoeIndex

    index = TiptoeIndex.load(args.artifacts)
    engine = TiptoeEngine.connect(
        index, args.host, args.port, generation=args.generation
    )
    try:
        result = engine.search(args.query, np.random.default_rng(args.seed))
        for r in result.results[: args.top]:
            print(f"  score={r.score:6d}  {r.url or '(outside fetched batch)'}")
        up, down = result.traffic.bytes_up(), result.traffic.bytes_down()
        print(f"traffic: {up:,} B up / {down:,} B down")
    finally:
        engine.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tiptoe private-search reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one private query")
    demo.add_argument("--docs", type=int, default=400)
    demo.add_argument("--query", type=str, default=None)
    demo.add_argument("--top", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    plan = sub.add_parser("plan", help="analytic cost plan (SS8.5)")
    plan.add_argument("docs", type=int)
    plan.add_argument("--dim", type=int, default=192)
    plan.set_defaults(func=_cmd_plan)

    quality = sub.add_parser("quality", help="quick quality evaluation")
    quality.add_argument("--docs", type=int, default=500)
    quality.add_argument("--queries", type=int, default=50)
    quality.add_argument("--seed", type=int, default=0)
    quality.set_defaults(func=_cmd_quality)

    params = sub.add_parser("params", help="LWE parameter table")
    params.add_argument("--q-bits", type=int, choices=(32, 64), default=32)
    params.set_defaults(func=_cmd_params)

    obs_report = sub.add_parser(
        "obs-report", help="instrumented query run + observability report"
    )
    obs_report.add_argument("--docs", type=int, default=400)
    obs_report.add_argument("--queries", type=int, default=3)
    obs_report.add_argument("--seed", type=int, default=0)
    obs_report.add_argument(
        "--trace-out", type=str, default=None,
        help="write the last query's trace as JSON to this path",
    )
    obs_report.add_argument(
        "--json", action="store_true",
        help="dump the metrics snapshot as JSON instead of the text report",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    build_index = sub.add_parser(
        "build-index", help="run the batch jobs and persist the artifacts"
    )
    build_index.add_argument("out", type=str, help="artifact directory")
    build_index.add_argument("--docs", type=int, default=400)
    build_index.add_argument("--seed", type=int, default=0)
    build_index.add_argument(
        "--precompute", action="store_true",
        help="also write the precompute.npz sidecar (hint NTT tables +"
        " plan metadata + autotuned kernel plan) so serve cold-starts"
        " without forward NTTs and straight into the tuned kernel",
    )
    build_index.add_argument(
        "--no-kernel-autotune", action="store_true",
        help="with --precompute: skip the kernel autotuner (the sidecar"
        " then carries no KernelPlan record and serve uses defaults)",
    )
    build_index.set_defaults(func=_cmd_build_index)

    tune_kernels = sub.add_parser(
        "tune-kernels",
        help="benchmark kernel backends against saved index matrices and"
        " persist the winning KernelPlan in the precompute sidecar",
    )
    tune_kernels.add_argument("artifacts", type=str, help="artifact directory")
    tune_kernels.add_argument(
        "--batch", type=int, default=16,
        help="stacked batch width the tuner optimizes for",
    )
    tune_kernels.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per candidate (more = less noise)",
    )
    tune_kernels.add_argument(
        "--max-seconds", type=float, default=None,
        help="total tuning budget; once spent, remaining candidates are"
        " skipped (a reference default always runs, so a plan is"
        " always produced) -- keeps CI tuning bounded",
    )
    tune_kernels.set_defaults(func=_cmd_tune_kernels)

    serve = sub.add_parser(
        "serve", help="serve saved index artifacts over TCP"
    )
    serve.add_argument("artifacts", type=str, help="artifact directory")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; the bound port is printed)",
    )
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument(
        "--shard", type=int, default=None,
        help="serve only this ranking shard (fleet worker mode);"
        " answers are partial sums the fleet router aggregates",
    )
    serve.add_argument(
        "--num-shards", type=int, default=1,
        help="total ranking shards in the fleet (with --shard)",
    )
    serve.add_argument(
        "--kernel-backend", type=str, default=None,
        choices=("auto", "reference", "multiprocess", "numba", "cnative"),
        help="kernel backend for the hot GEMMs (default: the index"
        " config's knob -- 'auto' uses the sidecar's tuned plan)",
    )
    serve.set_defaults(func=_cmd_serve)

    serve_fleet = sub.add_parser(
        "serve-fleet",
        help="spawn shard worker processes and serve through the"
        " fleet router front door",
    )
    serve_fleet.add_argument(
        "artifacts", type=str, help="artifact directory"
    )
    serve_fleet.add_argument("--host", type=str, default="127.0.0.1")
    serve_fleet.add_argument(
        "--port", type=int, default=0,
        help="front-door TCP port (0 picks a free one)",
    )
    serve_fleet.add_argument(
        "--shards", type=int, default=3,
        help="ranking shards (worker processes per replica set)",
    )
    serve_fleet.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (failover capacity)",
    )
    serve_fleet.add_argument("--workers", type=int, default=8)
    serve_fleet.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission-control cap before load shedding",
    )
    serve_fleet.add_argument("--rpc-timeout", type=float, default=5.0)
    serve_fleet.add_argument(
        "--run-dir", type=str, default=None,
        help="directory for router/worker pidfiles (default: a fresh"
        " tempdir, so nothing lands in the working tree)",
    )
    serve_fleet.set_defaults(func=_cmd_serve_fleet)

    ingest = sub.add_parser(
        "ingest",
        help="streaming staged index build (bounded memory, resumable)",
    )
    ingest.add_argument("out", type=str, help="artifact directory")
    ingest.add_argument("--docs", type=int, default=400)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--trec", type=str, default=None,
        help="stream a docs.tsv export instead of the synthetic corpus",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=512,
        help="documents per streamed batch (the memory knob)",
    )
    ingest.add_argument(
        "--workers", type=int, default=0,
        help="embedding worker processes (0 = inline)",
    )
    ingest.add_argument(
        "--spool", type=str, default=None,
        help="stage checkpoint directory (default: <out>.spool);"
        " a rerun resumes from the last completed stage",
    )
    ingest.add_argument("--mutate-fraction", type=float, default=0.0)
    ingest.add_argument("--mutate-seed", type=int, default=0)
    ingest.set_defaults(func=_cmd_ingest)

    reindex_p = sub.add_parser(
        "reindex",
        help="incremental delta rebuild against a new corpus snapshot",
    )
    reindex_p.add_argument(
        "artifacts", type=str, help="previous snapshot's artifact directory"
    )
    reindex_p.add_argument("out", type=str, help="new artifact directory")
    reindex_p.add_argument("--docs", type=int, default=400)
    reindex_p.add_argument("--seed", type=int, default=0)
    reindex_p.add_argument("--trec", type=str, default=None)
    reindex_p.add_argument("--batch-size", type=int, default=512)
    reindex_p.add_argument("--workers", type=int, default=0)
    reindex_p.add_argument(
        "--spool", type=str, default=None,
        help="the BASE build's spool directory (default:"
        " <artifacts>.spool) -- the delta's hint cache lives there",
    )
    reindex_p.add_argument(
        "--mutate-fraction", type=float, default=0.0,
        help="seeded fraction of documents to mutate (snapshot-change"
        " simulator for the synthetic corpus)",
    )
    reindex_p.add_argument("--mutate-seed", type=int, default=0)
    reindex_p.add_argument(
        "--full", action="store_true",
        help="rebuild from scratch under the same pinned models"
        " (bit-identity check against the delta path)",
    )
    reindex_p.set_defaults(func=_cmd_reindex)

    query = sub.add_parser(
        "query", help="run a private search against a running serve"
    )
    query.add_argument("artifacts", type=str, help="artifact directory")
    query.add_argument("query", type=str)
    query.add_argument("--host", type=str, default="127.0.0.1")
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--top", type=int, default=5)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--generation", type=str, default=None,
        help="pin the session to one fleet index generation tag",
    )
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer (head, less) that closed early.
        return 0


if __name__ == "__main__":
    sys.exit(main())
