"""Hardware calibration: tie the analytic cost model to this machine.

The cost model's default throughput constant is derived from the
paper's AWS fleet.  :func:`measure_word_ops_per_second` benchmarks
the actual hot-loop kernel (uint64 wrap-around matmul) on the current
machine, and :func:`calibrated_model` returns a
:class:`~repro.evalx.costmodel.TiptoeCostModel` whose core-second
predictions reflect *this* hardware -- useful for answering "what
would serving cost on my machines?" rather than "on the paper's".
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.evalx.costmodel import TiptoeCostModel


def measure_word_ops_per_second(
    rows: int = 1024,
    cols: int = 4096,
    repeats: int = 5,
    seed: int = 0,
) -> float:
    """Time the uint64 matmul kernel; return word-ops per second.

    Uses the SS6.1 accounting of 2 word ops per matrix entry.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1 << 62, size=(rows, cols), dtype=np.uint64)
    vector = rng.integers(0, 1 << 62, size=cols, dtype=np.uint64)
    with np.errstate(over="ignore"):
        matrix @ vector  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            matrix @ vector
        elapsed = time.perf_counter() - start
    ops = 2 * rows * cols * repeats
    return ops / max(elapsed, 1e-12)


def calibrated_model(
    base: TiptoeCostModel | None = None,
    measured_ops_per_second: float | None = None,
) -> tuple[TiptoeCostModel, float]:
    """(cost model at this machine's throughput, slowdown vs. paper).

    Token-generation costs rescale automatically: they are counted in
    word ops, and both phases bottleneck on the same class of integer
    arithmetic.
    """
    base = base if base is not None else TiptoeCostModel()
    measured = (
        measured_ops_per_second
        if measured_ops_per_second is not None
        else measure_word_ops_per_second()
    )
    if measured <= 0:
        raise ValueError("measured throughput must be positive")
    ratio = base.ops_per_core_second / measured
    return replace(
        base,
        ops_per_core_second=measured,
        token_ops_per_row=base.token_ops_per_row,  # counted in word ops
    ), ratio


def calibration_report(num_docs: int = 364_000_000) -> dict:
    """Side-by-side per-query compute: paper hardware vs this machine."""
    measured = measure_word_ops_per_second()
    paper = TiptoeCostModel()
    local, ratio = calibrated_model(paper, measured)
    return {
        "measured_ops_per_second": measured,
        "paper_ops_per_second": paper.ops_per_core_second,
        "slowdown_vs_paper": ratio,
        "paper_core_seconds": paper.online_core_seconds(num_docs)
        + paper.token_core_seconds(num_docs),
        "local_core_seconds": local.online_core_seconds(num_docs)
        + local.token_core_seconds(num_docs),
    }
