"""Evaluation: search quality, analytic costs, baselines, ablations.

Everything the paper's SS8 reports is regenerated from here; the
benchmarks under ``benchmarks/`` are thin printers over this package.
(Named ``evalx`` because ``eval`` is a Python builtin.)
"""

from repro.evalx.ablation import AblationPoint, run_ablation_ladder
from repro.evalx.baselines import (
    CoeusModel,
    LatentOracleRetriever,
    client_side_index_bytes,
)
from repro.evalx.costmodel import PaperScaleModel, TiptoeCostModel
from repro.evalx.metrics import mrr_at_k, rank_cdf, reciprocal_rank
from repro.evalx.quality import QualityReport, TiptoeQualitySim, evaluate_systems

__all__ = [
    "AblationPoint",
    "CoeusModel",
    "LatentOracleRetriever",
    "PaperScaleModel",
    "QualityReport",
    "TiptoeCostModel",
    "TiptoeQualitySim",
    "client_side_index_bytes",
    "evaluate_systems",
    "mrr_at_k",
    "rank_cdf",
    "reciprocal_rank",
    "run_ablation_ladder",
]
