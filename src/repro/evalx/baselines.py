"""Comparison baselines: the latent oracle, Coeus, client-side indexes.

* :class:`LatentOracleRetriever` stands in for ColBERT (DESIGN.md
  substitution 4): it ranks with the corpus generator's true topic
  mixtures, upper-bounding any embedding trained from text alone.
* :class:`CoeusModel` reproduces SS8.3/8.4's analytic Coeus numbers:
  the paper reports 50 MiB and 12 900 core-seconds per query over 5M
  Wikipedia articles, a 10.66 * N byte communication formula (from the
  Coeus authors), and linear server-compute scaling.
* :func:`client_side_index_bytes` models the "download the index"
  baseline of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.synthetic import SyntheticCorpus

MIB = 1024 * 1024
GIB = 1024 * MIB


class LatentOracleRetriever:
    """Ranks documents with the generator's latent topic mixtures.

    Queries are mapped to topic space through the exact word-topic
    posterior of the generative model -- knowledge no trainable system
    has -- so this plays the role of the strongest non-private neural
    baseline (ColBERT in Fig. 4).  Like ColBERT (a token-level
    late-interaction model), it also credits exact token matches, which
    makes it strong on rare-string queries where pure topic similarity
    is blind.
    """

    exact_match_bonus: float = 2.0

    def __init__(self, corpus: SyntheticCorpus):
        self.corpus = corpus
        word_given_topic = corpus.topic_word_dists  # (k, v)
        # Bayes with a uniform topic prior: p(topic | word).
        joint = word_given_topic / word_given_topic.sum(axis=0, keepdims=True)
        self._topic_given_word = joint.T  # (v, k)
        self._word_ids = {w: i for i, w in enumerate(corpus.vocabulary)}
        latents = corpus.latent_vectors()
        norms = np.linalg.norm(latents, axis=1, keepdims=True)
        self._doc_latents = np.divide(
            latents, norms, out=np.zeros_like(latents), where=norms > 0
        )

    def query_latent(self, query: str) -> np.ndarray:
        vec = np.zeros(self.corpus.config.num_topics)
        for word in query.split():
            idx = self._word_ids.get(word)
            if idx is not None:
                vec += self._topic_given_word[idx]
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def rank(self, query: str, k: int = 100) -> list[int]:
        scores = self._doc_latents @ self.query_latent(query)
        rare = [w for w in query.split() if w not in self._word_ids]
        if rare:
            # Token-level exact matching on out-of-vocabulary strings
            # (entities): the late-interaction component.
            for i, doc in enumerate(self.corpus.documents):
                text_words = set(doc.text.split())
                hits = sum(w in text_words for w in rare)
                scores[i] += self.exact_match_bonus * hits
        return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]


@dataclass(frozen=True)
class CoeusModel:
    """Analytic per-query costs for Coeus query-scoring (SS8.3-8.4)."""

    #: Coeus's reported numbers at its native 5M-document scale.
    reference_docs: int = 5_000_000
    reference_comm_mib: float = 50.0
    reference_core_seconds: float = 12_900.0
    reference_aws_cost: float = 0.059
    #: Bytes of communication per document (from the Coeus authors).
    comm_bytes_per_doc: float = 10.66

    def communication_bytes(self, num_docs: int) -> float:
        return self.comm_bytes_per_doc * num_docs

    def core_seconds(self, num_docs: int) -> float:
        """Server compute scales linearly with the corpus (SS8.3)."""
        return self.reference_core_seconds * num_docs / self.reference_docs

    def aws_cost(self, num_docs: int) -> float:
        return self.reference_aws_cost * num_docs / self.reference_docs

    def summary(self, num_docs: int) -> dict:
        return {
            "system": "coeus",
            "docs": num_docs,
            "comm_mib": self.communication_bytes(num_docs) / MIB,
            "core_seconds": self.core_seconds(num_docs),
            "aws_cost": self.aws_cost(num_docs),
        }


def client_side_index_bytes(
    num_docs: int,
    dim: int = 192,
    precision_bits: int = 4,
    duplication: float = 1.2,
    url_bytes: float = 22.0,
) -> dict:
    """Sizes for the "store the index on the client" baseline (Table 6).

    The Tiptoe-index variant stores the quantized embeddings plus the
    compressed URLs; the paper reports 48 GiB at 360M documents.  The
    BM25/ColBERT figures are the paper's own scaled estimates and are
    reported as constants for the Table 6 bench.
    """
    embedding_bytes = num_docs * duplication * dim * precision_bits / 8
    url_total = num_docs * duplication * url_bytes
    return {
        "tiptoe_index_bytes": embedding_bytes + url_total,
        "urls_only_bytes": num_docs * url_bytes,
        # Paper-reported estimates at 360M docs, for side-by-side print
        # (TiB converted to bytes):
        "bm25_index_bytes_paper": 4.6 * 1024 * GIB,
        "colbert_index_bytes_paper": 6.4 * 1024 * GIB,
        "plaid_index_bytes_paper": 0.9 * 1024 * GIB,
    }
