"""ASCII rendering of the paper's figures.

The benchmarks regenerate the *data* behind Figures 4, 8, and 9; this
module renders it as terminal plots so a bench run visually shows the
curves (CDF plateaus, scaling laws, the optimization ladder) without a
plotting dependency.
"""

from __future__ import annotations

import math


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named (x, y) series on one shared-axis character grid.

    Each series is drawn with its own marker (its name's first
    character, uppercased); later series overwrite earlier ones where
    they collide.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")

    def tx(value: float) -> float:
        if not log_x:
            return value
        return math.log10(max(value, 1e-12))

    def ty(value: float) -> float:
        if not log_y:
            return value
        return math.log10(max(value, 1e-12))

    xs = [tx(x) for pts in series.values() for x, _ in pts]
    ys = [ty(y) for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, points in series.items():
        marker = (name[:1] or "?").upper()
        for x, y in points:
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - round((ty(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(value: float, log: bool) -> str:
        real = 10**value if log else value
        return f"{real:.3g}"

    lines = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{fmt(y_hi, log_y):>8s} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{fmt(y_lo, log_y):>8s} +" + "-" * width + "+")
    lines.append(
        " " * 10
        + fmt(x_lo, log_x)
        + " " * max(1, width - len(fmt(x_lo, log_x)) - len(fmt(x_hi, log_x)))
        + fmt(x_hi, log_x)
        + (f"   ({x_label})" if x_label else "")
    )
    legend = "  legend: " + "  ".join(
        f"{(name[:1] or '?').upper()}={name}" for name in series
    )
    lines.append(legend)
    return "\n".join(lines)


def cdf_chart(cdfs: dict[str, list[float]], **kwargs) -> str:
    """Fig. 4 (right): index-vs-fraction curves from rank CDFs."""
    series = {
        name: [(i + 1, float(v)) for i, v in enumerate(values)]
        for name, values in cdfs.items()
    }
    return ascii_chart(series, x_label="index i", y_label="P[rank <= i]", **kwargs)
