"""The optimization-impact ladder of Figure 9 (SS8.6).

Six configurations, cumulative:

1. no optimizations -- every document's score comes back, and the top
   100 URLs are fetched with individual (SEAL-PIR-style) queries;
2. cluster embeddings -- only one cluster's scores come back;
3. compress URL chunks and retrieve only the chunk with the top
   result (chunks are arbitrary -- "random" -- at this step);
4. group URL chunks by content;
5. assign boundary documents to two clusters;
6. reduce the embedding dimension ~3x with PCA.

Search quality (MRR@100) is measured on the synthetic benchmark with
:class:`repro.evalx.quality.TiptoeQualitySim`; communication and
computation are evaluated at paper scale with the analytic cost model,
mirroring how the paper itself plots "expected performance" for the
non-final configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TiptoeConfig
from repro.corpus.benchmark import QueryBenchmark
from repro.corpus.synthetic import SyntheticCorpus
from repro.evalx.costmodel import MIB, TiptoeCostModel
from repro.evalx.metrics import mrr_at_k
from repro.evalx.quality import TiptoeQualitySim

#: Per-op slowdown of the SEAL-PIR-style scheme used by step 1's URL
#: retrieval, relative to SimplePIR (SS8.4: "roughly an order of
#: magnitude faster than prior single-server PIR", plus query-expansion
#: overheads).
SEAL_PIR_OP_FACTOR = 40.0

#: Step 3 <- paper: batching cuts URL communication and compute 4x.
PER_URL_RETRIEVAL_FACTOR = 4.0


@dataclass(frozen=True)
class AblationPoint:
    """One rung of the Fig. 9 ladder."""

    step: int
    label: str
    mrr: float
    comm_mib: float
    core_seconds: float


def _quality(
    corpus: SyntheticCorpus,
    benchmark: QueryBenchmark,
    config: TiptoeConfig,
    mode: str,
    embedder,
    embeddings: np.ndarray,
    rng_seed: int,
) -> float:
    sim = TiptoeQualitySim.build(
        corpus.texts(),
        corpus.urls(),
        config=config,
        mode=mode,
        embedder=embedder,
        embeddings=embeddings,
        rng=np.random.default_rng(rng_seed),
    )
    targets = [q.target_doc_id for q in benchmark.queries]
    ranked = [sim.rank(q.text, 100) for q in benchmark.queries]
    return mrr_at_k(ranked, targets, 100)


def run_ablation_ladder(
    corpus: SyntheticCorpus,
    benchmark: QueryBenchmark,
    base_config: TiptoeConfig | None = None,
    paper_docs: int = 364_000_000,
) -> list[AblationPoint]:
    """Measure quality at simulation scale, costs at paper scale."""
    cfg = base_config if base_config is not None else TiptoeConfig()
    if cfg.pca_dim is None:
        raise ValueError("base config must set pca_dim for step 6")
    from repro.embeddings.lsa import LsaEmbedder

    embedder = LsaEmbedder.fit(corpus.texts(), dim=cfg.embedding_dim)
    embeddings = embedder.embed_batch(corpus.texts())

    # Paper-scale cost models: full dimension until PCA lands at step
    # 6; no boundary duplication until step 5.
    dim_full, dim_pca = 576, 192
    model_full = TiptoeCostModel(dim=dim_full, duplication=1.0)
    model_dup = TiptoeCostModel(dim=dim_full, duplication=1.2)
    model_final = TiptoeCostModel(dim=dim_pca, duplication=1.2)

    no_pca = cfg.with_(pca_dim=None)
    no_dup = no_pca.with_(boundary_fraction=0.0)
    scattered = no_dup.with_(group_urls_by_content=False)

    points = []

    # Step 1: no clustering, per-document scores, per-URL SEAL-PIR.
    mrr1 = _quality(
        corpus, benchmark, no_dup, "exhaustive", embedder, embeddings, 1
    )
    comm1 = paper_docs * 8 + 100 * PER_URL_RETRIEVAL_FACTOR * (
        model_full.url_upload_bytes(paper_docs)
        + model_full.url_download_bytes(paper_docs)
    )
    ops1 = model_full.ranking_word_ops(paper_docs) + (
        100 * model_full.url_word_ops(paper_docs) * SEAL_PIR_OP_FACTOR
    )
    points.append(
        AblationPoint(
            1, "no optimizations", mrr1, comm1 / MIB,
            ops1 / model_full.ops_per_core_second,
        )
    )

    # Step 2: clustering; URLs still fetched one by one (4x the batch
    # cost, per the paper), now with SimplePIR.
    mrr2 = _quality(
        corpus, benchmark, no_dup, "cluster", embedder, embeddings, 2
    )
    url_comm = model_full.url_upload_bytes(paper_docs) + (
        model_full.url_download_bytes(paper_docs)
    )
    comm2 = (
        model_full.ranking_upload_bytes(paper_docs)
        + model_full.ranking_download_bytes(paper_docs)
        + PER_URL_RETRIEVAL_FACTOR * url_comm
    )
    ops2 = model_full.ranking_word_ops(paper_docs) + (
        PER_URL_RETRIEVAL_FACTOR * model_full.url_word_ops(paper_docs)
    )
    points.append(
        AblationPoint(
            2, "+ clustering", mrr2, comm2 / MIB,
            ops2 / model_full.ops_per_core_second,
        )
    )

    # Steps 3-6 all pay the final online comm/ops of their model.
    def online(model):
        comm = model.online_bytes(paper_docs)
        ops = model.ranking_word_ops(paper_docs) + model.url_word_ops(
            paper_docs
        )
        return comm / MIB, ops / model.ops_per_core_second

    mrr3 = _quality(
        corpus, benchmark, scattered, "cluster+batch", embedder, embeddings, 3
    )
    comm3, cs3 = online(model_full)
    points.append(AblationPoint(3, "+ URL batches", mrr3, comm3, cs3))

    mrr4 = _quality(
        corpus, benchmark, no_dup, "cluster+batch", embedder, embeddings, 4
    )
    points.append(AblationPoint(4, "+ content grouping", mrr4, comm3, cs3))

    mrr5 = _quality(
        corpus, benchmark, no_pca, "cluster+batch", embedder, embeddings, 5
    )
    comm5, cs5 = online(model_dup)
    points.append(AblationPoint(5, "+ boundary duplication", mrr5, comm5, cs5))

    mrr6 = _quality(
        corpus, benchmark, cfg, "cluster+batch", embedder, embeddings, 6
    )
    comm6, cs6 = online(model_final)
    points.append(AblationPoint(6, "+ PCA (full Tiptoe)", mrr6, comm6, cs6))
    return points
