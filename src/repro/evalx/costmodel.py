"""The analytic cost model (Tables 6-7, Figures 8-9 x-axes).

The measured system in this repository runs at simulation scale; the
paper's headline numbers are at 360M+ documents.  This module scales
the protocol's *exact* cost formulas (SS4.2, SS6.1, Appendix A/C) to
arbitrary corpus sizes, with two constants calibrated against the
paper's own reported numbers:

* ``ops_per_core_second`` = 3.0e9 -- implied by Table 7's ranking
  throughput (2.9 queries/s on 160 vCPUs = 55 core-seconds for
  2 * 437M * 192 word operations);
* ``token_ops_per_row`` and ``token_down_bytes_per_row`` -- implied by
  Table 7's token-generation throughput (0.5 q/s on 32 vCPUs) and
  token download (9.8 MiB over ~67k hint rows).

With those two constants fixed, the model reproduces the rest of
Tables 6-7 from first principles (see EXPERIMENTS.md), and Figure 8 is
the same model swept over corpus size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lwe.params import max_plaintext_modulus

MIB = 1024 * 1024
GIB = 1024 * MIB

#: AWS list prices used by Table 6.
PRICE_PER_VCPU_HOUR = 0.252 / 4  # r5.xlarge has 4 vCPUs
PRICE_PER_GIB_EGRESS = 0.09


@dataclass(frozen=True)
class TiptoeCostModel:
    """Per-query cost formulas for a Tiptoe deployment."""

    dim: int = 192  # post-PCA embedding dimension
    duplication: float = 1.2
    url_batch_size: int = 880
    url_bytes_per_entry: float = 22.0
    lattice_n: int = 2048  # inner secret dimension (ranking, q = 2^64)
    outer_n: int = 2048  # outer RLWE ring dimension
    ranking_word_bytes: int = 8
    url_word_bytes: int = 4
    ops_per_core_second: float = 3.0e9
    token_ops_per_row: float = 2_900_000.0
    token_down_bytes_per_row: float = 150.0
    #: Cluster size at the paper's text operating point (App. C).
    reference_cluster_size: int = 50_000
    reference_corpus: int = 364_000_000
    reference_dim: int = 192

    # -- structural quantities ------------------------------------------------

    def cluster_size(self, num_docs: int) -> int:
        """sqrt(N * d) scaling anchored at the paper's operating point.

        SS4.2: with C ~ sqrt(N/d) clusters (the large-d refinement),
        clusters hold ~sqrt(N * d) documents each -- which is why the
        image deployment (2x dimension) runs larger clusters.
        """
        slots = num_docs * self.duplication
        ref_slots = self.reference_corpus * self.duplication
        scale = self.reference_cluster_size / math.sqrt(
            ref_slots * self.reference_dim
        )
        return max(1, int(round(math.sqrt(slots * self.dim) * scale)))

    def num_clusters(self, num_docs: int) -> int:
        slots = num_docs * self.duplication
        return max(1, math.ceil(slots / self.cluster_size(num_docs)))

    def url_rows(self, num_docs: int) -> int:
        """Height of the URL PIR matrix (digits per batch record)."""
        batch_bytes = self.url_batch_size * self.url_bytes_per_entry
        num_batches = self.num_url_batches(num_docs)
        p = max_plaintext_modulus(max(num_batches, 2), 32, 6.4)
        bits = max(1, int(p).bit_length() - 1)
        return math.ceil(batch_bytes * 8 / bits)

    def num_url_batches(self, num_docs: int) -> int:
        slots = num_docs * self.duplication
        return max(1, math.ceil(slots / self.url_batch_size))

    # -- communication (Table 7 rows) --------------------------------------------

    def ranking_upload_bytes(self, num_docs: int) -> float:
        return self.dim * self.num_clusters(num_docs) * self.ranking_word_bytes

    def ranking_download_bytes(self, num_docs: int) -> float:
        return self.cluster_size(num_docs) * self.ranking_word_bytes

    def url_upload_bytes(self, num_docs: int) -> float:
        return self.num_url_batches(num_docs) * self.url_word_bytes

    def url_download_bytes(self, num_docs: int) -> float:
        return self.url_rows(num_docs) * self.url_word_bytes

    def token_upload_bytes(self, num_docs: int) -> float:
        """The encrypted-key upload, shared across services (App. A.3)."""
        return self.lattice_n * self.outer_n * 8

    def token_download_bytes(self, num_docs: int) -> float:
        rows = self.cluster_size(num_docs) + self.url_rows(num_docs)
        return rows * self.token_down_bytes_per_row

    def online_bytes(self, num_docs: int) -> float:
        """The latency-critical traffic (ranking + URL phases)."""
        return (
            self.ranking_upload_bytes(num_docs)
            + self.ranking_download_bytes(num_docs)
            + self.url_upload_bytes(num_docs)
            + self.url_download_bytes(num_docs)
        )

    def total_bytes(self, num_docs: int) -> float:
        return (
            self.online_bytes(num_docs)
            + self.token_upload_bytes(num_docs)
            + self.token_download_bytes(num_docs)
        )

    # -- computation ---------------------------------------------------------------

    def ranking_word_ops(self, num_docs: int) -> float:
        """2 word ops per matrix entry (SS6.1) over N * dup * d entries."""
        return 2.0 * num_docs * self.duplication * self.dim

    def url_word_ops(self, num_docs: int) -> float:
        return 2.0 * self.num_url_batches(num_docs) * self.url_rows(num_docs)

    def token_word_ops(self, num_docs: int) -> float:
        rows = self.cluster_size(num_docs) + self.url_rows(num_docs)
        return rows * self.token_ops_per_row

    def online_core_seconds(self, num_docs: int) -> float:
        ops = self.ranking_word_ops(num_docs) + self.url_word_ops(num_docs)
        return ops / self.ops_per_core_second

    def token_core_seconds(self, num_docs: int) -> float:
        return self.token_word_ops(num_docs) / self.ops_per_core_second

    # -- latency and dollars ----------------------------------------------------------

    def phase_latency(
        self,
        up_bytes: float,
        down_bytes: float,
        core_seconds: float,
        vcpus: int,
        bandwidth_mbps: float = 100.0,
        rtt_s: float = 0.05,
    ) -> float:
        transfer = (up_bytes + down_bytes) * 8 / (bandwidth_mbps * 1e6)
        return rtt_s + transfer + core_seconds / max(1, vcpus)

    def perceived_latency(
        self, num_docs: int, ranking_vcpus: int, url_vcpus: int
    ) -> float:
        rank = self.phase_latency(
            self.ranking_upload_bytes(num_docs),
            self.ranking_download_bytes(num_docs),
            self.ranking_word_ops(num_docs) / self.ops_per_core_second,
            ranking_vcpus,
        )
        url = self.phase_latency(
            self.url_upload_bytes(num_docs),
            self.url_download_bytes(num_docs),
            self.url_word_ops(num_docs) / self.ops_per_core_second,
            url_vcpus,
        )
        return rank + url

    def token_latency(self, num_docs: int, token_vcpus: int) -> float:
        return self.phase_latency(
            self.token_upload_bytes(num_docs),
            self.token_download_bytes(num_docs),
            self.token_core_seconds(num_docs),
            token_vcpus,
        )

    def aws_cost(self, num_docs: int) -> float:
        """Dollars per query: vCPU time plus egress (Table 6 pricing)."""
        core_s = self.online_core_seconds(num_docs) + self.token_core_seconds(
            num_docs
        )
        egress = (
            self.ranking_download_bytes(num_docs)
            + self.url_download_bytes(num_docs)
            + self.token_download_bytes(num_docs)
        )
        return (
            core_s / 3600.0 * PRICE_PER_VCPU_HOUR
            + egress / GIB * PRICE_PER_GIB_EGRESS
        )

    # -- report rows -----------------------------------------------------------------

    def summary(
        self,
        num_docs: int,
        ranking_vcpus: int = 160,
        url_vcpus: int = 16,
        token_vcpus: int = 32,
    ) -> dict:
        """One Table 6/7-style row for a corpus size."""
        return {
            "docs": num_docs,
            "clusters": self.num_clusters(num_docs),
            "cluster_size": self.cluster_size(num_docs),
            "up_token_mib": self.token_upload_bytes(num_docs) / MIB,
            "down_token_mib": self.token_download_bytes(num_docs) / MIB,
            "up_ranking_mib": self.ranking_upload_bytes(num_docs) / MIB,
            "down_ranking_mib": self.ranking_download_bytes(num_docs) / MIB,
            "up_url_mib": self.url_upload_bytes(num_docs) / MIB,
            "down_url_mib": self.url_download_bytes(num_docs) / MIB,
            "total_mib": self.total_bytes(num_docs) / MIB,
            "online_mib": self.online_bytes(num_docs) / MIB,
            "core_seconds": self.online_core_seconds(num_docs)
            + self.token_core_seconds(num_docs),
            "online_core_seconds": self.online_core_seconds(num_docs),
            "perceived_latency_s": self.perceived_latency(
                num_docs, ranking_vcpus, url_vcpus
            ),
            "token_latency_s": self.token_latency(num_docs, token_vcpus),
            "aws_cost": self.aws_cost(num_docs),
        }

    def figure8_series(self, doc_counts: list[int]) -> list[dict]:
        """The three panels of Fig. 8 over a corpus-size sweep."""
        return [
            {
                "docs": n,
                "computation_core_s": self.online_core_seconds(n)
                + self.token_core_seconds(n),
                "token_comm_mib": (
                    self.token_upload_bytes(n) + self.token_download_bytes(n)
                )
                / MIB,
                "online_comm_mib": self.online_bytes(n) / MIB,
            }
            for n in doc_counts
        ]


@dataclass(frozen=True)
class PaperScaleModel:
    """The paper's two deployments, pre-configured."""

    text: TiptoeCostModel = TiptoeCostModel(dim=192)
    image: TiptoeCostModel = TiptoeCostModel(
        dim=384, reference_corpus=400_000_000
    )

    def table6_rows(self) -> list[dict]:
        """The Tiptoe rows of Table 6 (Coeus comes from baselines)."""
        text = self.text.summary(364_000_000)
        image = self.image.summary(
            400_000_000, ranking_vcpus=320, url_vcpus=32
        )
        return [
            {"system": "tiptoe-text", **text},
            {"system": "tiptoe-image", **image},
        ]
