"""Search-quality evaluation harness (Fig. 4, Fig. 9 y-axis).

:class:`TiptoeQualitySim` reproduces Tiptoe's *search quality* without
running the cryptography: the crypto layers are exact (they change
nothing about which documents rank where -- verified by the
integration tests), so quality sweeps over hundreds of queries use
this fast path.  It supports the ablation ladder's intermediate
configurations:

* ``exhaustive`` -- rank every document by quantized inner product
  (Fig. 9 step 1: no clustering);
* ``cluster`` -- rank only the chosen cluster, return its top-k
  (step 2: clustering, per-URL retrieval);
* ``cluster+batch`` -- additionally restrict output to the URL batch
  containing the best match (steps 3-4; whether batches are scattered
  or content-grouped comes from the index's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TiptoeConfig
from repro.core.indexer import TiptoeIndex
from repro.corpus.benchmark import QueryBenchmark
from repro.embeddings.quantize import quantize
from repro.evalx.metrics import mrr_at_k, rank_cdf


@dataclass
class TiptoeQualitySim:
    """Crypto-free Tiptoe ranking over a built index.

    ``probes`` > 1 models the SS8.2 hypothetical of querying several
    clusters: quality improves, but every probed cluster costs a full
    extra ranking query and URL fetch (the multiprobe benchmark
    quantifies the trade).
    """

    index: TiptoeIndex
    mode: str = "cluster+batch"
    probes: int = 1

    _MODES = ("exhaustive", "cluster", "cluster+batch")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        if self.probes < 1:
            raise ValueError("must probe at least one cluster")
        cfg = self.index.config
        gain = self.index.quantization_gain
        self._quantized = quantize(
            self.index.embeddings * gain, cfg.quantization()
        )

    @classmethod
    def build(
        cls,
        texts: list[str],
        urls: list[str],
        config: TiptoeConfig | None = None,
        mode: str = "cluster+batch",
        embedder=None,
        embeddings: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeQualitySim":
        config = config if config is not None else TiptoeConfig()
        index = TiptoeIndex.build(
            texts, urls, config, embedder=embedder, embeddings=embeddings,
            rng=rng,
        )
        return cls(index=index, mode=mode)

    # -- query path (mirrors TiptoeClient.search, minus encryption) --------

    def _embed(self, query: str) -> tuple[np.ndarray, np.ndarray]:
        embedder = self.index.embedder
        vec = embedder.embed(query)
        if self.index.pca is not None:
            vec = self.index.pca.transform(vec)
        gain = self.index.quantization_gain
        return vec, quantize(vec * gain, self.index.config.quantization())

    def chosen_cluster(self, query: str) -> int:
        vec, _ = self._embed(query)
        return int(np.argmax(self.index.clusters.centroids @ vec))

    def rank(self, query: str, k: int = 100) -> list[int]:
        """Document ids Tiptoe would return, best first."""
        vec, q_emb = self._embed(query)
        if self.mode == "exhaustive":
            scores = self._quantized @ q_emb
            return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]
        layout = self.index.layout
        probed = self.index.clusters.nearest_clusters(vec, self.probes)
        batch_size = self.index.config.url_batch_size
        scored: dict[int, int] = {}
        allowed_batches: set[int] = set()
        for cluster in probed:
            docs = layout.cluster_doc_ids[cluster]
            scores = self._quantized[docs] @ q_emb
            offset = int(layout.cluster_offsets[cluster])
            storage = self._storage_positions(offset, len(docs))
            best_row = int(np.argmax(scores))
            allowed_batches.add(int(storage[best_row]) // batch_size)
            for row, doc in enumerate(docs):
                score = int(scores[row])
                if doc not in scored or score > scored[doc][0]:
                    scored[doc] = (score, int(storage[row]) // batch_size)
        order = sorted(scored, key=lambda d: -scored[d][0])
        if self.mode == "cluster":
            return order[:k]
        # cluster+batch: one URL batch is fetched per probed cluster.
        ranked = [d for d in order if scored[d][1] in allowed_batches]
        return ranked[:k]

    def _storage_positions(self, offset: int, count: int) -> np.ndarray:
        positions = np.arange(offset, offset + count)
        if self.index.url_position_map is not None:
            return self.index.url_position_map[positions]
        return positions

    def cluster_hit(self, query: str, target_doc: int) -> bool:
        """Did the client probe a cluster containing the target?

        The hit rate bounds Tiptoe's quality -- the dotted line of
        Fig. 4 (right).
        """
        cluster = self.chosen_cluster(query)
        return cluster in self.index.clusters.doc_to_clusters[target_doc]


@dataclass
class QualityReport:
    """MRR@k and rank CDFs for a set of systems on one benchmark."""

    k: int
    mrr: dict[str, float]
    cdf: dict[str, np.ndarray]
    per_family_mrr: dict[str, dict[str, float]]

    def ordering(self) -> list[str]:
        """System names sorted best-first by MRR."""
        return sorted(self.mrr, key=self.mrr.get, reverse=True)


def evaluate_systems(
    benchmark: QueryBenchmark,
    systems: dict[str, object],
    k: int = 100,
) -> QualityReport:
    """Run every system over every query; systems expose ``rank``."""
    targets = [q.target_doc_id for q in benchmark.queries]
    mrr: dict[str, float] = {}
    cdf: dict[str, np.ndarray] = {}
    per_family: dict[str, dict[str, float]] = {}
    for name, system in systems.items():
        ranked = [system.rank(q.text, k) for q in benchmark.queries]
        mrr[name] = mrr_at_k(ranked, targets, k)
        cdf[name] = rank_cdf(ranked, targets, k)
        per_family[name] = {}
        for family in set(q.family for q in benchmark.queries):
            idx = [
                i for i, q in enumerate(benchmark.queries) if q.family == family
            ]
            per_family[name][family] = mrr_at_k(
                [ranked[i] for i in idx], [targets[i] for i in idx], k
            )
    return QualityReport(k=k, mrr=mrr, cdf=cdf, per_family_mrr=per_family)


def cluster_hit_rate(sim: TiptoeQualitySim, benchmark: QueryBenchmark) -> float:
    """Fraction of queries probing a cluster that contains the target."""
    hits = sum(
        sim.cluster_hit(q.text, q.target_doc_id) for q in benchmark.queries
    )
    return hits / len(benchmark.queries)
