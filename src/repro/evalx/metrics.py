"""Search-quality metrics (SS8.1): MRR@100 and the rank CDF.

MRR@k is the mean over queries of 1/rank of the true-best result
within the top k returned results (0 when absent).  The rank CDF is
Fig. 4 (right): the fraction of queries whose best result appears at
index <= i.
"""

from __future__ import annotations

import numpy as np


def reciprocal_rank(ranked_ids: list[int], target: int, k: int = 100) -> float:
    """1 / (1 + index of target) within the top k, else 0."""
    if k < 1:
        raise ValueError("k must be positive")
    for i, doc in enumerate(ranked_ids[:k]):
        if doc == target:
            return 1.0 / (i + 1)
    return 0.0


def mrr_at_k(
    ranked_lists: list[list[int]], targets: list[int], k: int = 100
) -> float:
    """Mean reciprocal rank at k over a query set."""
    if len(ranked_lists) != len(targets):
        raise ValueError("need one target per ranked list")
    if not targets:
        raise ValueError("cannot average over zero queries")
    return float(
        np.mean(
            [
                reciprocal_rank(ranked, t, k)
                for ranked, t in zip(ranked_lists, targets)
            ]
        )
    )


def rank_cdf(
    ranked_lists: list[list[int]], targets: list[int], k: int = 100
) -> np.ndarray:
    """cdf[i] = fraction of queries with target at index <= i (0-based).

    This is the y-axis of Fig. 4 (right); queries whose target never
    appears contribute to no bucket, so the curve can plateau below 1.
    """
    if len(ranked_lists) != len(targets):
        raise ValueError("need one target per ranked list")
    counts = np.zeros(k)
    for ranked, target in zip(ranked_lists, targets):
        for i, doc in enumerate(ranked[:k]):
            if doc == target:
                counts[i:] += 1
                break
    return counts / max(1, len(targets))
