"""Packing byte records into a PIR plaintext matrix.

SimplePIR serves a matrix over Z_p; a PIR query selects one column.
Each record therefore occupies one column: its bytes are
length-prefixed, bit-packed into base-p digits (p a power of two),
and padded to the tallest record.  The resulting matrix has one row
per digit and one column per record, so the answer to a query is
exactly the digits of the requested record.

The paper "unbalances" the matrix so it is roughly 10x wider than
tall (Appendix C); :func:`PackedDatabase.aspect_ratio` exposes the
shape so callers can check that property in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_LENGTH_PREFIX = 4


def _pack_bits(data: bytes, bits_per_digit: int) -> list[int]:
    """Split a byte string into base-2^bits digits (little-endian)."""
    value = int.from_bytes(data, "little")
    total_bits = len(data) * 8
    mask = (1 << bits_per_digit) - 1
    digits = []
    for shift in range(0, total_bits, bits_per_digit):
        digits.append((value >> shift) & mask)
    return digits


def _unpack_bits(digits: np.ndarray, bits_per_digit: int, num_bytes: int) -> bytes:
    """Inverse of :func:`_pack_bits`."""
    value = 0
    for i, d in enumerate(digits):
        value |= int(d) << (i * bits_per_digit)
    return value.to_bytes(
        max(num_bytes, 1) + bits_per_digit // 8 + 1, "little"
    )[:num_bytes]


@dataclass
class PackedDatabase:
    """A byte-record database packed into a Z_p matrix for PIR."""

    matrix: np.ndarray
    p: int
    bits_per_digit: int
    num_records: int
    record_bytes: int

    @classmethod
    def from_records(cls, records: list[bytes], p: int) -> "PackedDatabase":
        """Pack records, one per column, with a length prefix each."""
        if p < 2 or p & (p - 1) != 0:
            raise ValueError("plaintext modulus must be a power of two >= 2")
        if not records:
            raise ValueError("cannot pack an empty database")
        bits = p.bit_length() - 1
        record_bytes = _LENGTH_PREFIX + max(len(r) for r in records)
        digits_per_record = -(-record_bytes * 8 // bits)
        matrix = np.zeros((digits_per_record, len(records)), dtype=np.int64)
        for col, record in enumerate(records):
            framed = len(record).to_bytes(_LENGTH_PREFIX, "little") + record
            framed = framed.ljust(record_bytes, b"\0")
            digits = _pack_bits(framed, bits)
            matrix[: len(digits), col] = digits
        return cls(
            matrix=matrix,
            p=p,
            bits_per_digit=bits,
            num_records=len(records),
            record_bytes=record_bytes,
        )

    @classmethod
    def from_records_grid(
        cls, records: list[bytes], p: int, records_per_column: int
    ) -> "PackedDatabase":
        """Pack several records per column (the general SimplePIR grid).

        SimplePIR balances the matrix aspect ratio by stacking records
        vertically: one query still retrieves a whole column, so the
        client gets ``records_per_column`` records per fetch -- which
        is how per-record retrieval amortizes when records are small.
        Record ``i`` lives in column ``i // records_per_column`` at
        slot ``i % records_per_column``.
        """
        if records_per_column < 1:
            raise ValueError("records_per_column must be positive")
        if not records:
            raise ValueError("cannot pack an empty database")
        if p < 2 or p & (p - 1) != 0:
            raise ValueError("plaintext modulus must be a power of two >= 2")
        bits = p.bit_length() - 1
        record_bytes = _LENGTH_PREFIX + max(len(r) for r in records)
        slot_digits = -(-record_bytes * 8 // bits)
        num_cols = -(-len(records) // records_per_column)
        matrix = np.zeros(
            (slot_digits * records_per_column, num_cols), dtype=np.int64
        )
        for i, record in enumerate(records):
            col = i // records_per_column
            slot = i % records_per_column
            framed = len(record).to_bytes(_LENGTH_PREFIX, "little") + record
            framed = framed.ljust(record_bytes, b"\0")
            digits = _pack_bits(framed, bits)
            matrix[
                slot * slot_digits : slot * slot_digits + len(digits), col
            ] = digits
        db = cls(
            matrix=matrix,
            p=p,
            bits_per_digit=bits,
            num_records=len(records),
            record_bytes=record_bytes,
        )
        db.records_per_column = records_per_column
        db.slot_digits = slot_digits
        return db

    #: Grid-layout attributes (set by :meth:`from_records_grid`).
    records_per_column: int = 1
    slot_digits: int | None = None

    def column_of(self, index: int) -> int:
        """The column a PIR query must select for a record."""
        if not 0 <= index < self.num_records:
            raise IndexError(f"record index {index} out of range")
        return index // self.records_per_column

    def decode_grid_column(self, digits: np.ndarray, column: int) -> list[bytes]:
        """All records stored in one fetched grid column."""
        if self.slot_digits is None:
            return [self.decode_column(digits)]
        occupied = min(
            self.records_per_column,
            self.num_records - column * self.records_per_column,
        )
        out = []
        for slot in range(occupied):
            chunk = digits[
                slot * self.slot_digits : (slot + 1) * self.slot_digits
            ]
            framed = _unpack_bits(chunk, self.bits_per_digit, self.record_bytes)
            length = int.from_bytes(framed[:_LENGTH_PREFIX], "little")
            if length > self.record_bytes - _LENGTH_PREFIX:
                raise ValueError("corrupt record: bad length prefix")
            out.append(framed[_LENGTH_PREFIX : _LENGTH_PREFIX + length])
        return out

    @property
    def num_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_cols(self) -> int:
        return self.matrix.shape[1]

    def aspect_ratio(self) -> float:
        """width / height of the packed matrix."""
        return self.num_cols / self.num_rows

    def selection_vector(self, index: int) -> np.ndarray:
        """The all-zero vector with a single 1 at the record's column."""
        if not 0 <= index < self.num_records:
            raise IndexError(f"record index {index} out of range")
        sel = np.zeros(self.num_cols, dtype=np.int64)
        sel[index] = 1
        return sel

    def decode_column(self, digits: np.ndarray) -> bytes:
        """Recover the record bytes from a column of Z_p digits."""
        if len(digits) != self.num_rows:
            raise ValueError("column has wrong number of digits")
        framed = _unpack_bits(digits, self.bits_per_digit, self.record_bytes)
        length = int.from_bytes(framed[:_LENGTH_PREFIX], "little")
        if length > self.record_bytes - _LENGTH_PREFIX:
            raise ValueError("corrupt record: bad length prefix")
        return framed[_LENGTH_PREFIX : _LENGTH_PREFIX + length]

    def record(self, index: int) -> bytes:
        """Direct (non-private) record access, for tests and baselines."""
        return self.decode_column(self.matrix[:, index])

    def storage_bytes(self) -> int:
        """Server-side plaintext storage for this database."""
        return self.num_rows * self.num_cols * self.bits_per_digit // 8
