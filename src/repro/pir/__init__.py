"""Single-server private information retrieval (SimplePIR, SS5).

Tiptoe's URL service is a SimplePIR instance over compressed URL
batches.  ``database`` packs byte records into a plaintext matrix over
Z_p; ``simplepir`` runs the retrieval protocol on top of the Regev
scheme of :mod:`repro.lwe` -- either in the classic hint-download mode
or in Tiptoe's compressed, token-based mode.
"""

from repro.pir.database import PackedDatabase
from repro.pir.simplepir import SimplePirClient, SimplePirServer, build_pir

__all__ = [
    "PackedDatabase",
    "SimplePirClient",
    "SimplePirServer",
    "build_pir",
]
