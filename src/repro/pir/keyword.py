"""Keyword PIR: private key-value lookups (SS9, [27]).

SS9's exact-keyword extension needs "a simple private key-value store
mapping each string in the corpus (e.g., each phone number) ... to the
IDs of documents containing that string", queried with a
keyword-based PIR scheme.  The classic keyword-to-index reduction
(Chor-Gilboa-Naor) hashes keys into buckets: the client retrieves its
key's *bucket* with ordinary index PIR -- hiding the key, since the
server only sees a fixed-size ciphertext -- then scans the bucket
locally for its key.

Built directly on the SimplePIR machinery of this package.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.homenc.double import DoubleLheScheme
from repro.lwe import sampling
from repro.lwe.params import SecurityLevel
from repro.pir.simplepir import SimplePirClient, SimplePirServer, build_pir

_HASH_PERSON = b"tiptoe-kw-pir"


def bucket_of(key: str, num_buckets: int) -> int:
    """The stable bucket assignment both parties compute."""
    digest = hashlib.blake2b(
        key.encode(), digest_size=8, person=_HASH_PERSON
    ).digest()
    return int.from_bytes(digest, "little") % num_buckets


def _frame(entries: list[tuple[str, bytes]]) -> bytes:
    """Serialize (key, value) pairs with length prefixes."""
    out = bytearray()
    for key, value in entries:
        kb = key.encode()
        out += len(kb).to_bytes(2, "little") + kb
        out += len(value).to_bytes(2, "little") + value
    return bytes(out)


def _unframe(blob: bytes) -> dict[str, bytes]:
    out: dict[str, bytes] = {}
    pos = 0
    while pos + 2 <= len(blob):
        klen = int.from_bytes(blob[pos : pos + 2], "little")
        pos += 2
        if klen == 0 or pos + klen + 2 > len(blob):
            break
        key = blob[pos : pos + klen].decode()
        pos += klen
        vlen = int.from_bytes(blob[pos : pos + 2], "little")
        pos += 2
        out[key] = blob[pos : pos + vlen]
        pos += vlen
    return out


@dataclass
class KeywordPir:
    """A private key-value store over one keyword table."""

    server: SimplePirServer
    client: SimplePirClient
    num_buckets: int

    @classmethod
    def build(
        cls,
        table: dict[str, bytes],
        num_buckets: int | None = None,
        level: SecurityLevel = SecurityLevel.TOY,
        a_seed: bytes | None = None,
    ) -> "KeywordPir":
        """Hash a key-value table into PIR buckets.

        With ~sqrt(K) buckets of ~sqrt(K) entries the retrieval cost
        matches one Tiptoe URL fetch.
        """
        if not table:
            raise ValueError("cannot build a keyword store over no keys")
        if num_buckets is None:
            num_buckets = max(1, math.isqrt(len(table)))
        buckets: list[list[tuple[str, bytes]]] = [
            [] for _ in range(num_buckets)
        ]
        for key, value in sorted(table.items()):
            buckets[bucket_of(key, num_buckets)].append((key, value))
        records = [_frame(entries) for entries in buckets]
        server, client = build_pir(records, level=level, a_seed=a_seed)
        return cls(server=server, client=client, num_buckets=num_buckets)

    def scheme(self) -> DoubleLheScheme:
        return self.server.scheme

    def lookup(
        self,
        key: str,
        keys,
        hint_product: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> bytes | None:
        """One private lookup: returns the value, or None if absent.

        The traffic is identical whether or not the key exists -- the
        server cannot even tell a miss from a hit.
        """
        bucket = bucket_of(key, self.num_buckets)
        query = self.client.query(keys, bucket, rng)
        answer = self.server.answer(query)
        blob = self.client.recover(keys, answer, hint_product)
        return _unframe(blob).get(key)

    def lookup_with_hint(
        self, key: str, rng: np.random.Generator | None = None
    ) -> bytes | None:
        """Convenience lookup using classic (hint-download) mode."""
        rng = sampling.resolve_rng(rng)
        keys = self.client.keygen(rng)
        bucket = bucket_of(key, self.num_buckets)
        query = self.client.query(keys, bucket, rng)
        answer = self.server.answer(query)
        blob = self.client.recover_classic(keys, answer, self.server.hint())
        return _unframe(blob).get(key)
