"""The SimplePIR retrieval protocol (SS5), in both of Tiptoe's modes.

*Classic mode*: the client downloads the hint ``H = D A`` once, then
each query is one inner ciphertext up and one evaluated vector down.

*Compressed mode* (what Tiptoe deploys): the hint never leaves the
server; the client's query token carries the outer-decrypted hint
product instead (SS6.2-6.3).  The per-query online traffic is the same;
the hint download is replaced by the much smaller token.

Either way the server's answer computation touches every record --
that linear scan is what the privacy argument requires (SS3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.homenc.double import DoubleLheParams, DoubleLheScheme
from repro.lwe import modular, sampling
from repro.lwe.params import LweParams, SecurityLevel, select_params
from repro.lwe.regev import Ciphertext, SecretKey, stack_ciphertexts
from repro.pir.database import PackedDatabase


@dataclass
class PirQuery:
    """One PIR query: a single inner ciphertext (fixed size)."""

    ciphertext: Ciphertext

    def wire_bytes(self) -> int:
        return self.ciphertext.upload_bytes


@dataclass
class PirAnswer:
    """The evaluated ciphertext vector for one query."""

    values: np.ndarray
    bytes_per_element: int

    def wire_bytes(self) -> int:
        return len(self.values) * self.bytes_per_element


class SimplePirServer:
    """Holds the packed database and answers encrypted queries."""

    def __init__(
        self,
        db: PackedDatabase,
        scheme: DoubleLheScheme,
        *,
        kernel_backend: str | None = None,
        kernel_opts: dict | None = None,
    ):
        if scheme.params.inner.p != db.p:
            raise ValueError(
                "database packing modulus must equal the scheme's plaintext"
                f" modulus ({db.p} != {scheme.params.inner.p})"
            )
        if scheme.params.inner.m != db.num_cols:
            raise ValueError(
                "scheme upload dimension must equal the database width"
            )
        self.db = db
        self.scheme = scheme
        self.prep = scheme.preprocess(db.matrix)
        #: Kernel-backend selection for the batched scan; ``None``
        #: resolves to the reference path (see repro.lwe.backends).
        self.kernel_backend = kernel_backend
        self.kernel_opts = dict(kernel_opts or {})
        self._plan = None

    def answer(self, query: PirQuery) -> PirAnswer:
        """The online hot loop: one matrix-vector product over the DB."""
        values = self.scheme.apply(self.db.matrix, query.ciphertext)
        return PirAnswer(
            values=values,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_batch(self, queries: list[PirQuery]) -> list[PirAnswer]:
        """Answer Q queries with one matrix-matrix product over the DB.

        Column i of the stacked product is bit-identical to
        ``answer(queries[i]).values``; the batch plan is built lazily
        and reused across calls (it depends only on the database).
        """
        if not queries:
            return []
        if self._plan is None:
            self._plan = self.scheme.batch_plan(
                self.db.matrix,
                backend=self.kernel_backend,
                **self.kernel_opts,
            )
        stacked = stack_ciphertexts([q.ciphertext for q in queries])
        values = self.scheme.apply_batch(None, stacked, plan=self._plan)
        per_el = self.scheme.params.inner.bytes_per_element
        return [
            PirAnswer(values=values[:, i], bytes_per_element=per_el)
            for i in range(len(queries))
        ]

    def close(self) -> None:
        """Release the batch plan (worker pools, shared segments)."""
        if self._plan is not None:
            self._plan.close()
            self._plan = None

    def hint(self) -> np.ndarray:
        """The raw hint, for classic (hint-download) mode."""
        return self.prep.hint

    def hint_bytes(self) -> int:
        return self.scheme.inner.hint_bytes(self.db.num_rows)


class SimplePirClient:
    """Builds queries and decodes answers."""

    def __init__(self, db_meta: PackedDatabase, scheme: DoubleLheScheme):
        # The client only needs the database *shape* metadata; holding
        # the PackedDatabase object here is a simulation convenience --
        # the matrix contents are never read on the client path.
        self.db = db_meta
        self.scheme = scheme

    def keygen(self, rng: np.random.Generator | None = None):
        """Fresh client keys; ``rng=None`` resolves through
        :func:`repro.lwe.sampling.resolve_rng` (replayable via
        ``sampling.set_default_seed``)."""
        return self.scheme.gen_keys(rng)

    def query(
        self,
        keys,
        index: int,
        rng: np.random.Generator | None = None,
    ) -> PirQuery:
        """Encrypt the selection vector for one record."""
        sel = self.db.selection_vector(index)
        return PirQuery(ciphertext=self.scheme.encrypt(keys, sel, rng))

    def recover(
        self, keys, answer: PirAnswer, hint_product: np.ndarray
    ) -> bytes:
        """Decrypt an answer using a token's hint product."""
        digits = self.scheme.decrypt(keys, answer.values, hint_product)
        return self.db.decode_column(digits)

    def recover_classic(
        self, keys, answer: PirAnswer, hint: np.ndarray
    ) -> bytes:
        """Decrypt an answer using a downloaded raw hint."""
        digits = self.scheme.inner.decrypt(keys.inner, hint, answer.values)
        return self.db.decode_column(digits)


def build_pir(
    records: list[bytes],
    level: SecurityLevel = SecurityLevel.TOY,
    p: int | None = None,
    a_seed: bytes | None = None,
    outer_n: int = 64,
) -> tuple[SimplePirServer, SimplePirClient]:
    """Convenience constructor: pack records and stand up both ends.

    Parameters follow the paper's URL-service configuration: inner
    modulus 2^32 with plaintext modulus from the Table 11 budget
    (rounded down to a power of two for exact packing).
    """
    width = len(records)
    if p is None:
        cfg = select_params(32, max(width, 2), level)
        p = min(cfg.p, 1 << 16)
        p = max(p, 4)
    db = PackedDatabase.from_records(records, p)
    inner = select_params(32, db.num_cols, level, p=p)
    params = DoubleLheParams(
        inner=LweParams(
            n=inner.n, q_bits=32, p=p, sigma=inner.sigma, m=db.num_cols
        ),
        outer_n=outer_n,
    )
    scheme = DoubleLheScheme(
        params, a_seed=a_seed if a_seed is not None else sampling.random_seed()
    )
    server = SimplePirServer(db, scheme)
    client = SimplePirClient(db, scheme)
    return server, client
