"""The embed stage's per-batch worker (multiprocessing-safe).

One task embeds one spooled document batch into one ``.npy`` file.
The pipeline either calls :func:`embed_batch_file` inline or maps the
tasks over a fork-based :mod:`multiprocessing` pool whose workers each
load the fitted models once (:func:`init_worker`).  Output files are
independent -- a batch's embedding rows depend only on that batch's
texts and the models -- so worker scheduling order cannot change the
result.

Delta-reuse rides in the task itself: the parent diffs document
digests against the previous snapshot and sends each batch the rows it
may copy (``prev_rows``) plus the mask saying where they go, so a
worker never needs the previous index.  Only the changed documents are
run through the models; the bit-stability contract of
:func:`~repro.embeddings.streaming.transform_texts` guarantees the
recomputed rows match what a full re-embed would produce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.embeddings.streaming import FittedModels, transform_texts
from repro.ingest.models import load_models

#: Per-process model cache for pool workers (set by :func:`init_worker`).
_WORKER_MODELS: FittedModels | None = None


@dataclass(frozen=True)
class EmbedTask:
    """Everything needed to embed one spooled batch."""

    batch_path: str
    out_path: str
    #: Boolean mask over the batch: True = copy the matching row of
    #: ``prev_rows`` instead of re-embedding.  None = embed everything.
    reuse_mask: np.ndarray | None = None
    #: The reused embedding rows, in batch order (``reuse_mask.sum()``
    #: rows), gathered from the previous snapshot by the parent.
    prev_rows: np.ndarray | None = None


def init_worker(model_dir: str) -> None:
    """Pool initializer: load the fitted models once per process."""
    global _WORKER_MODELS
    _WORKER_MODELS = load_models(model_dir)


def read_batch(batch_path: str | Path) -> dict:
    """Load one spooled document batch (texts, urls, start_id)."""
    return json.loads(Path(batch_path).read_text(encoding="utf-8"))


def embed_batch_file(
    task: EmbedTask, models: FittedModels | None = None
) -> tuple[int, int]:
    """Embed (or copy) one batch; returns (docs_embedded, docs_reused)."""
    if models is None:
        models = _WORKER_MODELS
    if models is None:
        raise RuntimeError("embed worker has no models loaded")
    batch = read_batch(task.batch_path)
    texts = batch["texts"]
    dim = models.pca.dim if models.pca is not None else models.embedder.dim
    out = np.zeros((len(texts), dim), dtype=np.float64)
    if task.reuse_mask is None:
        changed = [True] * len(texts)
        reused = 0
    else:
        changed = [not bool(keep) for keep in task.reuse_mask]
        reused = int(np.count_nonzero(task.reuse_mask))
        if reused:
            out[np.asarray(task.reuse_mask, dtype=bool)] = task.prev_rows
    changed_texts = [t for t, c in zip(texts, changed) if c]
    if changed_texts:
        rows = transform_texts(models.embedder, models.pca, changed_texts)
        out[np.asarray(changed, dtype=bool)] = rows
    tmp = Path(task.out_path).with_suffix(".npy.tmp")
    with tmp.open("wb") as fh:
        np.lib.format.write_array(fh, out)
    tmp.replace(task.out_path)
    return len(changed_texts), reused


def run_task(task: EmbedTask) -> tuple[int, int]:
    """Pool entry point (models come from :func:`init_worker`)."""
    return embed_batch_file(task)
