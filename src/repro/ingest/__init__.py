"""The streaming ingestion plane (staged, resumable corpus builds).

See :mod:`repro.ingest.pipeline` for the stage DAG and
:mod:`repro.ingest.stage` for the ``repro.stage/v1`` checkpoint format.
"""

from repro.ingest.pipeline import (
    IngestConfig,
    IngestReport,
    PinnedModels,
    PrevSnapshot,
    StageResult,
    run_ingest,
)
from repro.ingest.stage import SCHEMA, StageError, StageHandle, StageStore

__all__ = [
    "IngestConfig",
    "IngestReport",
    "PinnedModels",
    "PrevSnapshot",
    "StageResult",
    "run_ingest",
    "SCHEMA",
    "StageError",
    "StageHandle",
    "StageStore",
]
