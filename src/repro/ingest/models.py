"""Persisted embedding models for the model/embed stage boundary.

The model stage fits (or pins) the LSA embedder, the PCA map, and the
quantization gain, then serializes them into its stage directory; the
embed stage's multiprocessing workers each load that directory once in
their initializer.  :func:`models_digest` is the content identity the
stage DAG keys on: two model directories with equal digests transform
texts bit-identically.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.streaming import FittedModels
from repro.embeddings.vocab import Vocabulary

_ARRAYS = "model_arrays.npz"
_VOCAB = "model_vocab.json"
_META = "model_meta.json"


def models_digest(models: FittedModels) -> str:
    """SHA-256 content identity of a fitted model triple."""
    h = hashlib.sha256()
    h.update(b"repro.models/v1")
    embedder = models.embedder
    h.update(np.int64(embedder.dim).tobytes())
    h.update(
        json.dumps(
            {
                "term_to_id": embedder.vocab.term_to_id,
                "doc_freq": embedder.vocab.doc_freq,
                "num_docs": embedder.vocab.num_docs,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
    )
    h.update(np.ascontiguousarray(embedder.projection).tobytes())
    if models.pca is not None:
        h.update(np.ascontiguousarray(models.pca.mean).tobytes())
        h.update(np.ascontiguousarray(models.pca.components).tobytes())
    h.update(repr(float(models.gain)).encode("ascii"))
    return h.hexdigest()


def save_models(models: FittedModels, path: str | Path) -> None:
    """Write the fitted models into a directory (same formats as the
    index artifact: vocab as JSON, projections as npz members)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays = {"lsa_projection": models.embedder.projection}
    if models.pca is not None:
        arrays["pca_mean"] = models.pca.mean
        arrays["pca_components"] = models.pca.components
        arrays["pca_evr"] = models.pca.explained_variance_ratio
    with (path / _ARRAYS).open("wb") as fh:
        np.savez(fh, **arrays)
    vocab = models.embedder.vocab
    (path / _VOCAB).write_text(
        json.dumps(
            {
                "term_to_id": vocab.term_to_id,
                "doc_freq": vocab.doc_freq,
                "num_docs": vocab.num_docs,
            }
        ),
        encoding="utf-8",
    )
    (path / _META).write_text(
        json.dumps(
            {
                "dim": models.embedder.dim,
                "has_pca": models.pca is not None,
                "gain": models.gain,
            },
            sort_keys=True,
        ),
        encoding="utf-8",
    )


def load_models(path: str | Path) -> FittedModels:
    """Load models previously written by :func:`save_models`."""
    path = Path(path)
    meta = json.loads((path / _META).read_text(encoding="utf-8"))
    vocab_meta = json.loads((path / _VOCAB).read_text(encoding="utf-8"))
    with np.load(path / _ARRAYS) as npz:
        arrays = {name: npz[name] for name in npz.files}
    embedder = LsaEmbedder(
        dim=int(meta["dim"]),
        vocab=Vocabulary(
            term_to_id=vocab_meta["term_to_id"],
            doc_freq=vocab_meta["doc_freq"],
            num_docs=vocab_meta["num_docs"],
        ),
        projection=arrays["lsa_projection"],
    )
    pca = None
    if meta["has_pca"]:
        pca = PcaReducer(
            mean=arrays["pca_mean"],
            components=arrays["pca_components"],
            explained_variance_ratio=arrays["pca_evr"],
        )
    return FittedModels(embedder=embedder, pca=pca, gain=float(meta["gain"]))
