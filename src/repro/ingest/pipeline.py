"""The streaming ingestion pipeline: staged, resumable, bounded-memory.

``run_ingest`` replaces the one-shot ``TiptoeIndex.build`` for large
corpora.  Documents flow through checkpointed stages --

    source -> filter -> model -> embed -> cluster -> pack -> encrypt

-- in bounded batches, each stage spilling its outputs into the spool
directory under a ``repro.stage/v1`` marker (:mod:`repro.ingest.stage`).
A killed build resumes from the last completed stage; a finished build
re-run with identical inputs is a no-op.  The embed stage optionally
fans batches out over fork-based multiprocessing workers.

Two optional inputs turn a build into a *delta* build
(:mod:`repro.core.updates` drives this):

* ``pinned`` -- models, centroids, boundary threshold, and A-seeds
  from a previous snapshot.  With these pinned, every derived quantity
  is a deterministic function of the document stream, which is what
  makes a delta rebuild bit-identical to a from-scratch rebuild of the
  same snapshot.
* ``prev`` -- the previous snapshot's per-document digests and
  embeddings.  Documents whose digest is unchanged copy their embedding
  row instead of re-running the models, and unchanged clusters' hint
  contributions come out of the content-addressed cache instead of
  being re-encrypted.

The resulting artifact directory is a normal ``repro.index/v2``
snapshot (with precompute sidecar by default), ready for the fleet's
warm -> cut-over -> retire rolling swap.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.cluster import ClusterIndex
from repro.cluster.minibatch import (
    MiniBatchSphericalKMeans,
    batch_margins,
    boundary_threshold,
)
from repro.core import artifacts
from repro.core.config import TiptoeConfig
from repro.core.costs import CostLedger
from repro.core.indexer import (
    TiptoeIndex,
    layout_from_cluster_streams,
    ranking_scheme_for,
    url_side_for,
)
from repro.corpus.source import DocumentSource, doc_digest
from repro.embeddings.quantize import quantize_gained
from repro.embeddings.streaming import (
    FittedModels,
    ReservoirSampler,
    fit_streaming_models,
)
from repro.homenc.token import TokenFactory
from repro.ingest import embedwork
from repro.ingest import encrypt as enc
from repro.ingest.models import load_models, models_digest, save_models
from repro.ingest.stage import StageHandle, StageStore

#: Test hook: called with the stage name after each stage completes.
#: The kill/resume tests install ``os._exit`` here to simulate a crash
#: at an exact checkpoint boundary.
_STAGE_HOOK: Callable[[str], None] | None = None


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of the pipeline itself (not of the index it builds)."""

    #: Documents per re-batched spool file (bounds every stage's
    #: working set).
    batch_size: int = 512
    #: Minimum stripped text length; shorter documents are filtered.
    min_chars: int = 1
    #: Reservoir size for model fitting (LSA/PCA/gain see this many
    #: uniformly sampled documents, not the whole corpus).
    sample_size: int = 2048
    #: Passes of minibatch k-means over the embedding stream.
    kmeans_epochs: int = 2
    #: Rows per k-means/margins chunk.  The cluster stage re-chunks the
    #: embedding stream at this fixed size so its arithmetic -- and
    #: therefore the centroids and the final artifact -- do not depend
    #: on how the spool files happened to be batched.
    kmeans_batch: int = 1024
    #: Embed-stage multiprocessing workers; 0 runs inline.
    workers: int = 0
    #: Seed of every pipeline RNG stream (sampling, k-means init,
    #: derived A-seeds).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch size must be positive")
        if self.sample_size < 2:
            raise ValueError("model sample must hold at least 2 documents")
        if self.kmeans_epochs < 1:
            raise ValueError("need at least one k-means epoch")
        if self.kmeans_batch < 2:
            raise ValueError("k-means chunk must hold at least 2 rows")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")


@dataclass(frozen=True)
class PinnedModels:
    """Frozen model-side state carried over from a previous snapshot."""

    models: FittedModels
    centroids: np.ndarray
    boundary_threshold: float
    ranking_a_seed: bytes
    url_a_seed: bytes

    @classmethod
    def from_index(cls, index: TiptoeIndex) -> "PinnedModels":
        if index.boundary_threshold is None:
            raise ValueError(
                "index has no boundary threshold; only ingest-built"
                " snapshots can pin a delta rebuild"
            )
        return cls(
            models=FittedModels(
                embedder=index.embedder,
                pca=index.pca,
                gain=float(index.quantization_gain),
            ),
            centroids=np.ascontiguousarray(
                index.clusters.centroids, dtype=np.float64
            ),
            boundary_threshold=float(index.boundary_threshold),
            ranking_a_seed=index.ranking_scheme.inner.a_seed,
            url_a_seed=index.url_scheme.inner.a_seed,
        )


@dataclass(frozen=True)
class PrevSnapshot:
    """The previous snapshot's content identities and embeddings."""

    doc_digests: np.ndarray  # (n, 32) uint8
    embeddings: np.ndarray  # (n, dim) float64

    @classmethod
    def from_index(cls, index: TiptoeIndex) -> "PrevSnapshot":
        if index.doc_digests is None:
            raise ValueError(
                "index has no per-document digests; only ingest-built"
                " snapshots support delta reuse"
            )
        return cls(
            doc_digests=np.asarray(index.doc_digests),
            embeddings=np.asarray(index.embeddings, dtype=np.float64),
        )


@dataclass(frozen=True)
class StageResult:
    """How one stage resolved during a ``run_ingest`` call."""

    name: str
    status: str  # "computed" | "cached"
    counters: dict


@dataclass(frozen=True)
class IngestReport:
    """What one pipeline run did, stage by stage."""

    stages: tuple[StageResult, ...]
    num_docs: int
    num_clusters: int
    artifact_digest: str
    generation_tag: str
    out_dir: str

    def stage(self, name: str) -> StageResult:
        for result in self.stages:
            if result.name == name:
                return result
        raise KeyError(f"no stage named {name!r}")

    def counters(self, name: str) -> dict:
        return self.stage(name).counters


def _run_stage(
    handle: StageHandle,
    fn: Callable[[StageHandle], tuple[dict, dict]],
    validate: Callable[[StageHandle], bool] | None = None,
) -> StageResult:
    """Run a stage unless its checkpoint already covers this invocation."""
    if handle.is_complete() and (validate is None or validate(handle)):
        return StageResult(handle.name, "cached", handle.counters())
    handle.reset()
    counters, outputs = fn(handle)
    handle.finish(counters=counters, outputs=outputs)
    if _STAGE_HOOK is not None:
        _STAGE_HOOK(handle.name)
    return StageResult(handle.name, "computed", counters)


def _hash_file(h: "hashlib._Hash", path: Path) -> None:
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)


def run_ingest(
    source: DocumentSource,
    config: TiptoeConfig,
    out_dir: str | Path,
    *,
    spool_dir: str | Path,
    ingest: IngestConfig = IngestConfig(),
    pinned: PinnedModels | None = None,
    prev: PrevSnapshot | None = None,
    precompute: bool = True,
) -> IngestReport:
    """Build (or delta-rebuild) an index artifact from a document stream."""
    if not config.group_urls_by_content:
        raise ValueError(
            "the ingestion plane builds content-grouped URL layouts only;"
            " use TiptoeIndex.build for the scatter ablation"
        )
    out_dir = Path(out_dir)
    store = StageStore(spool_dir)
    results: list[StageResult] = []

    # -- stage 1: source -- spool the raw stream + content digests ----------
    def _source(handle: StageHandle) -> tuple[dict, dict]:
        h = hashlib.sha256()
        docs = 0
        num_batches = 0
        for batch in source.batches():
            digests = bytearray()
            for text, url in zip(batch.texts, batch.urls):
                d = doc_digest(text, url)
                digests += d
                h.update(d)
            payload = {
                "start_id": batch.start_id,
                "texts": batch.texts,
                "urls": batch.urls,
            }
            (handle.path / f"docs_{num_batches:06d}.json").write_text(
                json.dumps(payload), encoding="utf-8"
            )
            (handle.path / f"dig_{num_batches:06d}.bin").write_bytes(
                bytes(digests)
            )
            docs += len(batch.texts)
            num_batches += 1
        if docs == 0:
            raise ValueError("document source streamed no documents")
        outputs = {
            "content_key": h.hexdigest(),
            "num_docs": docs,
            "num_batches": num_batches,
        }
        return {"docs_out": docs, "batches": num_batches}, outputs

    src = store.stage("source", {"fingerprint": source.fingerprint()})
    results.append(_run_stage(src, _source))
    src_out = src.outputs()

    # -- stage 2: filter -- drop empties/dups, re-batch, spool URLs --------
    def _filter(handle: StageHandle) -> tuple[dict, dict]:
        h = hashlib.sha256()
        seen: set[bytes] = set()
        digests = bytearray()
        url_offsets = [0]
        texts: list[str] = []
        urls: list[str] = []
        kept = 0
        out_batches = 0
        docs_in = 0
        dropped_empty = 0
        dropped_dup = 0

        def flush() -> None:
            nonlocal out_batches, texts, urls
            if not texts:
                return
            payload = {
                "start_id": kept - len(texts),
                "texts": texts,
                "urls": urls,
            }
            (handle.path / f"docs_{out_batches:06d}.json").write_text(
                json.dumps(payload), encoding="utf-8"
            )
            out_batches += 1
            texts, urls = [], []

        with (handle.path / "urls.tsv").open("wb") as url_fh:
            offset = 0
            for i in range(int(src_out["num_batches"])):
                payload = json.loads(
                    (src.path / f"docs_{i:06d}.json").read_text(
                        encoding="utf-8"
                    )
                )
                batch_digests = (src.path / f"dig_{i:06d}.bin").read_bytes()
                for j, (text, url) in enumerate(
                    zip(payload["texts"], payload["urls"])
                ):
                    docs_in += 1
                    d = batch_digests[j * 32 : (j + 1) * 32]
                    if len(text.strip()) < ingest.min_chars:
                        dropped_empty += 1
                        continue
                    if d in seen:
                        dropped_dup += 1
                        continue
                    seen.add(d)
                    digests += d
                    h.update(d)
                    texts.append(text)
                    urls.append(url)
                    line = (url + "\n").encode("utf-8")
                    url_fh.write(line)
                    offset += len(line)
                    url_offsets.append(offset)
                    kept += 1
                    if len(texts) == ingest.batch_size:
                        flush()
            flush()
        if kept == 0:
            raise ValueError("no documents survived filtering")
        np.save(
            handle.path / "digests.npy",
            np.frombuffer(bytes(digests), dtype=np.uint8).reshape(kept, 32),
        )
        np.save(
            handle.path / "url_offsets.npy",
            np.array(url_offsets, dtype=np.int64),
        )
        outputs = {
            "content_key": h.hexdigest(),
            "num_docs": kept,
            "num_batches": out_batches,
        }
        counters = {
            "docs_in": docs_in,
            "dropped_empty": dropped_empty,
            "dropped_dup": dropped_dup,
            "docs_out": kept,
        }
        return counters, outputs

    filt = store.stage(
        "filter",
        {"min_chars": ingest.min_chars, "batch_size": ingest.batch_size},
        [src_out["content_key"]],
    )
    results.append(_run_stage(filt, _filter))
    filt_out = filt.outputs()
    num_docs = int(filt_out["num_docs"])
    num_filter_batches = int(filt_out["num_batches"])

    # -- stage 3: model -- fit on a reservoir sample, or pin ---------------
    def _model(handle: StageHandle) -> tuple[dict, dict]:
        if pinned is not None:
            models = pinned.models
            sampled = 0
        else:
            sampler = ReservoirSampler(
                ingest.sample_size, np.random.default_rng([ingest.seed, 0])
            )
            for i in range(num_filter_batches):
                payload = json.loads(
                    (filt.path / f"docs_{i:06d}.json").read_text(
                        encoding="utf-8"
                    )
                )
                sampler.offer_many(payload["texts"])
            models = fit_streaming_models(
                sampler.items,
                config.embedding_dim,
                config.pca_dim,
                seed=ingest.seed,
            )
            sampled = min(sampler.offered, sampler.capacity)
        save_models(models, handle.path)
        return {"sample_docs": sampled}, {"model_digest": models_digest(models)}

    if pinned is not None:
        model_params = {"pinned": models_digest(pinned.models)}
    else:
        model_params = {
            "embedding_dim": config.embedding_dim,
            "pca_dim": config.pca_dim,
            "sample_size": ingest.sample_size,
            "seed": ingest.seed,
        }
    model = store.stage("model", model_params, [filt_out["content_key"]])
    results.append(_run_stage(model, _model))
    model_out = model.outputs()
    models = load_models(model.path)
    dim = models.pca.dim if models.pca is not None else models.embedder.dim
    if dim != config.effective_dim:
        raise ValueError(
            f"fitted models produce {dim}-dim embeddings, config expects"
            f" {config.effective_dim}"
        )

    # -- stage 4: embed -- per-batch, reusing unchanged rows ---------------
    def _embed(handle: StageHandle) -> tuple[dict, dict]:
        filter_digests = np.load(filt.path / "digests.npy")
        reuse = prev
        if reuse is not None and reuse.embeddings.shape[1] != dim:
            reuse = None  # model dimension changed; nothing is reusable
        tasks = []
        for i in range(num_filter_batches):
            start = i * ingest.batch_size
            stop = min(num_docs, start + ingest.batch_size)
            mask = None
            prev_rows = None
            if reuse is not None:
                n_prev = reuse.doc_digests.shape[0]
                overlap = max(0, min(stop, n_prev) - start)
                mask = np.zeros(stop - start, dtype=bool)
                if overlap > 0:
                    mask[:overlap] = np.all(
                        filter_digests[start : start + overlap]
                        == reuse.doc_digests[start : start + overlap],
                        axis=1,
                    )
                    prev_rows = np.ascontiguousarray(
                        reuse.embeddings[start : start + overlap][
                            mask[:overlap]
                        ]
                    )
            tasks.append(
                embedwork.EmbedTask(
                    batch_path=str(filt.path / f"docs_{i:06d}.json"),
                    out_path=str(handle.path / f"emb_{i:06d}.npy"),
                    reuse_mask=mask,
                    prev_rows=prev_rows,
                )
            )
        embedded = 0
        reused = 0
        if ingest.workers > 0:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(
                ingest.workers,
                initializer=embedwork.init_worker,
                initargs=(str(model.path),),
            ) as pool:
                for did, got in pool.imap(embedwork.run_task, tasks):
                    embedded += did
                    reused += got
        else:
            for task in tasks:
                did, got = embedwork.embed_batch_file(task, models)
                embedded += did
                reused += got
        h = hashlib.sha256()
        for i in range(num_filter_batches):
            _hash_file(h, handle.path / f"emb_{i:06d}.npy")
        counters = {
            "docs_embedded": embedded,
            "docs_reused": reused,
            "batches": num_filter_batches,
        }
        return counters, {"content_key": h.hexdigest()}

    embed = store.stage(
        "embed", {}, [filt_out["content_key"], model_out["model_digest"]]
    )
    results.append(_run_stage(embed, _embed))
    embed_out = embed.outputs()

    def _emb_batches() -> Iterator[np.ndarray]:
        for i in range(num_filter_batches):
            yield np.load(embed.path / f"emb_{i:06d}.npy")

    def _emb_chunks() -> Iterator[np.ndarray]:
        """The embedding stream re-chunked at a fixed row count.

        Chunk boundaries depend only on ``kmeans_batch`` and the total
        document count -- never on how the spool files were batched --
        so every consumer of this iterator computes the same floats for
        any spool batching of the same corpus.
        """
        size = ingest.kmeans_batch
        buf = np.empty((size, dim), dtype=np.float64)
        fill = 0
        for emb in _emb_batches():
            cursor = 0
            while cursor < emb.shape[0]:
                take = min(size - fill, emb.shape[0] - cursor)
                buf[fill : fill + take] = emb[cursor : cursor + take]
                fill += take
                cursor += take
                if fill == size:
                    yield buf.copy()
                    fill = 0
        if fill:
            yield buf[:fill].copy()

    # -- stage 5: cluster -- centroids, margins, threshold, membership ----
    def _cluster(handle: StageHandle) -> tuple[dict, dict]:
        if pinned is not None:
            centroids = pinned.centroids
            threshold = pinned.boundary_threshold
        else:
            target = config.cluster_size_for(num_docs)
            k_fit = max(1, -(-num_docs // target))
            km = MiniBatchSphericalKMeans(
                k_fit, np.random.default_rng([ingest.seed, 1])
            )
            for _ in range(ingest.kmeans_epochs):
                for emb in _emb_chunks():
                    km.partial_fit(emb)
            centroids = km.finalize()
            threshold = None  # from the margins below
        k = centroids.shape[0]
        primary = np.empty(num_docs, dtype=np.int64)
        second = np.empty(num_docs, dtype=np.int64)
        margin = np.empty(num_docs, dtype=np.float64)
        cursor = 0
        for emb in _emb_chunks():
            p, s, m = batch_margins(emb, centroids)
            primary[cursor : cursor + len(p)] = p
            second[cursor : cursor + len(p)] = s
            margin[cursor : cursor + len(p)] = m
            cursor += len(p)
        if threshold is None:
            threshold = boundary_threshold(margin, config.boundary_fraction)
        dual = (margin <= threshold) & (primary != second)

        # Per-cluster membership: primaries in doc-id order, then
        # boundary members in doc-id order (stable sorts preserve the
        # doc ordering inside each cluster group).
        order_p = np.argsort(primary, kind="stable")
        dual_ids = np.nonzero(dual)[0]
        order_b = dual_ids[np.argsort(second[dual_ids], kind="stable")]
        p_counts = np.bincount(primary, minlength=k)
        b_counts = np.bincount(second[dual_ids], minlength=k)
        p_off = np.zeros(k + 1, dtype=np.int64)
        p_off[1:] = np.cumsum(p_counts)
        b_off = np.zeros(k + 1, dtype=np.int64)
        b_off[1:] = np.cumsum(b_counts)
        sizes = p_counts + b_counts
        offsets = np.zeros(k + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(sizes)
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        for c in range(k):
            o = int(offsets[c])
            np_c = int(p_counts[c])
            flat[o : o + np_c] = order_p[p_off[c] : p_off[c + 1]]
            flat[o + np_c : o + np_c + int(b_counts[c])] = order_b[
                b_off[c] : b_off[c + 1]
            ]

        dt_counts = np.ones(num_docs, dtype=np.int64)
        dt_counts[dual] = 2
        dt_off = np.zeros(num_docs + 1, dtype=np.int64)
        dt_off[1:] = np.cumsum(dt_counts)
        dt_flat = np.empty(int(dt_off[-1]), dtype=np.int64)
        dt_flat[dt_off[:-1]] = primary
        dt_flat[dt_off[:-1][dual] + 1] = second[dual]

        np.save(handle.path / "centroids.npy", centroids)
        np.save(handle.path / "assign_flat.npy", flat)
        np.save(handle.path / "assign_offsets.npy", offsets)
        np.save(handle.path / "doc2c_flat.npy", dt_flat)
        np.save(handle.path / "doc2c_offsets.npy", dt_off)
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(centroids).tobytes())
        h.update(repr(float(threshold)).encode("ascii"))
        h.update(flat.tobytes())
        h.update(offsets.tobytes())
        outputs = {
            "content_key": h.hexdigest(),
            "threshold": float(threshold),
            "num_clusters": int(k),
            "max_size": int(sizes.max()),
        }
        counters = {
            "num_clusters": int(k),
            "dual_assigned": int(dual.sum()),
            "docs": num_docs,
        }
        return counters, outputs

    if pinned is not None:
        cluster_params = {
            "centroids": hashlib.sha256(
                np.ascontiguousarray(pinned.centroids).tobytes()
            ).hexdigest(),
            "threshold": repr(float(pinned.boundary_threshold)),
            "boundary_fraction": config.boundary_fraction,
            "chunk": ingest.kmeans_batch,
        }
    else:
        cluster_params = {
            "target_cluster_size": config.cluster_size_for(num_docs),
            "boundary_fraction": config.boundary_fraction,
            "seed": ingest.seed,
            "epochs": ingest.kmeans_epochs,
            "chunk": ingest.kmeans_batch,
        }
    cluster = store.stage("cluster", cluster_params, [embed_out["content_key"]])
    results.append(_run_stage(cluster, _cluster))
    cluster_out = cluster.outputs()
    num_clusters = int(cluster_out["num_clusters"])
    threshold = float(cluster_out["threshold"])
    max_size = int(cluster_out["max_size"])

    # -- stage 6: pack -- consolidated embeddings + quantized columns ------
    def _pack(handle: StageHandle) -> tuple[dict, dict]:
        embs = np.lib.format.open_memmap(
            handle.path / "embeddings.npy",
            mode="w+",
            dtype=np.float64,
            shape=(num_docs, dim),
        )
        quant = np.lib.format.open_memmap(
            handle.path / "quantized.npy",
            mode="w+",
            dtype=np.int64,
            shape=(num_docs, dim),
        )
        cursor = 0
        for emb in _emb_batches():
            stop = cursor + emb.shape[0]
            embs[cursor:stop] = emb
            quantize_gained(
                emb, models.gain, config.quantization(), out=quant[cursor:stop]
            )
            cursor = stop
        embs.flush()
        quant.flush()
        flat = np.load(cluster.path / "assign_flat.npy")
        offsets = np.load(cluster.path / "assign_offsets.npy")
        digests = []
        for c in range(num_clusters):
            members = flat[offsets[c] : offsets[c + 1]]
            block = np.ascontiguousarray(quant[members])
            digests.append(hashlib.sha256(block.tobytes()).hexdigest())
        (handle.path / "cluster_digests.json").write_text(
            json.dumps(digests), encoding="utf-8"
        )
        h = hashlib.sha256()
        h.update(repr(float(models.gain)).encode("ascii"))
        for digest in digests:
            h.update(digest.encode("ascii"))
        return {"docs_packed": num_docs}, {"content_key": h.hexdigest()}

    pack = store.stage(
        "pack",
        {
            "gain": repr(float(models.gain)),
            "precision_bits": config.precision_bits,
        },
        [embed_out["content_key"], cluster_out["content_key"]],
    )
    results.append(_run_stage(pack, _pack))
    pack_out = pack.outputs()

    # -- stage 7: encrypt -- hints (cached per cluster), layout, artifact --
    if pinned is not None:
        ranking_a_seed = pinned.ranking_a_seed
        url_a_seed = pinned.url_a_seed
    else:
        seed_rng = np.random.default_rng([ingest.seed, 2])
        ranking_a_seed = seed_rng.bytes(32)
        url_a_seed = seed_rng.bytes(32)

    def _encrypt(handle: StageHandle) -> tuple[dict, dict]:
        flat = np.load(cluster.path / "assign_flat.npy")
        offsets = np.load(cluster.path / "assign_offsets.npy")
        dt_flat = np.load(cluster.path / "doc2c_flat.npy")
        dt_off = np.load(cluster.path / "doc2c_offsets.npy")
        centroids = np.load(cluster.path / "centroids.npy")
        sizes = np.diff(offsets)
        quant = np.load(pack.path / "quantized.npy", mmap_mode="r")
        embs = np.load(pack.path / "embeddings.npy", mmap_mode="r")
        digests = json.loads(
            (pack.path / "cluster_digests.json").read_text(encoding="utf-8")
        )

        scheme = ranking_scheme_for(
            config, dim * num_clusters, a_seed=ranking_a_seed
        )

        def blocks():
            for c in range(num_clusters):
                members = flat[offsets[c] : offsets[c + 1]]
                yield c, np.ascontiguousarray(quant[members]), digests[c]

        hint, hint_counters = enc.accumulate_ranking_hint(
            scheme, blocks(), max_size, dim, store.cache_dir("hint")
        )
        ranking_prep = enc.finish_prep(scheme, hint)

        def streams():
            for c in range(num_clusters):
                members = flat[offsets[c] : offsets[c + 1]]
                yield members, np.ascontiguousarray(quant[members])

        layout = layout_from_cluster_streams(streams(), dim, sizes)

        url_offsets = np.load(filt.path / "url_offsets.npy")

        def layout_urls():
            with (filt.path / "urls.tsv").open("rb") as fh:
                for c in range(num_clusters):
                    for d in flat[offsets[c] : offsets[c + 1]]:
                        fh.seek(int(url_offsets[d]))
                        raw = fh.read(
                            int(url_offsets[d + 1] - url_offsets[d]) - 1
                        )
                        yield raw.decode("utf-8")

        url_batches = []
        for batch in enc.iter_positional_batches(
            layout_urls(), config.url_batch_size
        ):
            url_batches.append(batch)
        url_db, url_scheme = url_side_for(
            url_batches, config, a_seed=url_a_seed
        )
        url_prep, url_cached = enc.preprocess_cached(
            url_scheme, url_db.matrix, store.cache_dir("prep"), "url"
        )

        # The build ledger is derived from shapes alone, so a delta
        # rebuild and a full rebuild of the same snapshot agree on it.
        ledger = CostLedger()
        ledger.add("embed", num_docs * config.embedding_dim)
        if models.pca is not None:
            ledger.add("pca", num_docs * dim * config.embedding_dim)
        ledger.add("cluster", num_docs * num_clusters * dim)
        ledger.add(
            "crypto",
            scheme.inner.preprocess_word_ops(layout.rows)
            + url_scheme.inner.preprocess_word_ops(url_db.num_rows),
        )

        token_factory = TokenFactory()
        token_factory.register("ranking", scheme, ranking_prep)
        token_factory.register("url", url_scheme, url_prep)
        clusters = ClusterIndex(
            centroids=centroids,
            assignments=artifacts._unflatten(flat, offsets),
            doc_to_clusters=artifacts._unflatten(dt_flat, dt_off),
        )
        index = TiptoeIndex(
            config=config,
            embedder=models.embedder,
            pca=models.pca,
            clusters=clusters,
            layout=layout,
            url_batches=url_batches,
            url_db=url_db,
            ranking_scheme=scheme,
            url_scheme=url_scheme,
            ranking_prep=ranking_prep,
            url_prep=url_prep,
            token_factory=token_factory,
            build_ledger=ledger,
            embeddings=embs,
            url_position_map=None,
            quantization_gain=models.gain,
            boundary_threshold=threshold,
            doc_digests=np.load(filt.path / "digests.npy"),
        )
        artifacts.save_index(index, out_dir, precompute=precompute)
        digest = artifacts.artifact_digest(out_dir)
        counters = dict(hint_counters)
        counters["url_prep_cached"] = int(url_cached)
        outputs = {
            "artifact_digest": digest,
            "generation_tag": digest[: artifacts.GENERATION_TAG_LEN],
        }
        return counters, outputs

    def _artifact_matches(handle: StageHandle) -> bool:
        expected = handle.outputs().get("artifact_digest")
        try:
            return artifacts.artifact_digest(out_dir) == expected
        except artifacts.ArtifactError:
            return False

    encrypt = store.stage(
        "encrypt",
        {
            "config": artifacts._config_manifest(config),
            "ranking_a_seed": ranking_a_seed.hex(),
            "url_a_seed": url_a_seed.hex(),
            "precompute": precompute,
        },
        [pack_out["content_key"], cluster_out["content_key"]],
    )
    results.append(_run_stage(encrypt, _encrypt, validate=_artifact_matches))
    encrypt_out = encrypt.outputs()

    return IngestReport(
        stages=tuple(results),
        num_docs=num_docs,
        num_clusters=num_clusters,
        artifact_digest=encrypt_out["artifact_digest"],
        generation_tag=encrypt_out["generation_tag"],
        out_dir=str(out_dir),
    )
