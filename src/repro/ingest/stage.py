"""Checkpointed stage artifacts for the ingestion plane.

Every pipeline stage spills its outputs into a stage directory under
the spool root and marks completion with an atomically-written
``stage.json`` marker (schema ``repro.stage/v1``)::

    {
      "schema":   "repro.stage/v1",
      "stage":    "embed",
      "key":      "<sha256 over (schema, stage, params, input keys)>",
      "complete": true,
      "counters": {"docs_embedded": 4096, ...},
      "outputs":  {"content_key": "..."}
    }

The ``key`` is the stage's identity: a digest over its parameters and
the *output content keys* of its input stages, so a change anywhere
upstream (different corpus, different model, different config) changes
every downstream key and forces recomputation, while an unchanged
prefix of the DAG is reused as-is.  A stage whose marker is missing,
incomplete, or keyed differently is reset and recomputed -- which is
exactly the resume-after-kill story: a ``SIGKILL`` mid-stage leaves no
marker (or ``complete: false`` never written), so the rerun recomputes
only that stage and everything after it.

:meth:`StageStore.cache_dir` returns a content-addressed cache
directory that deliberately lives *outside* any stage directory: the
per-cluster hint contributions of the encrypt stage are keyed by the
SHA-256 of their inputs and survive stage resets, which is what makes
the delta reindex skip re-encrypting unchanged clusters.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Sequence

SCHEMA = "repro.stage/v1"

_MARKER = "stage.json"


class StageError(RuntimeError):
    """A stage directory is unusable (corrupt marker, bad schema)."""


def stage_key(stage: str, params: dict, inputs: Sequence[str]) -> str:
    """The digest identifying one stage invocation."""
    payload = json.dumps(
        {
            "schema": SCHEMA,
            "stage": stage,
            "params": params,
            "inputs": list(inputs),
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StageHandle:
    """One stage's directory, marker, and completion state."""

    def __init__(self, name: str, path: Path, key: str):
        self.name = name
        self.path = path
        self.key = key

    @property
    def marker_path(self) -> Path:
        return self.path / _MARKER

    def _read_marker(self) -> dict | None:
        try:
            marker = json.loads(self.marker_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise StageError(
                f"stage {self.name}: unreadable marker ({exc})"
            ) from exc
        if marker.get("schema") != SCHEMA:
            raise StageError(
                f"stage {self.name}: marker schema is"
                f" {marker.get('schema')!r}, this build reads {SCHEMA!r}"
            )
        return marker

    def is_complete(self) -> bool:
        """True iff this exact invocation already ran to completion."""
        marker = self._read_marker()
        return (
            marker is not None
            and marker.get("complete") is True
            and marker.get("key") == self.key
        )

    def counters(self) -> dict:
        marker = self._read_marker()
        if marker is None:
            return {}
        return dict(marker.get("counters", {}))

    def outputs(self) -> dict:
        marker = self._read_marker()
        if marker is None:
            return {}
        return dict(marker.get("outputs", {}))

    def reset(self) -> None:
        """Clear the stage directory for a fresh run."""
        if self.path.exists():
            shutil.rmtree(self.path)
        self.path.mkdir(parents=True, exist_ok=True)

    def finish(self, counters: dict | None = None, outputs: dict | None = None) -> None:
        """Mark the stage complete (atomic: write-then-rename)."""
        marker = {
            "schema": SCHEMA,
            "stage": self.name,
            "key": self.key,
            "complete": True,
            "counters": counters or {},
            "outputs": outputs or {},
        }
        tmp = self.marker_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(marker, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, self.marker_path)


class StageStore:
    """The spool directory holding every stage's checkpointed artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def stage(
        self, name: str, params: dict, inputs: Sequence[str] = ()
    ) -> StageHandle:
        return StageHandle(
            name=name,
            path=self.root / name,
            key=stage_key(name, params, inputs),
        )

    def cache_dir(self, name: str) -> Path:
        """A content-addressed cache surviving stage resets."""
        path = self.root / "cache" / name
        path.mkdir(parents=True, exist_ok=True)
        return path
