"""The encrypt stage: per-cluster incremental hint assembly.

The ranking hint is ``H = M A`` where ``M`` is the Fig. 3 layout
matrix.  Cluster ``c`` owns column block ``c*dim:(c+1)*dim`` of ``M``,
and block columns only ever multiply rows ``c*dim:(c+1)*dim`` of
``A`` -- so the hint decomposes into per-cluster contributions::

    H = sum_c  M[:, c*dim:(c+1)*dim] @ A[c*dim:(c+1)*dim, :]   (mod 2^64)

Ring addition is exact and commutative, so accumulating the per-cluster
products reproduces ``scheme.preprocess(M)`` bit-for-bit while touching
one cluster's quantized block at a time.  Each contribution is keyed by
the SHA-256 of everything it depends on (the A-seed and LWE shape, the
cluster's column position, and the digest of its quantized rows) and
cached under the spool's content-addressed cache -- the delta reindex
then recomputes contributions only for clusters whose membership or
content actually changed, which is the "re-encrypt only affected
clusters" guarantee.  Rows of a contribution beyond the cluster's real
size are zero, so only the occupied ``(cluster_size, n)`` rows are
stored and a cached entry stays valid even when the global
``max_cluster_size`` changes between snapshots.
"""

from __future__ import annotations

import hashlib
import zlib
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.corpus.urls import MAX_URL_CHARS, UrlBatch
from repro.homenc.double import DoubleLheScheme, PreprocessedMatrix
from repro.lwe import modular


def _scheme_tag(scheme: DoubleLheScheme) -> bytes:
    inner = scheme.params.inner
    return (
        f"{scheme.inner.a_seed.hex()}/{inner.n}/{inner.q_bits}/{inner.m}"
    ).encode("ascii")


def cluster_hint_key(
    scheme: DoubleLheScheme, dim: int, cluster: int, content_digest: str
) -> str:
    """Cache key of one cluster's hint contribution."""
    h = hashlib.sha256()
    h.update(b"repro.hint/v1")
    h.update(_scheme_tag(scheme))
    h.update(f"/{dim}/{cluster}/".encode("ascii"))
    h.update(content_digest.encode("ascii"))
    return h.hexdigest()


def accumulate_ranking_hint(
    scheme: DoubleLheScheme,
    cluster_blocks: Iterable[tuple[int, np.ndarray, str]],
    max_size: int,
    dim: int,
    cache_dir: Path | None,
) -> tuple[np.ndarray, dict]:
    """Assemble the full hint from per-cluster (reused or fresh) blocks.

    ``cluster_blocks`` yields ``(cluster, quantized_rows, content_digest)``
    in any order; ``quantized_rows`` is the ``(cluster_size, dim)`` int64
    block.  Returns the ``(max_size, n)`` hint (mod 2^64) plus counters
    ``{"clusters_encrypted", "clusters_reused"}``.
    """
    q_bits = scheme.params.inner.q_bits
    n = scheme.params.inner.n
    hint = np.zeros((max_size, n), dtype=np.uint64)
    a = scheme.inner.a
    encrypted = 0
    reused = 0
    for cluster, rows, digest in cluster_blocks:
        contrib = None
        entry = None
        if cache_dir is not None:
            entry = cache_dir / f"{cluster_hint_key(scheme, dim, cluster, digest)}.npy"
            if entry.is_file():
                contrib = np.load(entry)
                reused += 1
        if contrib is None:
            block = modular.to_ring(rows, q_bits)
            contrib = modular.matmul(
                block, a[cluster * dim : (cluster + 1) * dim], q_bits
            )
            encrypted += 1
            if entry is not None:
                tmp = entry.with_suffix(".npy.tmp")
                with tmp.open("wb") as fh:
                    np.lib.format.write_array(fh, contrib)
                tmp.replace(entry)
        if contrib.shape != (rows.shape[0], n):
            raise ValueError(
                f"cluster {cluster}: cached contribution has shape"
                f" {contrib.shape}, expected ({rows.shape[0]}, {n})"
            )
        hint[: contrib.shape[0]] += contrib
    return hint, {"clusters_encrypted": encrypted, "clusters_reused": reused}


def finish_prep(
    scheme: DoubleLheScheme, hint: np.ndarray
) -> PreprocessedMatrix:
    """Wrap an assembled hint exactly as ``scheme.preprocess`` would.

    The modulus switch is elementwise (cheap) and recomputed from the
    assembled hint, so a hint built from cached contributions yields a
    byte-identical :class:`PreprocessedMatrix`.
    """
    switched = modular.mod_switch(
        hint, scheme.params.inner.q_bits, scheme.params.switch_modulus
    )
    return PreprocessedMatrix(
        hint=hint, switched_hint=switched, rows=hint.shape[0]
    )


def preprocess_cached(
    scheme: DoubleLheScheme,
    matrix: np.ndarray,
    cache_dir: Path | None,
    label: str,
) -> tuple[PreprocessedMatrix, bool]:
    """``scheme.preprocess(matrix)`` with a whole-matrix hint cache.

    Used for the URL side, whose packed database is one matrix (no
    per-cluster structure).  The cache key covers the matrix bytes, the
    A-seed, and the LWE shape; returns ``(prep, was_cached)``.
    """
    entry = None
    if cache_dir is not None:
        h = hashlib.sha256()
        h.update(b"repro.prep/v1/")
        h.update(label.encode("ascii"))
        h.update(b"/")
        h.update(_scheme_tag(scheme))
        h.update(np.ascontiguousarray(matrix).tobytes())
        entry = cache_dir / f"{h.hexdigest()}.npy"
        if entry.is_file():
            return finish_prep(scheme, np.load(entry)), True
    prep = scheme.preprocess(matrix)
    if entry is not None:
        tmp = entry.with_suffix(".npy.tmp")
        with tmp.open("wb") as fh:
            np.lib.format.write_array(fh, np.asarray(prep.hint))
        tmp.replace(entry)
    return prep, False


def iter_positional_batches(
    urls: Iterator[str], batch_size: int
) -> Iterator[UrlBatch]:
    """Streaming twin of ``UrlBatcher.build_positional_batches``.

    Consumes URLs in layout order and emits byte-identical batches
    (same position numbering, blanking rule, and zlib level) without
    ever holding the full layout-ordered URL list.
    """
    chunk: list[str] = []
    start = 0
    for url in urls:
        chunk.append(url)
        if len(chunk) == batch_size:
            yield _positional_batch(chunk, start)
            start += len(chunk)
            chunk = []
    if chunk:
        yield _positional_batch(chunk, start)


def _positional_batch(chunk: list[str], start: int) -> UrlBatch:
    lines = "\n".join(
        f"{start + i} {url if len(url) <= MAX_URL_CHARS else ''}"
        for i, url in enumerate(chunk)
    )
    return UrlBatch(
        payload=zlib.compress(lines.encode(), level=9),
        doc_ids=tuple(range(start, start + len(chunk))),
    )
