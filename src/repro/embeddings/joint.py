"""A simulated CLIP-style joint text-image embedding space (SS7, SS8.3).

The paper's text-to-image search embeds captions and images into one
512-dimensional space with CLIP.  Offline, we simulate the property
Tiptoe actually relies on -- *text queries and images are comparable
by inner product* -- as follows (DESIGN.md substitution 5):

* an "image" is a latent topic vector (produced by the synthetic
  corpus generator) pushed through a fixed random linear modality map
  plus per-image noise, standing in for pixel content;
* the text side embeds captions with any text embedder and learns the
  linear map from caption embeddings to image vectors on a training
  split (ridge regression) -- mirroring how CLIP aligns the two
  modalities with a contrastive objective.

The output dimension is 2x the text dimension by default, mirroring
the paper's 512-vs-768 (then 384-vs-192 after PCA) ratio, which is
what doubles the image pipeline's cost in Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _normalize(rows: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(rows, axis=-1, keepdims=True)
    return np.divide(rows, norms, out=np.zeros_like(rows), where=norms > 0)


@dataclass
class JointEmbedder:
    """A fitted text-to-image embedding pair."""

    text_embedder: object
    alignment: np.ndarray  # (text_dim, joint_dim)

    @classmethod
    def fit(
        cls,
        text_embedder,
        captions: list[str],
        image_vectors: np.ndarray,
        ridge: float = 1e-3,
    ) -> "JointEmbedder":
        """Learn the text-to-image alignment on caption/image pairs."""
        image_vectors = np.asarray(image_vectors, dtype=np.float64)
        if len(captions) != image_vectors.shape[0]:
            raise ValueError("need one image vector per caption")
        text = np.stack([text_embedder.embed(c) for c in captions])
        gram = text.T @ text + ridge * np.eye(text.shape[1])
        alignment = np.linalg.solve(gram, text.T @ image_vectors)
        return cls(text_embedder=text_embedder, alignment=alignment)

    @property
    def dim(self) -> int:
        return self.alignment.shape[1]

    def embed_text(self, text: str) -> np.ndarray:
        """Embed a text query into the joint space (unit norm)."""
        vec = self.text_embedder.embed(text) @ self.alignment
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_images(self, image_vectors: np.ndarray) -> np.ndarray:
        """'Embed' images: normalize their latent vectors in-place."""
        return _normalize(np.asarray(image_vectors, dtype=np.float64))
