"""Feature-hashing embedder: a trainingless alternative embedding.

Maps each term (and, for robustness to morphology, its character
trigrams) to a pseudo-random signed direction in the embedding space;
a text embeds as the IDF-free weighted sum of its features.  Cheaper
than LSA and usable before any corpus statistics exist -- the
benchmarks use it to show the Tiptoe protocol is embedder-agnostic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.embeddings.tokenizer import analyze


def _feature_vector(feature: str, dim: int, salt: bytes) -> np.ndarray:
    """A deterministic pseudo-random unit direction for one feature."""
    digest = hashlib.blake2b(feature.encode(), key=salt, digest_size=8).digest()
    rng = np.random.Generator(
        np.random.Philox(int.from_bytes(digest, "little"))
    )
    vec = rng.standard_normal(dim)
    return vec / np.linalg.norm(vec)


def _char_trigrams(token: str) -> list[str]:
    padded = f"#{token}#"
    return [padded[i : i + 3] for i in range(len(padded) - 2)]


@dataclass
class HashingEmbedder:
    """A stateless, deterministic text embedder."""

    dim: int = 64
    salt: bytes = b"tiptoe-hash-embed"
    trigram_weight: float = 0.35
    _cache: dict | None = None

    def __post_init__(self) -> None:
        self._cache = {}

    def _direction(self, feature: str) -> np.ndarray:
        cached = self._cache.get(feature)
        if cached is None:
            cached = _feature_vector(feature, self.dim, self.salt)
            self._cache[feature] = cached
        return cached

    def embed(self, text: str) -> np.ndarray:
        vec = np.zeros(self.dim)
        for token in analyze(text, stem=False):
            vec += self._direction(token)
            for tri in _char_trigrams(token):
                vec += self.trigram_weight * self._direction(f"3:{tri}")
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        return np.stack([self.embed(t) for t in texts])
