"""Vocabulary and document-frequency statistics.

The tf-idf and BM25 baselines, and the LSA embedder, all share this
term dictionary.  It also implements the dictionary restriction that
Coeus applies (keeping only the top-k terms by inverse document
frequency), which SS8.2 shows collapses search quality on corpora with
many document-specific keywords.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Vocabulary:
    """Term dictionary with document frequencies over a corpus."""

    term_to_id: dict[str, int]
    doc_freq: list[int]
    num_docs: int

    @classmethod
    def build(
        cls,
        token_lists: list[list[str]],
        min_df: int = 1,
        max_terms: int | None = None,
    ) -> "Vocabulary":
        """Build from analyzed documents.

        ``min_df`` drops rare terms; ``max_terms`` keeps the most
        frequent ones (by document frequency) when set.
        """
        df: dict[str, int] = {}
        for tokens in token_lists:
            for term in set(tokens):
                df[term] = df.get(term, 0) + 1
        terms = [t for t, c in df.items() if c >= min_df]
        terms.sort(key=lambda t: (-df[t], t))
        if max_terms is not None:
            terms = terms[:max_terms]
        terms.sort()
        return cls(
            term_to_id={t: i for i, t in enumerate(terms)},
            doc_freq=[df[t] for t in terms],
            num_docs=len(token_lists),
        )

    def __len__(self) -> int:
        return len(self.term_to_id)

    def __contains__(self, term: str) -> bool:
        return term in self.term_to_id

    def id_of(self, term: str) -> int | None:
        return self.term_to_id.get(term)

    def idf(self, term_id: int) -> float:
        """Smoothed inverse document frequency."""
        return math.log((1 + self.num_docs) / (1 + self.doc_freq[term_id])) + 1.0

    def idf_vector(self) -> list[float]:
        return [self.idf(i) for i in range(len(self))]

    def restrict_to_top_idf(self, k: int) -> "Vocabulary":
        """Coeus-style restriction: keep the k highest-IDF terms.

        High IDF means rare; Coeus keeps the 65K stemmed words that
        appear in the fewest documents (SS8.2).
        """
        order = sorted(
            self.term_to_id,
            key=lambda t: (self.doc_freq[self.term_to_id[t]], t),
        )
        kept = sorted(order[:k])
        return Vocabulary(
            term_to_id={t: i for i, t in enumerate(kept)},
            doc_freq=[self.doc_freq[self.term_to_id[t]] for t in kept],
            num_docs=self.num_docs,
        )
