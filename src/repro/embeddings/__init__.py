"""Text analysis, retrieval baselines, and semantic embeddings.

Tiptoe treats the embedding model as a black box (SS3.1): any function
mapping text to vectors whose inner products track semantic similarity
works.  The paper uses a pretrained transformer; this reproduction
builds the full substrate from scratch (see DESIGN.md substitution 1):

* :mod:`tokenizer` / :mod:`stemmer` / :mod:`vocab` -- text analysis;
* :mod:`tfidf` and :mod:`bm25` -- the paper's retrieval baselines;
* :mod:`lsa` -- the semantic embedder (truncated SVD over tf-idf);
* :mod:`hashing` -- a cheaper feature-hashing embedder;
* :mod:`pca` -- dimensionality reduction (SS7);
* :mod:`quantize` -- fixed-precision integer embeddings (App. B.1);
* :mod:`joint` -- a simulated CLIP-style text-image joint space.
"""

from repro.embeddings.bm25 import Bm25Retriever
from repro.embeddings.hashing import HashingEmbedder
from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.quantize import (
    QuantizationConfig,
    dequantize,
    quantize,
    quantize_gained,
)
from repro.embeddings.stemmer import porter_stem
from repro.embeddings.streaming import (
    FittedModels,
    ReservoirSampler,
    fit_streaming_models,
    transform_texts,
)
from repro.embeddings.tfidf import TfidfModel, TfidfRetriever
from repro.embeddings.tokenizer import analyze, tokenize
from repro.embeddings.vocab import Vocabulary

__all__ = [
    "Bm25Retriever",
    "FittedModels",
    "HashingEmbedder",
    "LsaEmbedder",
    "PcaReducer",
    "QuantizationConfig",
    "ReservoirSampler",
    "TfidfModel",
    "TfidfRetriever",
    "Vocabulary",
    "analyze",
    "dequantize",
    "fit_streaming_models",
    "porter_stem",
    "quantize",
    "quantize_gained",
    "tokenize",
    "transform_texts",
]
