"""The Porter stemming algorithm (Porter, 1980), from scratch.

Used by the tf-idf baseline (the paper stems via Gensim, SS8.2) and by
the vocabulary builder.  This is a faithful implementation of the
original five-step algorithm; the test suite pins the classic
reference examples (caresses -> caress, ponies -> poni, relational ->
relat, ...).
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The 'measure' m: the number of VC sequences in the stem."""
    pattern = []
    for i in range(len(stem)):
        c = _is_consonant(stem, i)
        if not pattern or pattern[-1] != c:
            pattern.append(c)
    # pattern is like [C?, V, C, V, C, ...]; count VC pairs.
    m = 0
    for i in range(len(pattern) - 1):
        if not pattern[i] and pattern[i + 1]:
            m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return word[-1] not in "wxy"
    return False


def _replace_suffix(word: str, suffix: str, replacement: str, m_min: int) -> str | None:
    """Replace suffix if present and the stem's measure exceeds m_min."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > m_min:
        return stem + replacement
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def porter_stem(word: str) -> str:
    """Stem one lowercase word."""
    if len(word) <= 2:
        return word

    # Step 1a: plurals.
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b: -ed and -ing.
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            word = word[:-1]
    else:
        cleaned = None
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            cleaned = word[:-2]
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            cleaned = word[:-3]
        if cleaned is not None:
            word = cleaned
            if word.endswith(("at", "bl", "iz")):
                word += "e"
            elif _ends_double_consonant(word) and word[-1] not in "lsz":
                word = word[:-1]
            elif _measure(word) == 1 and _ends_cvc(word):
                word += "e"

    # Step 1c: y -> i.
    if word.endswith("y") and _contains_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2.
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            out = _replace_suffix(word, suffix, replacement, 0)
            if out is not None:
                word = out
            break

    # Step 3.
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            out = _replace_suffix(word, suffix, replacement, 0)
            if out is not None:
                word = out
            break

    # Step 4: drop suffixes when m > 1.
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                word = stem
            break
    else:
        if word.endswith("ion") and _measure(word[:-3]) > 1 and word[-4] in "st":
            word = word[:-3]

    # Step 5a: drop trailing e.
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem

    # Step 5b: -ll -> -l when m > 1.
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        word = word[:-1]

    return word
