"""tf-idf vectors and the cosine-similarity retrieval baseline (SS8.2).

The paper compares Tiptoe against classic tf-idf with an unrestricted
dictionary (MRR@100 about 0.27 on MS MARCO) and against tf-idf with
Coeus's restricted dictionary (MRR@100 of 0).  Both configurations run
through this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.embeddings.tokenizer import analyze
from repro.embeddings.vocab import Vocabulary


@dataclass
class TfidfModel:
    """Maps analyzed documents to L2-normalized tf-idf vectors."""

    vocab: Vocabulary

    def vectorize_tokens(self, tokens: list[str]) -> dict[int, float]:
        """A sparse tf-idf vector (term-id -> weight), L2-normalized."""
        counts: dict[int, int] = {}
        for term in tokens:
            tid = self.vocab.id_of(term)
            if tid is not None:
                counts[tid] = counts.get(tid, 0) + 1
        if not counts:
            return {}
        weights = {
            tid: (1.0 + np.log(c)) * self.vocab.idf(tid)
            for tid, c in counts.items()
        }
        norm = float(np.sqrt(sum(w * w for w in weights.values())))
        return {tid: w / norm for tid, w in weights.items()}

    def vectorize(self, text: str) -> dict[int, float]:
        return self.vectorize_tokens(analyze(text))

    def matrix(self, token_lists: list[list[str]]) -> sparse.csr_matrix:
        """Stack document vectors into a (docs x terms) CSR matrix."""
        rows, cols, vals = [], [], []
        for i, tokens in enumerate(token_lists):
            for tid, w in self.vectorize_tokens(tokens).items():
                rows.append(i)
                cols.append(tid)
                vals.append(w)
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(token_lists), len(self.vocab))
        )


class TfidfRetriever:
    """Exhaustive cosine-similarity ranking over tf-idf vectors."""

    def __init__(self, documents: list[str], max_terms: int | None = None):
        self._token_lists = [analyze(doc) for doc in documents]
        self.vocab = Vocabulary.build(self._token_lists, max_terms=max_terms)
        self.model = TfidfModel(self.vocab)
        self._matrix = self.model.matrix(self._token_lists)

    @classmethod
    def with_restricted_vocab(
        cls, documents: list[str], top_idf_terms: int
    ) -> "TfidfRetriever":
        """The Coeus configuration: top-k terms by IDF only."""
        retriever = cls.__new__(cls)
        retriever._token_lists = [analyze(doc) for doc in documents]
        full = Vocabulary.build(retriever._token_lists)
        retriever.vocab = full.restrict_to_top_idf(top_idf_terms)
        retriever.model = TfidfModel(retriever.vocab)
        retriever._matrix = retriever.model.matrix(retriever._token_lists)
        return retriever

    @property
    def num_documents(self) -> int:
        return self._matrix.shape[0]

    def scores(self, query: str) -> np.ndarray:
        """Cosine similarity of the query against every document."""
        qvec = self.model.vectorize(query)
        if not qvec:
            return np.zeros(self.num_documents)
        q = sparse.csr_matrix(
            (
                list(qvec.values()),
                ([0] * len(qvec), list(qvec.keys())),
            ),
            shape=(1, len(self.vocab)),
        )
        return np.asarray((self._matrix @ q.T).todense()).ravel()

    def rank(self, query: str, k: int = 100) -> list[int]:
        """Document ids of the top-k matches, best first."""
        scores = self.scores(query)
        top = np.argsort(-scores, kind="stable")[:k]
        return [int(i) for i in top]

    def index_bytes(self) -> int:
        """Approximate index size (CSR data + indices), for Table 6."""
        return int(
            self._matrix.data.nbytes
            + self._matrix.indices.nbytes
            + self._matrix.indptr.nbytes
        )
