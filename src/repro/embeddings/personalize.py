"""Personalized search via client-side embedding augmentation (SS9).

"Tiptoe could potentially support personalized search by incorporating
a client-side embedding function that takes as input not only the
user's query, but also the user's search profile."  Because the
profile enters *before* encryption, the servers -- which keep using
the plain document-side embedding -- never see it; personalization is
free privacy-wise.

The profile is itself a vector in the embedding space (e.g., built
from location terms or interaction history) blended into every query
embedding with a configurable weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PersonalizedEmbedder:
    """Wraps any text embedder with a client-held profile vector."""

    base: object
    profile: np.ndarray
    weight: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight < 1.0:
            raise ValueError("profile weight must be in [0, 1)")
        norm = np.linalg.norm(self.profile)
        if norm == 0:
            raise ValueError("profile vector must be nonzero")
        self.profile = np.asarray(self.profile, dtype=np.float64) / norm

    @classmethod
    def from_profile_text(
        cls, base, profile_text: str, weight: float = 0.3
    ) -> "PersonalizedEmbedder":
        """Build the profile from text (e.g., "restaurants in tokyo")."""
        return cls(base=base, profile=base.embed(profile_text), weight=weight)

    @classmethod
    def from_history(
        cls, base, history_embeddings: np.ndarray, weight: float = 0.3
    ) -> "PersonalizedEmbedder":
        """Build the profile from past interactions' embeddings."""
        profile = np.asarray(history_embeddings, dtype=np.float64).mean(axis=0)
        return cls(base=base, profile=profile, weight=weight)

    def embed(self, text: str) -> np.ndarray:
        """Blend the query embedding with the profile; unit-normalize."""
        query = self.base.embed(text)
        blended = (1.0 - self.weight) * query + self.weight * self.profile
        norm = np.linalg.norm(blended)
        return blended / norm if norm > 0 else blended

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        return np.stack([self.embed(t) for t in texts])
