"""Tokenization for the retrieval substrates.

A deliberately simple analyzer: lowercase, split on non-alphanumerics,
drop one-character tokens and a small stopword list, optionally stem.
This matches what the paper's tf-idf baseline does via Gensim (SS8.2)
closely enough for the quality comparisons to be meaningful.
"""

from __future__ import annotations

import re

from repro.embeddings.stemmer import porter_stem

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A compact English stopword list (the usual suspects).
STOPWORDS = frozenset(
    """a an and are as at be but by for from has have he her his i in is it
    its me my of on or our she that the their them they this to was we were
    what when where which who will with you your""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens, stopwords and single characters removed."""
    return [
        tok
        for tok in _TOKEN_RE.findall(text.lower())
        if len(tok) > 1 and tok not in STOPWORDS
    ]


def analyze(text: str, stem: bool = True) -> list[str]:
    """Tokenize and (by default) Porter-stem."""
    tokens = tokenize(text)
    if stem:
        return [porter_stem(tok) for tok in tokens]
    return tokens
