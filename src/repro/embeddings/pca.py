"""Principal-component dimensionality reduction (SS7).

The paper runs PCA over the corpus embeddings and ships the resulting
linear projection (0.6 MiB) to the client, shrinking text embeddings
from 768 to 192 dimensions -- a ~2x saving in bandwidth and compute at
a 0.02 MRR@100 cost (Fig. 9, step 6).  Implemented from scratch via
the SVD of the centered data matrix.

Note the client applies the projection *locally* to its query
embedding, so PCA never touches the private protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PcaReducer:
    """A fitted PCA projection ``x -> (x - mean) @ components.T``."""

    mean: np.ndarray
    components: np.ndarray
    explained_variance_ratio: np.ndarray

    @classmethod
    def fit(cls, data: np.ndarray, dim: int) -> "PcaReducer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("PCA input must be a (samples, features) matrix")
        n, d = data.shape
        if not 1 <= dim <= d:
            raise ValueError(f"target dimension must be in [1, {d}]")
        if n < 2:
            raise ValueError("PCA needs at least two samples")
        mean = data.mean(axis=0)
        centered = data - mean
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        variances = singular**2
        total = variances.sum()
        ratio = variances[:dim] / total if total > 0 else np.zeros(dim)
        return cls(
            mean=mean,
            components=vt[:dim],
            explained_variance_ratio=ratio,
        )

    @property
    def dim(self) -> int:
        return self.components.shape[0]

    def transform(self, vectors: np.ndarray) -> np.ndarray:
        """Project (and re-normalize) vectors into the reduced space.

        Re-normalization keeps inner products interpretable as cosine
        similarity after the reduction.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        reduced = (vectors - self.mean) @ self.components.T
        norms = np.linalg.norm(reduced, axis=1, keepdims=True)
        reduced = np.divide(
            reduced, norms, out=np.zeros_like(reduced), where=norms > 0
        )
        return reduced[0] if vectors.shape[0] == 1 else reduced

    def projection_bytes(self) -> int:
        """Client download size of the projection (SS7: 0.6 MiB)."""
        return int(self.components.nbytes + self.mean.nbytes)
