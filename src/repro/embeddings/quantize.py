"""Fixed-precision embedding representation (SS4.3, Appendix B.1).

The inner encryption scheme computes over integers mod p, so the
real-valued embeddings are clipped to [-1, 1] and rounded to signed
``precision_bits``-bit integers: ``x -> round(x * 2^b)``.  The paper
uses b = 4 (a 0.005 MRR@100 cost) and picks the plaintext modulus so
inner products never wrap: ``p / 2 > d * (2^b)^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationConfig:
    """Fixed-precision representation parameters."""

    precision_bits: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.precision_bits <= 15:
            raise ValueError("precision must be between 1 and 15 bits")

    @property
    def scale(self) -> int:
        return 1 << self.precision_bits

    @property
    def max_magnitude(self) -> int:
        """Largest absolute quantized value."""
        return self.scale

    def min_plaintext_modulus(self, dim: int) -> int:
        """Smallest p such that d-dimensional inner products cannot wrap.

        Appendix B.1: need p/2 > d * (2^b)^2.
        """
        return 2 * dim * self.scale * self.scale + 1

    def check_modulus(self, p: int, dim: int) -> None:
        """Raise if inner products over Z_p could wrap around."""
        needed = self.min_plaintext_modulus(dim)
        if p < needed:
            raise ValueError(
                f"plaintext modulus {p} too small for dimension {dim} at"
                f" {self.precision_bits}-bit precision (need >= {needed})"
            )


def quantize(
    vectors: np.ndarray, config: QuantizationConfig = QuantizationConfig()
) -> np.ndarray:
    """Clip to [-1, 1] and round to signed fixed-precision integers.

    The paper notes its embedding occasionally leaves [-1, 1]; clipping
    has no significant quality impact (Appendix B.1).
    """
    clipped = np.clip(np.asarray(vectors, dtype=np.float64), -1.0, 1.0)
    return np.rint(clipped * config.scale).astype(np.int64)


def quantize_gained(
    vectors: np.ndarray,
    gain: float,
    config: QuantizationConfig = QuantizationConfig(),
    batch_rows: int = 4096,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``quantize(vectors * gain)`` without the whole-matrix float copy.

    The one-shot form materializes ``vectors * gain`` (a second full
    float64 matrix) and then the int64 result -- three corpus-sized
    arrays live at once.  Here the int64 output is allocated up front
    and filled per row-chunk through one bounded float scratch buffer,
    so peak memory is the output plus ``batch_rows`` rows.  Each chunk
    applies the same elementwise ops in the same order as
    :func:`quantize`, so the result is bit-identical.
    """
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError("expected a (docs, dim) matrix")
    if out is None:
        out = np.empty(vectors.shape, dtype=np.int64)
    elif out.shape != vectors.shape or out.dtype != np.int64:
        raise ValueError("out must be an int64 array of the input shape")
    scratch = np.empty(
        (min(batch_rows, vectors.shape[0]), vectors.shape[1]),
        dtype=np.float64,
    )
    for start in range(0, vectors.shape[0], batch_rows):
        stop = min(start + batch_rows, vectors.shape[0])
        chunk = scratch[: stop - start]
        np.multiply(vectors[start:stop], gain, out=chunk)
        np.clip(chunk, -1.0, 1.0, out=chunk)
        np.multiply(chunk, config.scale, out=chunk)
        np.rint(chunk, out=chunk)
        out[start:stop] = chunk
    return out


def dequantize(
    values: np.ndarray, config: QuantizationConfig = QuantizationConfig()
) -> np.ndarray:
    """Map fixed-precision integers back to floats in [-1, 1]."""
    return np.asarray(values, dtype=np.float64) / config.scale


def inner_product_scale(config: QuantizationConfig) -> float:
    """Factor relating quantized inner products to real ones (2^2b)."""
    return float(config.scale * config.scale)


def auto_gain(
    embeddings: np.ndarray, target_std: float = 0.25, max_gain: float = 8.0
) -> float:
    """A pre-quantization gain that spreads entries over [-1, 1].

    Unit-norm embeddings in d dimensions have entry scale ~1/sqrt(d),
    wasting most of the fixed-precision range; scaling both sides of
    the inner product by a common gain preserves the ranking while
    halving the quantization loss.  (The paper's transformer
    embeddings arrive range-matched; ours need this explicit step.)
    The gain is server-chosen, published with the model metadata, and
    applied by the client to its query embedding.
    """
    std = float(np.asarray(embeddings, dtype=np.float64).std())
    if std <= 0:
        return 1.0
    return float(min(max_gain, max(1.0, target_std / std)))
