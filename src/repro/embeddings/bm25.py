"""Okapi BM25 retrieval (the Anserini baseline of SS8.2).

The paper reports BM25 with the Anserini defaults k1 = 0.9, b = 0.4;
those are the defaults here too.  Scoring runs over an inverted index
so the baseline's own cost profile (query-dependent lookups -- the
very thing Tiptoe cannot do privately) is honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.embeddings.tokenizer import analyze


@dataclass
class Bm25Retriever:
    """Inverted-index BM25 ranking."""

    k1: float = 0.9
    b: float = 0.4
    _postings: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    _doc_lengths: list[int] = field(default_factory=list)
    _avg_len: float = 0.0

    @classmethod
    def from_documents(
        cls, documents: list[str], k1: float = 0.9, b: float = 0.4
    ) -> "Bm25Retriever":
        retriever = cls(k1=k1, b=b)
        for doc_id, doc in enumerate(documents):
            tokens = analyze(doc)
            retriever._doc_lengths.append(len(tokens))
            counts: dict[str, int] = {}
            for tok in tokens:
                counts[tok] = counts.get(tok, 0) + 1
            for term, count in counts.items():
                retriever._postings.setdefault(term, []).append((doc_id, count))
        total = sum(retriever._doc_lengths)
        retriever._avg_len = total / max(1, len(retriever._doc_lengths))
        return retriever

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    def _idf(self, term: str) -> float:
        n = len(self._postings.get(term, ()))
        if n == 0:
            return 0.0
        # The Robertson-Sparck Jones IDF with +1 smoothing (Lucene's).
        return math.log(1.0 + (self.num_documents - n + 0.5) / (n + 0.5))

    def scores(self, query: str) -> np.ndarray:
        out = np.zeros(self.num_documents)
        for term in analyze(query):
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for doc_id, tf in self._postings[term]:
                denom = tf + self.k1 * (
                    1.0
                    - self.b
                    + self.b * self._doc_lengths[doc_id] / self._avg_len
                )
                out[doc_id] += idf * tf * (self.k1 + 1.0) / denom
        return out

    def rank(self, query: str, k: int = 100) -> list[int]:
        scores = self.scores(query)
        top = np.argsort(-scores, kind="stable")[:k]
        return [int(i) for i in top]

    def index_bytes(self) -> int:
        """Approximate inverted-index size, for Table 6 comparisons."""
        entries = sum(len(p) for p in self._postings.values())
        return entries * 8 + sum(len(t) for t in self._postings)
