"""The semantic embedding model: latent semantic analysis.

The paper embeds documents with a pretrained transformer
(msmarco-distilbert-base-tas-b, 768-dimensional).  With no pretrained
models available offline, this reproduction trains a latent semantic
embedder on (a sample of) the corpus itself: a truncated SVD of the
tf-idf matrix.  Like the transformer, it maps text to dense vectors
whose inner products track topical similarity, it is a *server-chosen*
function the client downloads, and the Tiptoe protocol is oblivious to
which of the two produced the vectors (SS3.1).

Documents and queries embed through the same fold-in projection, and
all embeddings are L2-normalized so inner product equals cosine
similarity -- the similarity measure the protocol computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.embeddings.tfidf import TfidfModel
from repro.embeddings.tokenizer import analyze
from repro.embeddings.vocab import Vocabulary


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)


@dataclass
class LsaEmbedder:
    """A trained LSA embedding function.

    ``fit`` plays the role of the (offline, server-side) model
    training; the fitted object is the ~hundreds-of-MiB artifact the
    client downloads before querying (SS3.2).
    """

    dim: int
    vocab: Vocabulary = field(default=None, repr=False)
    projection: np.ndarray = field(default=None, repr=False)

    @classmethod
    def fit(
        cls,
        documents: list[str],
        dim: int = 64,
        max_terms: int | None = None,
        seed: int = 0,
    ) -> "LsaEmbedder":
        """Train on a corpus sample (SS7 trains k-means on a sample too)."""
        token_lists = [analyze(doc) for doc in documents]
        vocab = Vocabulary.build(token_lists, max_terms=max_terms)
        model = TfidfModel(vocab)
        matrix = model.matrix(token_lists)
        k = min(dim, min(matrix.shape) - 1)
        if k < 1:
            raise ValueError("corpus too small to fit an embedding")
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(min(matrix.shape))
        _, singular, vt = svds(matrix, k=k, v0=v0)
        order = np.argsort(-singular)
        projection = np.zeros((len(vocab), dim))
        projection[:, : len(order)] = vt[order].T
        return cls(dim=dim, vocab=vocab, projection=projection)

    def _fold_in(self, tokens: list[str]) -> np.ndarray:
        weights = TfidfModel(self.vocab).vectorize_tokens(tokens)
        vec = np.zeros(self.dim)
        for tid, w in weights.items():
            vec += w * self.projection[tid]
        return vec

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm vector."""
        vec = self._fold_in(analyze(text))
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts; rows are unit-norm (or zero)."""
        return _normalize_rows(np.stack([self._fold_in(analyze(t)) for t in texts]))

    def model_bytes(self) -> int:
        """Download size of the embedding function (Table 7 'Model')."""
        terms = sum(len(t) + 8 for t in self.vocab.term_to_id)
        return int(self.projection.nbytes) + terms
