"""Fit-on-a-sample / apply-streaming split for the embedding models.

The one-shot build fits LSA and PCA on the *whole* corpus matrix,
which is exactly the materialization the ingestion plane removes.  The
paper's own procedure is sample-based anyway (SS7 trains k-means on a
~10M-document sample; the embedding model is pretrained), so here:

* a :class:`ReservoirSampler` draws a uniform fixed-size sample from
  the document stream in one pass (Vitter's algorithm R, seeded);
* :func:`fit_streaming_models` fits the LSA vocabulary/projection, the
  PCA map, and the quantization gain on that sample only;
* :func:`transform_texts` then applies the fitted models batch by
  batch.

Bit-stability contract: ``transform_texts`` returns rows that are
bit-identical for any batching of the same documents (verified by the
ingest test suite).  LSA fold-in is per-document arithmetic, and the
PCA projection is a BLAS matmul whose rows are bit-stable for operand
batches of two or more rows; singleton batches take a different BLAS
path (matrix-vector), so a lone row is padded with a duplicate and
sliced back.  This is what makes "re-embed only the changed documents"
produce the same bytes as "re-embed everything".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.quantize import auto_gain


class ReservoirSampler:
    """Uniform fixed-capacity sample of a stream (algorithm R, seeded)."""

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = rng
        self._items: list = []
        self.offered = 0

    def offer(self, item) -> None:
        self.offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = int(self._rng.integers(self.offered))
        if slot < self.capacity:
            self._items[slot] = item

    def offer_many(self, items) -> None:
        for item in items:
            self.offer(item)

    @property
    def items(self) -> list:
        return list(self._items)


@dataclass(frozen=True)
class FittedModels:
    """Everything the embed stage needs, fitted on a reservoir sample."""

    embedder: LsaEmbedder
    pca: PcaReducer | None
    gain: float


def fit_streaming_models(
    sample_texts: list[str],
    embedding_dim: int,
    pca_dim: int | None,
    seed: int = 0,
) -> FittedModels:
    """Fit LSA + PCA + quantization gain on a corpus sample.

    Mirrors the model-fitting half of ``TiptoeIndex.build`` but over a
    sample instead of the whole corpus; the gain (a server-chosen
    scalar published with the client metadata) is likewise estimated
    from the sample.
    """
    if not sample_texts:
        raise ValueError("cannot fit models on an empty sample")
    embedder = LsaEmbedder.fit(sample_texts, dim=embedding_dim, seed=seed)
    sample = embedder.embed_batch(sample_texts)
    pca = None
    if pca_dim is not None and pca_dim < embedding_dim:
        pca = PcaReducer.fit(sample, pca_dim)
        sample = np.atleast_2d(pca.transform(sample))
    return FittedModels(
        embedder=embedder, pca=pca, gain=auto_gain(sample)
    )


def transform_texts(
    embedder: LsaEmbedder,
    pca: PcaReducer | None,
    texts: list[str],
) -> np.ndarray:
    """Embed a batch through LSA (+ PCA), batch-size bit-stable.

    Always returns a 2-D ``(len(texts), dim)`` array whose rows equal
    what any other batching of the same texts would produce.
    """
    dim = pca.dim if pca is not None else embedder.dim
    if not texts:
        return np.zeros((0, dim), dtype=np.float64)
    raw = embedder.embed_batch(texts)
    if pca is None:
        return raw
    if raw.shape[0] == 1:
        # Pad to two rows: the (2, d) @ (d, k) product takes the same
        # BLAS path as any larger batch, so row 0 matches the rows a
        # full-corpus transform would produce; a (1, d) product does
        # not (matrix-vector kernel, different accumulation order).
        padded = np.zeros((2, raw.shape[1]), dtype=np.float64)
        padded[0] = raw[0]
        padded[1] = raw[0]
        return np.atleast_2d(pca.transform(padded))[:1]
    return np.atleast_2d(pca.transform(raw))
