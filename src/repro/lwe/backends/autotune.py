"""Build-time kernel autotuning: pick the plan the hardware likes.

The winning (backend, limb width, chunk size, worker count) combination
depends on the index geometry and the host -- BLAS build, core count,
cache sizes -- none of which the code can predict.  So ``build-index
--precompute`` (and the ``tune-kernels`` CLI) benchmarks a small
candidate grid against the *real* index matrices and persists the
winner as a :class:`KernelPlan` record in the precompute sidecar, keyed
to the same ``arrays.npz`` digest as the rest of the derived data.
``serve`` then cold-starts straight into the tuned configuration.

Every candidate is validated bit-identical to ``modular.matmul`` before
it may win, so tuning can change speed but never answers.  Tuning
inputs are synthetic ciphertext-shaped matrices from a *fixed-seed*
generator: the tuner runs at build time on public data and must stay
deterministic and query-independent (SECURITY.md).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.lwe import modular
from repro.lwe.backends.base import KernelUnavailable
from repro.obs import runtime as _obs

#: Fixed tuning-input seed: tuning is deterministic and data-independent.
TUNE_SEED = 20230917


@dataclass(frozen=True)
class KernelPlan:
    """The autotuner's verdict for one matrix, sidecar-serializable."""

    backend: str
    limb_bits: int
    chunk_rows: int
    workers: int
    batch_size: int
    seconds: float
    throughput: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, entry: dict) -> "KernelPlan":
        """Parse a sidecar record; ``ValueError`` on anything malformed.

        Sidecars travel between hosts and survive schema drift, so a
        missing key or a non-numeric field must surface as one clean,
        catchable error -- the serving layer logs it and falls back to
        reference rather than dying at cold start.
        """
        try:
            return cls(
                backend=str(entry["backend"]),
                limb_bits=int(entry["limb_bits"]),
                chunk_rows=int(entry["chunk_rows"]),
                workers=int(entry["workers"]),
                batch_size=int(entry.get("batch_size", 0)),
                seconds=float(entry.get("seconds", 0.0)),
                throughput=float(entry.get("throughput", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed kernel plan record {entry!r}: {exc}"
            ) from exc

    def plan_kwargs(self) -> dict:
        """Keyword arguments for :meth:`KernelBackend.plan`."""
        return {
            "limb_bits": self.limb_bits or None,
            "chunk_rows": self.chunk_rows,
            "workers": self.workers,
        }


def _candidates(derived_limb: int, rows: int, backends: list[str]) -> list[tuple]:
    """(backend, limb_bits|None, chunk_rows, workers) grid to try.

    Hygiene rules: parallel candidates never request more workers than
    this host has cores (oversubscription only ever times worse, and it
    wastes tuning budget measuring it), and the grid is deduped -- on a
    small host several worker options collapse to the same value.
    """
    cores = os.cpu_count() or 1
    grid: list[tuple] = []
    for name in backends:
        if name == "multiprocess":
            worker_opts = sorted({2, min(4, cores)})
            for w in worker_opts:
                if 1 <= w <= cores:
                    grid.append((name, derived_limb or None, 0, w))
        elif name == "cnative":
            thread_opts = sorted({1, 2, min(4, cores), min(8, cores)})
            for t in thread_opts:
                if 1 <= t <= cores:
                    grid.append((name, derived_limb or None, 0, t))
        else:
            limb_opts = [derived_limb or None]
            if derived_limb > modular.MIN_LIMB_BITS:
                limb_opts.append(
                    max(modular.MIN_LIMB_BITS, derived_limb - 8)
                )
            chunk_opts = [0] + ([1024] if rows > 1024 else [])
            for lb in dict.fromkeys(limb_opts):
                for ch in chunk_opts:
                    grid.append((name, lb, ch, 0))
    return list(dict.fromkeys(grid))


def tune_matrix(
    matrix: np.ndarray,
    q_bits: int,
    *,
    entry_bound: int | None = None,
    batch_size: int = 16,
    repeats: int = 1,
    backends: list[str] | None = None,
    max_seconds: float | None = None,
) -> KernelPlan:
    """Benchmark the candidate grid on ``matrix``; return the winner.

    Candidates producing anything other than the exact reference result
    are rejected outright, so the returned plan is always safe to serve
    from.  ``max_seconds`` bounds the whole sweep: once the budget is
    spent, remaining candidates are skipped (the first -- a reference
    default -- always runs, so a winner always exists).
    """
    from repro.lwe.backends import backend_available, get_backend

    base = modular.StackedPlan(matrix, q_bits, entry_bound=entry_bound)
    derived_limb, bound = base.limb_bits, base.entry_bound
    rows, cols = base.rows, base.cols
    ring = base.ring
    base.close()

    if backends is None:
        backends = ["reference"]
        for optional in ("multiprocess", "cnative"):
            if backend_available(optional):
                backends.append(optional)

    dtype = modular.dtype_for(q_bits)
    rng = np.random.default_rng(TUNE_SEED)
    stacked = rng.integers(0, 1 << q_bits, size=(cols, batch_size), dtype=dtype)
    expected = modular.matmul(ring, stacked, q_bits)

    deadline = (
        time.perf_counter() + max_seconds if max_seconds is not None else None
    )
    best: KernelPlan | None = None
    skipped = 0
    for name, limb_bits, chunk_rows, workers in _candidates(
        derived_limb, rows, backends
    ):
        if (
            best is not None
            and deadline is not None
            and time.perf_counter() >= deadline
        ):
            skipped += 1
            continue
        backend = get_backend(name)
        plan = backend.plan(
            matrix,
            q_bits,
            entry_bound=bound,
            limb_bits=limb_bits,
            chunk_rows=chunk_rows,
            workers=workers,
        )
        try:
            got = plan.matmul(stacked)  # warm-up doubles as validation
            if not np.array_equal(got, expected):  # pragma: no cover
                continue
            start = time.perf_counter()
            for _ in range(repeats):
                plan.matmul(stacked)
            elapsed = max(time.perf_counter() - start, 1e-9)
        finally:
            plan.close()
        candidate = KernelPlan(
            backend=name,
            limb_bits=int(limb_bits or 0),
            chunk_rows=int(chunk_rows),
            workers=int(workers),
            batch_size=batch_size,
            seconds=elapsed / repeats,
            throughput=batch_size * repeats / elapsed,
        )
        if best is None or candidate.throughput > best.throughput:
            best = candidate
    if best is None:  # pragma: no cover - reference candidates always run
        raise KernelUnavailable("no kernel candidate produced exact results")
    if skipped:
        _obs.observe("kernel.autotune.skipped_candidates", skipped)
    _obs.observe(f"kernel.autotune.throughput.{best.backend}", best.throughput)
    return best


def tune_index(index, *, max_seconds: float | None = None, **kwargs) -> dict:
    """Tune both long-lived index matrices; a sidecar-ready record.

    Returns ``{"ranking": ..., "url": ...}`` of
    :meth:`KernelPlan.to_dict` entries -- the ``kernel_plan`` member of
    the ``repro.precompute/v1`` sidecar meta.  ``max_seconds`` bounds
    the *total* sweep; each matrix gets half the budget.
    """
    per_matrix = max_seconds / 2 if max_seconds is not None else None
    ranking = tune_matrix(
        index.layout.matrix,
        index.ranking_scheme.params.inner.q_bits,
        max_seconds=per_matrix,
        **kwargs,
    )
    url = tune_matrix(
        index.url_db.matrix,
        index.url_scheme.params.inner.q_bits,
        max_seconds=per_matrix,
        **kwargs,
    )
    return {"ranking": ranking.to_dict(), "url": url.to_dict()}
