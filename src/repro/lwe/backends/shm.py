"""Shared-memory multiprocessing backend: the scan on every core.

The ranking GEMM is embarrassingly parallel over matrix *rows*: the
product ``M @ B`` row-partitions into ``M[lo:hi] @ B`` blocks that
touch disjoint output rows.  This backend spawns worker processes
(escaping the GIL), places one read-only copy of the ring matrix -- and
of the centered float64 limb copy when the BLAS path is active -- in
POSIX shared memory, and hands each worker a zero-copy row-slice view.
Per batch, the stacked ciphertexts go out through one input segment and
the evaluated rows come back through one output segment; each worker
writes only its own ``[lo, hi)`` rows, so recombination is plain
concatenation (the degenerate case of ``modular.add`` with
zero-initialized remainders).

Exactness of the partition is inherited from
:func:`~repro.lwe.modular.limb_product`: every partial sum of every
per-worker dgemm is an exactly representable integer below 2^53, so
each worker's block equals the corresponding rows of the reference
product bit for bit, independent of how rows are split.  The integer
fallback regime partitions just as freely -- unsigned wraparound matmul
is exact per row.

Processes are ``spawn``-ed, never forked: the parent has live BLAS
thread pools and forking those is undefined behavior.
"""

from __future__ import annotations

import os
import threading
import weakref

import multiprocessing
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.lwe import modular
from repro.lwe.backends.base import KernelUnavailable, PlanContextMixin
from repro.obs import runtime as _obs

#: Default worker-pool width: always genuinely multiprocess (>= 2) so
#: the out-of-process path is exercised even on small hosts, capped so
#: spawn cost stays sane.
DEFAULT_WORKERS = max(2, min(4, os.cpu_count() or 1))

#: How long (seconds) teardown waits for a worker to exit politely
#: before terminating it.
_JOIN_TIMEOUT = 5.0


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python 3.11's ``SharedMemory`` registers *every* handle -- creator
    or not -- with the resource tracker, and spawn-context children
    share the parent's tracker process, so an attaching child would
    steal (and on exit, destroy) the parent's registration.  Suppress
    registration for the duration of the attach instead: the creating
    process owns cleanup.  (3.13 exposes this as ``track=False``.)
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(conn, spec: dict) -> None:
    """Worker loop: attach row-slice views, serve matmul jobs.

    Runs in a spawned child.  ``spec`` carries segment names and the
    worker's row range; per-job messages carry the batch input/output
    segment names.  Replies ``("ok", None)`` or ``("err", detail)``.
    """
    q_bits = spec["q_bits"]
    dtype = modular.dtype_for(q_bits)
    ring_shm = _attach(spec["ring"])
    float_shm = _attach(spec["float"]) if spec["float"] else None
    try:
        shape = (spec["rows"], spec["cols"])
        lo, hi = spec["lo"], spec["hi"]
        ring = np.ndarray(shape, dtype=dtype, buffer=ring_shm.buf)[lo:hi]
        fslice = (
            np.ndarray(shape, dtype=np.float64, buffer=float_shm.buf)[lo:hi]
            if float_shm is not None
            else None
        )
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            try:
                _, in_name, batch, out_name = msg
                in_shm = _attach(in_name)
                out_shm = _attach(out_name)
                try:
                    stacked = np.ndarray(
                        (spec["cols"], batch), dtype=dtype, buffer=in_shm.buf
                    )
                    out = np.ndarray(
                        (spec["rows"], batch), dtype=dtype, buffer=out_shm.buf
                    )
                    if fslice is not None:
                        out[lo:hi] = modular.limb_product(
                            fslice,
                            stacked,
                            spec["limb_bits"],
                            q_bits,
                            chunk_rows=spec["chunk_rows"],
                        )
                    else:
                        out[lo:hi] = modular.matmul(ring, stacked, q_bits)
                finally:
                    in_shm.close()
                    out_shm.close()
                conn.send(("ok", None))
            except Exception as exc:  # pragma: no cover - defensive
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        ring_shm.close()
        if float_shm is not None:
            float_shm.close()
        conn.close()


def _teardown(conns, procs, segments) -> None:
    """Stop workers and release the long-lived segments.

    Module-level so ``weakref.finalize`` never keeps the plan alive;
    ``finalize`` guarantees at-most-once, making ``close()`` idempotent.
    """
    for conn in conns:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=_JOIN_TIMEOUT)
        if proc.is_alive():  # pragma: no cover - hung worker
            proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT)
    for conn in conns:
        conn.close()
    for shm in segments:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedMemoryPlan(PlanContextMixin):
    """A row-partitioned plan executed by a spawn-context worker pool."""

    backend_name = "multiprocess"

    def __init__(
        self,
        inner: modular.StackedPlan,
        *,
        workers: int,
        timer_label: str,
    ):
        self.q_bits = inner.q_bits
        self.entry_bound = inner.entry_bound
        self.limb_bits = inner.limb_bits
        self.chunk_rows = inner.chunk_rows
        self.timer_label = timer_label
        rows, cols = inner.ring.shape
        self._shape = (rows, cols)
        self.workers = max(1, min(int(workers), rows)) if rows else 1
        self._dtype = modular.dtype_for(self.q_bits)

        ctx = multiprocessing.get_context("spawn")
        segments: list = []
        conns, procs = [], []
        bounds = np.linspace(0, rows, self.workers + 1).astype(int)
        try:
            ring_shm = shared_memory.SharedMemory(
                create=True, size=max(inner.ring.nbytes, 1)
            )
            segments.append(ring_shm)
            ring_view = np.ndarray(
                self._shape, dtype=self._dtype, buffer=ring_shm.buf
            )
            np.copyto(ring_view, inner.ring)
            float_shm = None
            if inner.uses_blas:
                float_shm = shared_memory.SharedMemory(
                    create=True, size=max(rows * cols * 8, 1)
                )
                segments.append(float_shm)
                fview = np.ndarray(
                    self._shape, dtype=np.float64, buffer=float_shm.buf
                )
                # Centered representatives fit in float64 exactly
                # whenever the limb path is active (the entry bound
                # derived a positive limb width, so |entry| << 2^53).
                np.copyto(fview, modular.centered(ring_view, self.q_bits))
            for w in range(self.workers):
                spec = {
                    "ring": ring_shm.name,
                    "float": float_shm.name if float_shm is not None else None,
                    "rows": rows,
                    "cols": cols,
                    "q_bits": self.q_bits,
                    "lo": int(bounds[w]),
                    "hi": int(bounds[w + 1]),
                    "limb_bits": self.limb_bits,
                    "chunk_rows": self.chunk_rows,
                }
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, spec), daemon=True
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
        except Exception:
            _teardown(conns, procs, segments)
            raise

        self._ring = ring_view
        self._io_lock = threading.Lock()
        self._conns = conns  # guarded-by: _io_lock
        self._finalizer = weakref.finalize(
            self, _teardown, conns, procs, segments
        )

    @property
    def rows(self) -> int:
        return self._shape[0]

    @property
    def cols(self) -> int:
        return self._shape[1]

    @property
    def uses_blas(self) -> bool:
        return self.limb_bits > 0

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        """The exact stacked product, fanned out across the pool."""
        if self._ring is None:
            raise KernelUnavailable("multiprocess plan is closed")
        stacked = np.asarray(stacked, dtype=self._dtype)
        if stacked.ndim != 2:
            raise ValueError(
                f"stacked ciphertexts must form a (cols, Q) matrix;"
                f" got shape {stacked.shape}"
            )
        if stacked.shape[0] != self.cols:
            raise ValueError(
                f"stacked ciphertexts have {stacked.shape[0]} rows,"
                f" expected {self.cols}"
            )
        batch = stacked.shape[1]
        if batch == 0 or self.rows == 0:
            return np.zeros((self.rows, batch), dtype=self._dtype)
        with _obs.kernel_timer(self.timer_label):
            in_shm = shared_memory.SharedMemory(
                create=True, size=max(stacked.nbytes, 1)
            )
            out_shm = shared_memory.SharedMemory(
                create=True,
                size=max(self.rows * batch * self._dtype().itemsize, 1),
            )
            try:
                in_view = np.ndarray(
                    stacked.shape, dtype=self._dtype, buffer=in_shm.buf
                )
                np.copyto(in_view, stacked)
                replies = []
                with self._io_lock:
                    for conn in self._conns:
                        conn.send(("matmul", in_shm.name, batch, out_shm.name))
                    for conn in self._conns:
                        # tiptoe-lint: disable=lock-blocking-call -- the pool pipe is private to this plan; workers always reply once per job, so the recv cannot deadlock against another holder of _io_lock
                        replies.append(conn.recv())
                errors = [detail for status, detail in replies if status != "ok"]
                if errors:
                    raise KernelUnavailable(
                        f"kernel worker failed: {'; '.join(errors)}"
                    )
                out_view = np.ndarray(
                    (self.rows, batch), dtype=self._dtype, buffer=out_shm.buf
                )
                return out_view.copy()
            finally:
                in_shm.close()
                in_shm.unlink()
                out_shm.close()
                out_shm.unlink()

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        """Single-query product, computed in-process on the shared ring.

        One matrix-vector scan does not amortize the fan-out cost, so
        it runs on the parent's zero-copy view of the shared matrix.
        """
        if self._ring is None:
            raise KernelUnavailable("multiprocess plan is closed")
        return modular.matmul(
            self._ring, np.asarray(vec).reshape(-1), self.q_bits
        )

    def metadata(self) -> dict:
        """Serializable plan parameters -- same shape as the reference."""
        return {
            "q_bits": self.q_bits,
            "entry_bound": self.entry_bound,
            "limb_bits": self.limb_bits,
        }

    def close(self) -> None:
        """Stop the pool and unlink the shared segments.  Idempotent."""
        self._ring = None
        self._finalizer()


class SharedMemoryBackend:
    """Spawn-context process pool over shared-memory matrix views."""

    name = "multiprocess"

    timer_label = "lwe.matmul_batch.multiprocess"

    @property
    def available(self) -> bool:
        try:
            multiprocessing.get_context("spawn")
        except ValueError:  # pragma: no cover - exotic platforms
            return False
        return hasattr(shared_memory, "SharedMemory")

    def plan(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        metadata: dict | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        workers: int = 0,
    ) -> SharedMemoryPlan:
        if not self.available:  # pragma: no cover - exotic platforms
            raise KernelUnavailable("spawn/shared-memory unsupported here")
        if metadata is not None and limb_bits is None:
            inner = modular.StackedPlan.from_metadata(
                matrix, metadata, chunk_rows=chunk_rows
            )
        else:
            if metadata is not None and entry_bound is None:
                entry_bound = int(metadata["entry_bound"])
            inner = modular.StackedPlan(
                matrix,
                q_bits,
                entry_bound=entry_bound,
                limb_bits=limb_bits,
                chunk_rows=chunk_rows,
            )
        try:
            return SharedMemoryPlan(
                inner,
                workers=workers or DEFAULT_WORKERS,
                timer_label=self.timer_label,
            )
        finally:
            inner.close()
