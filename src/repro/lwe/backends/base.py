"""The kernel-backend seam: what a pluggable GEMM engine provides.

The server's dominant cost is the ranking scan -- one exact modular
GEMM per batch (SS4, SS6.1).  A :class:`KernelBackend` owns *how* that
product executes (in-process BLAS limbs, a shared-memory process pool,
a JIT kernel); a :class:`BackendPlan` is the backend's preprocessed
state for one long-lived matrix, playing the same role as
:class:`~repro.lwe.modular.StackedPlan` (which is exactly what the
reference backend wraps).

The contract every backend must honor, whatever its execution
strategy:

* **Bit-identity.**  ``plan.matmul(stacked)`` returns exactly what
  ``modular.matmul(M, stacked, q_bits)`` returns -- not close, equal.
  The cross-backend Hypothesis suite in ``tests/lwe`` enforces this
  over both moduli, ragged batch widths, and the integer-fallback
  regime.
* **Message independence.**  Plans are functions of the matrix alone
  (like the SimplePIR hint); nothing about any query may influence
  plan construction or backend selection.  See SECURITY.md.
* **Lifecycle.**  ``close()`` releases whatever the plan holds
  (staging copies, shared-memory segments, worker processes) and is
  idempotent; plans are context managers.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


class KernelUnavailable(RuntimeError):
    """The requested backend cannot run in this environment."""


@runtime_checkable
class BackendPlan(Protocol):
    """Preprocessed per-matrix state a backend hands back.

    Attributes mirror :class:`~repro.lwe.modular.StackedPlan` so the
    serving layers and the precompute sidecar treat every backend's
    plan uniformly.
    """

    backend_name: str
    q_bits: int
    rows: int
    cols: int
    entry_bound: int
    limb_bits: int

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        """The exact stacked product ``M @ B`` over Z_{2^q_bits}."""
        ...

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        """The exact single-query product ``M @ v``."""
        ...

    def metadata(self) -> dict:
        """Serializable plan parameters (see the precompute sidecar)."""
        ...

    def close(self) -> None:
        """Release plan resources.  Idempotent."""
        ...


@runtime_checkable
class KernelBackend(Protocol):
    """A named engine that builds :class:`BackendPlan` objects."""

    name: str

    @property
    def available(self) -> bool:
        """Can this backend actually run here (deps present, etc.)?"""
        ...

    def plan(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        metadata: dict | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        workers: int = 0,
    ) -> BackendPlan:
        """Preprocess one long-lived matrix for this backend.

        ``metadata`` (from the precompute sidecar) skips the entry
        scan and is validated against the matrix; ``limb_bits`` /
        ``chunk_rows`` / ``workers`` are autotuner outputs -- backends
        ignore the knobs they have no use for.
        """
        ...


class PlanContextMixin:
    """``with backend.plan(...) as plan:`` support for every plan."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
