"""The reference backend: the in-process limb-decomposed BLAS path.

This is :class:`~repro.lwe.modular.StackedPlan` behind the
:class:`~repro.lwe.backends.base.KernelBackend` seam -- the exactness
baseline every other backend must match bit for bit, and the fallback
every optional backend degrades to.
"""

from __future__ import annotations

import numpy as np

from repro.lwe import modular
from repro.lwe.backends.base import PlanContextMixin


class ReferencePlan(PlanContextMixin):
    """A :class:`~repro.lwe.modular.StackedPlan` with the seam API."""

    backend_name = "reference"

    def __init__(self, plan: modular.StackedPlan):
        self._plan = plan

    @property
    def q_bits(self) -> int:
        return self._plan.q_bits

    @property
    def rows(self) -> int:
        return self._plan.rows

    @property
    def cols(self) -> int:
        return self._plan.cols

    @property
    def entry_bound(self) -> int:
        return self._plan.entry_bound

    @property
    def limb_bits(self) -> int:
        return self._plan.limb_bits

    @property
    def uses_blas(self) -> bool:
        return self._plan.uses_blas

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        return self._plan.matmul(stacked)

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        return self._plan.matvec(vec)

    def metadata(self) -> dict:
        return self._plan.metadata()

    def close(self) -> None:
        self._plan.close()


class ReferenceBackend:
    """Always-available single-process numpy/BLAS execution."""

    name = "reference"

    #: Timer label suffixing convention: ``kernel.lwe.matmul_batch.<name>``.
    timer_label = "lwe.matmul_batch.reference"

    @property
    def available(self) -> bool:
        return True

    def plan(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        metadata: dict | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        workers: int = 0,
    ) -> ReferencePlan:
        del workers  # single-process by definition
        if metadata is not None and limb_bits is None:
            inner = modular.StackedPlan.from_metadata(
                matrix,
                metadata,
                chunk_rows=chunk_rows,
                timer_label=self.timer_label,
            )
        else:
            if metadata is not None and entry_bound is None:
                entry_bound = int(metadata["entry_bound"])
            inner = modular.StackedPlan(
                matrix,
                q_bits,
                entry_bound=entry_bound,
                limb_bits=limb_bits,
                chunk_rows=chunk_rows,
                timer_label=self.timer_label,
            )
        return ReferencePlan(inner)
