"""Optional numba JIT backend; degrades to the reference path.

When numba is importable, the stacked product runs through a
``@njit(parallel=True)`` unsigned wraparound kernel -- the same exact
ring arithmetic as :func:`~repro.lwe.modular.matmul`, with the GIL
released and rows split across threads by ``prange``.  When numba is
absent (the common case in minimal environments; nothing is installed
at import time), the backend stays registered but *delegates to the
reference backend*, so ``--kernel-backend numba`` is always safe: same
bits, just no speedup.
"""

from __future__ import annotations

import numpy as np

from repro.lwe import modular
from repro.lwe.backends.base import PlanContextMixin
from repro.lwe.backends.reference import ReferenceBackend
from repro.obs import runtime as _obs

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:
    _numba = None

_JIT_CACHE: dict = {}


def _jit_kernel(dtype):  # pragma: no cover - requires numba
    """Build (once per dtype) the nopython wraparound matmul."""
    kernel = _JIT_CACHE.get(dtype)
    if kernel is not None:
        return kernel

    @_numba.njit(parallel=True, cache=False)
    def _matmul(matrix, stacked, out):
        for i in _numba.prange(matrix.shape[0]):
            for j in range(stacked.shape[1]):
                acc = dtype(0)
                for k in range(matrix.shape[1]):
                    acc += matrix[i, k] * stacked[k, j]
                out[i, j] = acc

    _JIT_CACHE[dtype] = _matmul
    return _matmul


class NumbaPlan(PlanContextMixin):  # pragma: no cover - requires numba
    """Ring matrix + JIT kernel; exact by unsigned wraparound."""

    backend_name = "numba"

    def __init__(self, inner: modular.StackedPlan, timer_label: str):
        self.q_bits = inner.q_bits
        self.entry_bound = inner.entry_bound
        self.limb_bits = inner.limb_bits
        self.timer_label = timer_label
        self._ring = inner.ring
        self._dtype = modular.dtype_for(self.q_bits)
        self._kernel = _jit_kernel(self._dtype)

    @property
    def rows(self) -> int:
        return self._ring.shape[0]

    @property
    def cols(self) -> int:
        return self._ring.shape[1]

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        stacked = np.asarray(stacked, dtype=self._dtype)
        if stacked.ndim != 2 or stacked.shape[0] != self.cols:
            raise ValueError(
                f"stacked ciphertexts must form a ({self.cols}, Q) matrix;"
                f" got shape {stacked.shape}"
            )
        out = np.empty((self.rows, stacked.shape[1]), dtype=self._dtype)
        with _obs.kernel_timer(self.timer_label):
            self._kernel(self._ring, stacked, out)
        return out

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        return modular.matmul(
            self._ring, np.asarray(vec).reshape(-1), self.q_bits
        )

    def metadata(self) -> dict:
        return {
            "q_bits": self.q_bits,
            "entry_bound": self.entry_bound,
            "limb_bits": self.limb_bits,
        }

    def close(self) -> None:
        pass


class NumbaBackend:
    """JIT wraparound kernel when numba exists; reference otherwise."""

    name = "numba"

    timer_label = "lwe.matmul_batch.numba"

    def __init__(self):
        self._fallback = ReferenceBackend()

    @property
    def available(self) -> bool:
        """Always schedulable -- without numba it is the reference path."""
        return True

    @property
    def jit_enabled(self) -> bool:
        """True only when numba is actually importable."""
        return _numba is not None

    def plan(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        metadata: dict | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        workers: int = 0,
    ):
        if _numba is None:
            return self._fallback.plan(
                matrix,
                q_bits,
                entry_bound=entry_bound,
                metadata=metadata,
                limb_bits=limb_bits,
                chunk_rows=chunk_rows,
                workers=workers,
            )
        if metadata is not None and limb_bits is None:  # pragma: no cover
            inner = modular.StackedPlan.from_metadata(matrix, metadata)
        else:  # pragma: no cover - requires numba
            if metadata is not None and entry_bound is None:
                entry_bound = int(metadata["entry_bound"])
            inner = modular.StackedPlan(
                matrix, q_bits, entry_bound=entry_bound, limb_bits=limb_bits
            )
        return NumbaPlan(inner, self.timer_label)  # pragma: no cover
