"""Pluggable kernel backends for the hot modular GEMM.

The registry maps backend names to :class:`KernelBackend` instances.
Selection policy (see :func:`get_backend`):

* ``"reference"`` -- the in-process limb-decomposed BLAS path.  Always
  available; the bit-identity baseline.
* ``"multiprocess"`` -- spawn-context worker pool over shared-memory
  row partitions.
* ``"numba"`` -- JIT wraparound kernel, silently the reference path
  when numba is not importable.
* ``"cnative"`` -- cffi-compiled C GEMM releasing the GIL across
  native row-partition threads; needs a C compiler once (content-
  hashed build cache), degrades to reference without one.
* ``"auto"`` -- the reference backend unless a tuned
  :class:`~repro.lwe.backends.autotune.KernelPlan` (from the precompute
  sidecar) says otherwise; resolution happens in the serving layer.

Backend choice is **data-independent**: it keys on configuration and on
public matrix geometry, never on query contents (SECURITY.md).
"""

from __future__ import annotations

import threading

from repro.lwe.backends.base import (
    BackendPlan,
    KernelBackend,
    KernelUnavailable,
    PlanContextMixin,
)
from repro.lwe.backends.cnative import CNativeBackend
from repro.lwe.backends.numba_backend import NumbaBackend
from repro.lwe.backends.reference import ReferenceBackend
from repro.lwe.backends.shm import SharedMemoryBackend

#: Name the serving layer uses for "pick for me" (resolved against the
#: sidecar's tuned plan, falling back to the reference backend).
AUTO = "auto"

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: dict = {}  # guarded-by: _REGISTRY_LOCK


def register_backend(backend: KernelBackend) -> None:
    """Add (or replace) a backend under ``backend.name``."""
    with _REGISTRY_LOCK:
        _REGISTRY[backend.name] = backend


def backend_names() -> list[str]:
    """Registered names, registration order."""
    with _REGISTRY_LOCK:
        return list(_REGISTRY)


def available_backends() -> list[str]:
    """Names whose backends report :attr:`~KernelBackend.available`."""
    with _REGISTRY_LOCK:
        backends = list(_REGISTRY.values())
    return [b.name for b in backends if b.available]


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered *and* runnable on this host.

    Unlike :func:`available_backends` this probes exactly one backend,
    so asking about ``"reference"`` does not (say) trigger a cnative
    build attempt.  Unknown names are simply unavailable.
    """
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    return backend is not None and backend.available


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by name.

    ``None`` or ``"auto"`` or ``"reference"`` return the reference
    backend (tuned auto-resolution happens in the serving layer, which
    knows about the sidecar).  An unavailable backend falls back to
    reference rather than failing -- the contract is bit-identical
    either way.  An unknown name is a hard error listing the choices.
    """
    if name is None or name == AUTO:
        name = "reference"
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
        names = list(_REGISTRY)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {names}"
        )
    if not backend.available:
        with _REGISTRY_LOCK:
            return _REGISTRY["reference"]
    return backend


register_backend(ReferenceBackend())
register_backend(SharedMemoryBackend())
register_backend(NumbaBackend())
register_backend(CNativeBackend())

from repro.lwe.backends.autotune import (  # noqa: E402  (needs registry)
    KernelPlan,
    tune_index,
    tune_matrix,
)

__all__ = [
    "AUTO",
    "BackendPlan",
    "CNativeBackend",
    "KernelBackend",
    "KernelPlan",
    "KernelUnavailable",
    "PlanContextMixin",
    "NumbaBackend",
    "ReferenceBackend",
    "SharedMemoryBackend",
    "available_backends",
    "backend_available",
    "backend_names",
    "get_backend",
    "register_backend",
    "tune_index",
    "tune_matrix",
]
