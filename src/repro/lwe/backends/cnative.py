"""Native compiled backend: a cffi C GEMM with GIL-released threads.

The multiprocess backend escapes the GIL by paying for processes:
spawn latency at plan build, one ``SharedMemory`` round trip per
batch, and a full copy of the stacked ciphertexts in and the answer
rows out.  This backend escapes the GIL for free instead: the stacked
product runs in a small C extension (built once with cffi in API
mode) that releases the GIL for the whole call and row-partitions the
GEMM across *native* threads -- same matrix, same address space, zero
copies per batch.

Exactness is by construction, on either of two code paths:

* **Limb path** (``limb_bits > 0``, the serving regime).  The same
  decomposition contract as :class:`~repro.lwe.modular.StackedPlan`:
  the matrix is read through its *centered* signed view, each stacked
  ciphertext column is split into ``limb_bits``-wide limbs, and each
  limb product accumulates in ``int64``.  The limb width was derived
  (or validated) by ``StackedPlan`` so that every partial sum stays
  strictly below 2^53 -- comfortably inside ``int64`` -- so every
  intermediate is the same exact integer the reference float64 dgemm
  produces, and the wraparound recombination ``out += (uint)acc <<
  shift`` is the same mod-2^k arithmetic ``limb_product`` performs.
  Bit-identity therefore does not depend on summation order, the row
  partition, or the thread count.
* **Integer path** (``limb_bits == 0``, entries too large for exact
  limbs).  A direct ``uint32``/``uint64`` wraparound GEMM -- C
  unsigned arithmetic *is* reduction mod 2^k, exactly like
  :func:`~repro.lwe.modular.matmul`.

The extension is compiled ahead of time, not at import: the generated
C is content-hashed together with the cffi/python/platform fingerprint
and cached (``REPRO_CNATIVE_CACHE`` overrides the location), so every
process after the first just ``dlopen``-s the cached shared object.
A host without a C compiler -- or a failing build -- degrades to
``available == False``; ``get_backend("cnative")`` then hands back the
reference backend and serving continues bit-identically, never an
import error (the CI "compiler-absent" job proves this path).
"""

from __future__ import annotations

import hashlib
import logging
import os
import shutil
import sys
import sysconfig
import threading
from pathlib import Path

import numpy as np

from repro.lwe import modular
from repro.lwe.backends.base import KernelUnavailable, PlanContextMixin
from repro.obs import runtime as _obs

logger = logging.getLogger(__name__)

#: Default native thread count: every core, capped so a giant host does
#: not oversubscribe the memory bus on one skinny GEMM.
DEFAULT_THREADS = max(1, min(8, os.cpu_count() or 1))

#: Environment switch forcing the backend unavailable (CI's
#: compiler-absent job and the fallback tests set it).
DISABLE_ENV = "REPRO_CNATIVE_DISABLE"

#: Environment override for the build-cache directory.
CACHE_ENV = "REPRO_CNATIVE_CACHE"

_CDEF = """
int tiptoe_gemm(int q_bits, int limb_bits,
                const void *matrix, const void *stacked, void *out,
                int64_t rows, int64_t cols, int64_t batch, int threads);
"""

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <pthread.h>

typedef struct {
    int q_bits;      /* 32 or 64 */
    int limb_bits;   /* 0 -> direct wraparound integer path */
    const void *matrix;
    const void *stacked;
    void *out;
    int64_t cols;
    int64_t batch;
    int64_t lo;      /* this job's row range [lo, hi) */
    int64_t hi;
    int status;      /* 0 ok; 1 allocation failure */
} gemm_job;

/* Direct wraparound paths: C unsigned arithmetic is exact mod 2^k. */

static void rows_int32(gemm_job *job)
{
    const uint32_t *m = (const uint32_t *)job->matrix;
    const uint32_t *b = (const uint32_t *)job->stacked;
    uint32_t *out = (uint32_t *)job->out;
    int64_t cols = job->cols, batch = job->batch, i, k, j;
    for (i = job->lo; i < job->hi; i++) {
        const uint32_t *row = m + i * cols;
        uint32_t *orow = out + i * batch;
        memset(orow, 0, (size_t)batch * sizeof(uint32_t));
        for (k = 0; k < cols; k++) {
            uint32_t a = row[k];
            const uint32_t *brow = b + k * batch;
            for (j = 0; j < batch; j++)
                orow[j] += a * brow[j];
        }
    }
}

static void rows_int64(gemm_job *job)
{
    const uint64_t *m = (const uint64_t *)job->matrix;
    const uint64_t *b = (const uint64_t *)job->stacked;
    uint64_t *out = (uint64_t *)job->out;
    int64_t cols = job->cols, batch = job->batch, i, k, j;
    for (i = job->lo; i < job->hi; i++) {
        const uint64_t *row = m + i * cols;
        uint64_t *orow = out + i * batch;
        memset(orow, 0, (size_t)batch * sizeof(uint64_t));
        for (k = 0; k < cols; k++) {
            uint64_t a = row[k];
            const uint64_t *brow = b + k * batch;
            for (j = 0; j < batch; j++)
                orow[j] += a * brow[j];
        }
    }
}

/* Limb paths: StackedPlan's decomposition with int64 accumulation.
 * The caller guarantees (via exact_limb_bits) that every partial sum
 * of centered_entry * limb over cols terms is < 2^53 in magnitude, so
 * the int64 accumulator never overflows and every intermediate equals
 * the reference dgemm's exactly-representable float64 integer. */

static void rows_limb32(gemm_job *job)
{
    const int32_t *m = (const int32_t *)job->matrix;
    const uint32_t *b = (const uint32_t *)job->stacked;
    uint32_t *out = (uint32_t *)job->out;
    int64_t cols = job->cols, batch = job->batch, i, k, j;
    int lb = job->limb_bits;
    int num_limbs = (32 + lb - 1) / lb;
    uint32_t mask = (lb >= 32) ? 0xffffffffu : ((1u << lb) - 1u);
    int64_t *acc = (int64_t *)malloc((size_t)batch * sizeof(int64_t));
    int l;
    if (acc == NULL) {
        job->status = 1;
        return;
    }
    for (i = job->lo; i < job->hi; i++) {
        const int32_t *row = m + i * cols;
        uint32_t *orow = out + i * batch;
        memset(orow, 0, (size_t)batch * sizeof(uint32_t));
        for (l = 0; l < num_limbs; l++) {
            int shift = l * lb;
            memset(acc, 0, (size_t)batch * sizeof(int64_t));
            for (k = 0; k < cols; k++) {
                int64_t a = (int64_t)row[k];
                const uint32_t *brow = b + k * batch;
                for (j = 0; j < batch; j++)
                    acc[j] += a * (int64_t)((brow[j] >> shift) & mask);
            }
            for (j = 0; j < batch; j++)
                orow[j] += (uint32_t)((uint64_t)acc[j] << shift);
        }
    }
    free(acc);
}

static void rows_limb64(gemm_job *job)
{
    const int64_t *m = (const int64_t *)job->matrix;
    const uint64_t *b = (const uint64_t *)job->stacked;
    uint64_t *out = (uint64_t *)job->out;
    int64_t cols = job->cols, batch = job->batch, i, k, j;
    int lb = job->limb_bits;
    int num_limbs = (64 + lb - 1) / lb;
    uint64_t mask =
        (lb >= 64) ? ~(uint64_t)0 : (((uint64_t)1 << lb) - (uint64_t)1);
    int64_t *acc = (int64_t *)malloc((size_t)batch * sizeof(int64_t));
    int l;
    if (acc == NULL) {
        job->status = 1;
        return;
    }
    for (i = job->lo; i < job->hi; i++) {
        const int64_t *row = m + i * cols;
        uint64_t *orow = out + i * batch;
        memset(orow, 0, (size_t)batch * sizeof(uint64_t));
        for (l = 0; l < num_limbs; l++) {
            int shift = l * lb;
            memset(acc, 0, (size_t)batch * sizeof(int64_t));
            for (k = 0; k < cols; k++) {
                int64_t a = row[k];
                const uint64_t *brow = b + k * batch;
                for (j = 0; j < batch; j++)
                    acc[j] += a * (int64_t)((brow[j] >> shift) & mask);
            }
            for (j = 0; j < batch; j++)
                orow[j] += ((uint64_t)acc[j]) << shift;
        }
    }
    free(acc);
}

static void run_range(gemm_job *job)
{
    if (job->limb_bits > 0) {
        if (job->q_bits == 32)
            rows_limb32(job);
        else
            rows_limb64(job);
    } else {
        if (job->q_bits == 32)
            rows_int32(job);
        else
            rows_int64(job);
    }
}

static void *thread_entry(void *arg)
{
    run_range((gemm_job *)arg);
    return NULL;
}

int tiptoe_gemm(int q_bits, int limb_bits,
                const void *matrix, const void *stacked, void *out,
                int64_t rows, int64_t cols, int64_t batch, int threads)
{
    gemm_job *jobs;
    pthread_t *tids;
    char *started;
    int t, status = 0;
    if (rows <= 0 || batch <= 0)
        return 0;
    if (threads < 1)
        threads = 1;
    if ((int64_t)threads > rows)
        threads = (int)rows;
    if (threads > 64)
        threads = 64;
    if (threads == 1) {
        gemm_job job;
        job.q_bits = q_bits;
        job.limb_bits = limb_bits;
        job.matrix = matrix;
        job.stacked = stacked;
        job.out = out;
        job.cols = cols;
        job.batch = batch;
        job.lo = 0;
        job.hi = rows;
        job.status = 0;
        run_range(&job);
        return job.status;
    }
    jobs = (gemm_job *)calloc((size_t)threads, sizeof(gemm_job));
    tids = (pthread_t *)calloc((size_t)threads, sizeof(pthread_t));
    started = (char *)calloc((size_t)threads, 1);
    if (jobs == NULL || tids == NULL || started == NULL) {
        free(jobs);
        free(tids);
        free(started);
        return 1;
    }
    for (t = 0; t < threads; t++) {
        jobs[t].q_bits = q_bits;
        jobs[t].limb_bits = limb_bits;
        jobs[t].matrix = matrix;
        jobs[t].stacked = stacked;
        jobs[t].out = out;
        jobs[t].cols = cols;
        jobs[t].batch = batch;
        jobs[t].lo = rows * t / threads;
        jobs[t].hi = rows * (t + 1) / threads;
        jobs[t].status = 0;
    }
    for (t = 0; t < threads; t++) {
        if (jobs[t].hi <= jobs[t].lo)
            continue;
        if (pthread_create(&tids[t], NULL, thread_entry, &jobs[t]) == 0)
            started[t] = 1;
        else
            run_range(&jobs[t]); /* degrade to inline, still exact */
    }
    for (t = 0; t < threads; t++)
        if (started[t])
            pthread_join(tids[t], NULL);
    for (t = 0; t < threads; t++)
        status |= jobs[t].status;
    free(jobs);
    free(tids);
    free(started);
    return status;
}
"""

_BUILD_LOCK = threading.Lock()


def _module_key() -> str:
    """Content hash naming one build: source + toolchain fingerprint."""
    import cffi

    payload = "\n".join(
        [
            _CDEF,
            _SOURCE,
            cffi.__version__,
            sys.implementation.cache_tag or sys.version,
            sysconfig.get_platform(),
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _cache_root() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    import tempfile

    return Path(tempfile.gettempdir()) / f"repro-cnative-{uid}"


def _compiler_path() -> str | None:
    """The C compiler the build would use, or None if there is none.

    ``CC`` (what distutils/cffi honor) wins when set -- even if it
    points at nothing, because that is what the build would fail with.
    """
    cc = os.environ.get("CC")
    if cc is not None:
        return shutil.which(cc.split()[0]) if cc.strip() else None
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found is not None:
            return found
    return None


def _find_built(out_dir: Path, module_name: str) -> Path | None:
    if not out_dir.is_dir():
        return None
    for path in sorted(out_dir.glob(f"{module_name}*")):
        if path.suffix in (".so", ".pyd", ".dylib"):
            return path
    return None


def _load_module(module_name: str, so_path: Path):
    import importlib.util

    spec = importlib.util.spec_from_file_location(module_name, str(so_path))
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise KernelUnavailable(f"cannot load built kernel {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_native_module(cache_root: Path | str | None = None):
    """Compile (or load from the content-hashed cache) the extension.

    Returns ``(ffi, lib)``.  Raises :class:`KernelUnavailable` -- never
    anything harsher -- when the environment cannot produce a working
    extension: cffi missing, no C compiler, or a failing build.
    """
    if os.environ.get(DISABLE_ENV):
        raise KernelUnavailable(f"cnative backend disabled via {DISABLE_ENV}")
    try:
        import cffi
    except ImportError as exc:  # pragma: no cover - cffi is baked in
        raise KernelUnavailable("cffi is not installed") from exc

    key = _module_key()
    module_name = f"_tiptoe_cnative_{key}"
    root = Path(cache_root) if cache_root is not None else _cache_root()
    out_dir = root / key
    with _BUILD_LOCK:
        so_path = _find_built(out_dir, module_name)
        if so_path is None:
            if _compiler_path() is None:
                raise KernelUnavailable(
                    "no C compiler on PATH (set CC or install cc/gcc/clang);"
                    " the reference backend serves identically, just slower"
                )
            ffibuilder = cffi.FFI()
            ffibuilder.cdef(_CDEF)
            ffibuilder.set_source(
                module_name,
                _SOURCE,
                extra_compile_args=["-O3", "-pthread"],
                extra_link_args=["-pthread"],
            )
            # Build in a per-process scratch dir, then publish the
            # artifact with an atomic rename: concurrent builders race
            # benignly (same content hash -> same bits).
            build_dir = out_dir / f"build-{os.getpid()}"
            try:
                out_dir.mkdir(parents=True, exist_ok=True)
                built = ffibuilder.compile(tmpdir=str(build_dir), verbose=False)
                so_path = out_dir / Path(built).name
                os.replace(built, so_path)
            except KernelUnavailable:
                raise
            except Exception as exc:
                raise KernelUnavailable(
                    f"cnative build failed ({type(exc).__name__}: {exc})"
                ) from exc
            finally:
                shutil.rmtree(build_dir, ignore_errors=True)
        try:
            module = _load_module(module_name, so_path)
        except KernelUnavailable:
            raise
        except Exception as exc:
            raise KernelUnavailable(
                f"cached cnative kernel failed to load"
                f" ({type(exc).__name__}: {exc}); delete {out_dir} to rebuild"
            ) from exc
    return module.ffi, module.lib


class CNativePlan(PlanContextMixin):
    """One long-lived matrix staged for the native threaded kernel.

    Holds a C-contiguous copy of the ring matrix (and, on the limb
    path, its centered signed *view* -- same memory, zero extra bytes)
    plus the dlopen-ed library.  ``matmul`` makes exactly one C call;
    cffi releases the GIL for its whole duration, and the C side fans
    the row range across ``threads`` pthreads.
    """

    backend_name = "cnative"

    def __init__(
        self,
        inner: modular.StackedPlan,
        *,
        ffi,
        lib,
        threads: int,
        timer_label: str,
    ):
        self.q_bits = inner.q_bits
        self.entry_bound = inner.entry_bound
        self.limb_bits = inner.limb_bits
        self.threads = max(1, int(threads))
        self.timer_label = timer_label
        self._ffi = ffi
        self._lib = lib
        self._dtype = modular.dtype_for(self.q_bits)
        self._ring = np.ascontiguousarray(inner.ring)
        # The centered signed view aliases the ring buffer: the C limb
        # kernel reads the same bytes through int32_t*/int64_t*.
        self._centered = (
            modular.centered(self._ring, self.q_bits)
            if self.limb_bits > 0
            else None
        )
        self._shape = self._ring.shape

    @property
    def rows(self) -> int:
        return self._shape[0]

    @property
    def cols(self) -> int:
        return self._shape[1]

    @property
    def uses_limbs(self) -> bool:
        """True when the exact int64 limb path is active."""
        return self.limb_bits > 0

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        """The exact stacked product, one GIL-released C call."""
        if self._ring is None:
            raise KernelUnavailable("cnative plan is closed")
        stacked = np.asarray(stacked, dtype=self._dtype)
        if stacked.ndim != 2:
            raise ValueError(
                f"stacked ciphertexts must form a (cols, Q) matrix;"
                f" got shape {stacked.shape}"
            )
        if stacked.shape[0] != self.cols:
            raise ValueError(
                f"stacked ciphertexts have {stacked.shape[0]} rows,"
                f" expected {self.cols}"
            )
        batch = stacked.shape[1]
        if batch == 0 or self.rows == 0 or self.cols == 0:
            return np.zeros((self.rows, batch), dtype=self._dtype)
        stacked = np.ascontiguousarray(stacked)
        matrix = self._centered if self.limb_bits > 0 else self._ring
        out = np.empty((self.rows, batch), dtype=self._dtype)
        ffi = self._ffi
        with _obs.kernel_timer(self.timer_label):
            status = self._lib.tiptoe_gemm(
                self.q_bits,
                self.limb_bits,
                ffi.from_buffer(matrix),
                ffi.from_buffer(stacked),
                ffi.from_buffer(out, require_writable=True),
                self.rows,
                self.cols,
                batch,
                self.threads,
            )
        if status != 0:  # pragma: no cover - allocation failure
            raise KernelUnavailable("cnative kernel ran out of memory")
        return out

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        """Single-query product on the in-process integer path.

        One matrix-vector scan does not amortize a thread fan-out;
        like the other backends it runs straight on the ring matrix.
        """
        if self._ring is None:
            raise KernelUnavailable("cnative plan is closed")
        return modular.matmul(
            self._ring, np.asarray(vec).reshape(-1), self.q_bits
        )

    def metadata(self) -> dict:
        """Serializable plan parameters -- same shape as the reference."""
        return {
            "q_bits": self.q_bits,
            "entry_bound": self.entry_bound,
            "limb_bits": self.limb_bits,
        }

    def close(self) -> None:
        """Drop the staged matrix copies.  Idempotent."""
        self._ring = None
        self._centered = None


class CNativeBackend:
    """cffi-compiled C GEMM over native threads; builds lazily, once.

    The first ``available`` / ``plan`` call attempts the cached build
    and memoizes the outcome -- success or the human-readable reason it
    cannot run here (``build_error``).  Import of this module never
    compiles anything and never fails.
    """

    name = "cnative"

    timer_label = "lwe.matmul_batch.cnative"

    def __init__(self, cache_root: Path | str | None = None):
        self._cache_root = cache_root
        self._lock = threading.Lock()
        self._attempted = False  # guarded-by: _lock
        self._ffi = None  # guarded-by: _lock
        self._lib = None  # guarded-by: _lock
        self._error: str | None = None  # guarded-by: _lock

    def _load(self):
        with self._lock:
            if not self._attempted:
                self._attempted = True
                try:
                    self._ffi, self._lib = build_native_module(
                        self._cache_root
                    )
                except KernelUnavailable as exc:
                    self._error = str(exc)
                    logger.warning(
                        "cnative kernel backend unavailable (%s);"
                        " falling back to the reference backend",
                        exc,
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    self._error = f"{type(exc).__name__}: {exc}"
                    logger.warning(
                        "cnative kernel backend unavailable (%s);"
                        " falling back to the reference backend",
                        self._error,
                    )
            return self._ffi, self._lib, self._error

    @property
    def available(self) -> bool:
        """True once the extension built (or loaded from cache)."""
        return self._load()[1] is not None

    @property
    def build_error(self) -> str | None:
        """Why the backend is unavailable here, or None when it runs."""
        return self._load()[2]

    def plan(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        metadata: dict | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        workers: int = 0,
    ) -> CNativePlan:
        ffi, lib, error = self._load()
        if lib is None:
            raise KernelUnavailable(
                f"cnative backend unavailable: {error}"
            )
        # chunk_rows is a BLAS-tiling knob; the C kernel streams rows
        # and ignores it (the seam contract: unused knobs are no-ops).
        if metadata is not None and limb_bits is None:
            inner = modular.StackedPlan.from_metadata(matrix, metadata)
        else:
            if metadata is not None and entry_bound is None:
                entry_bound = int(metadata["entry_bound"])
            inner = modular.StackedPlan(
                matrix, q_bits, entry_bound=entry_bound, limb_bits=limb_bits
            )
        try:
            return CNativePlan(
                inner,
                ffi=ffi,
                lib=lib,
                threads=workers or DEFAULT_THREADS,
                timer_label=self.timer_label,
            )
        finally:
            inner.close()
