"""Wrap-around matrix arithmetic over Z_{2^32} and Z_{2^64}.

Tiptoe's inner encryption layer works modulo a power-of-two ciphertext
modulus q (2^64 for the ranking service, 2^32 for the URL service;
Appendix C).  Representing ring elements as ``uint32`` / ``uint64``
NumPy arrays makes reduction modulo q free: C-style unsigned integer
arithmetic wraps exactly as required, including inside ``matmul``
accumulators, so a single integer matrix product *is* the homomorphic
evaluation.

All helpers here take and return arrays of the ``dtype`` matching the
modulus; they never silently up-cast.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.obs import runtime as _obs

#: Ciphertext moduli supported by the inner layer, keyed by bit width.
SUPPORTED_Q_BITS = (32, 64)

_DTYPES = {32: np.uint32, 64: np.uint64}
_SIGNED_DTYPES = {32: np.int32, 64: np.int64}


def dtype_for(q_bits: int) -> type:
    """Return the unsigned NumPy dtype representing Z_{2^q_bits}."""
    try:
        return _DTYPES[q_bits]
    except KeyError:
        raise ValueError(
            f"unsupported modulus 2^{q_bits}; supported: {SUPPORTED_Q_BITS}"
        ) from None


def signed_dtype_for(q_bits: int) -> type:
    """Return the signed NumPy dtype for centered representatives."""
    try:
        return _SIGNED_DTYPES[q_bits]
    except KeyError:
        raise ValueError(
            f"unsupported modulus 2^{q_bits}; supported: {SUPPORTED_Q_BITS}"
        ) from None


def to_ring(values: np.ndarray, q_bits: int) -> np.ndarray:
    """Reduce arbitrary integers into Z_{2^q_bits} (non-negative reps).

    Accepts signed input; negative entries map to their additive
    inverses mod q, matching the centered-representative convention of
    Appendix B.1.
    """
    dtype = dtype_for(q_bits)
    arr = np.asarray(values)
    if arr.dtype == dtype:
        return arr
    # Cast through a signed/unsigned view wraps correctly for any
    # integer input; object/float inputs are reduced explicitly first.
    if arr.dtype.kind not in "iu":
        q = 1 << q_bits
        arr = np.asarray(np.mod(arr, q), dtype=object)
        return np.array([int(x) for x in arr.ravel()], dtype=dtype).reshape(
            arr.shape
        )
    return arr.astype(dtype, casting="unsafe")


def centered(values: np.ndarray, q_bits: int) -> np.ndarray:
    """Map Z_q elements to centered representatives in [-q/2, q/2)."""
    dtype = dtype_for(q_bits)
    arr = np.asarray(values, dtype=dtype)
    return arr.view(signed_dtype_for(q_bits)) if arr.flags.c_contiguous else (
        np.ascontiguousarray(arr).view(signed_dtype_for(q_bits))
    )


def matmul(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Matrix product over Z_{2^q_bits}.

    The accumulator wraps modulo q by construction, so this is an exact
    ring operation regardless of operand magnitudes.
    """
    dtype = dtype_for(q_bits)
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    # Kernel timer: the ranking/URL scans bottom out here.  Disabled
    # observability costs one global read + branch (see repro.obs).
    with _obs.kernel_timer("lwe.matmul"):
        with np.errstate(over="ignore"):
            return a @ b


def matvec(a: np.ndarray, v: np.ndarray, q_bits: int) -> np.ndarray:
    """Matrix-vector product over Z_{2^q_bits}."""
    return matmul(a, v.reshape(-1), q_bits)


def add(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Elementwise sum over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) + np.asarray(b, dtype=dtype)


def sub(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Elementwise difference over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) - np.asarray(b, dtype=dtype)


def scale(a: np.ndarray, c: int, q_bits: int) -> np.ndarray:
    """Scalar multiple over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) * dtype(c % (1 << q_bits))


def round_to_message(noisy: np.ndarray, q_bits: int, p: int) -> np.ndarray:
    """Round Z_q values to the nearest multiple of Delta = q // p.

    This is the non-linear step ``f`` of SimplePIR decryption
    (Appendix A): given ``Delta * m + e`` with ``|e| < Delta / 2``,
    recover ``m mod p``.  Requires ``p`` to divide ``2^q_bits`` exactly
    (both are powers of two in the operational configuration), so the
    encoding has no ``m * epsilon`` error term.
    """
    q = 1 << q_bits
    if q % p != 0:
        raise ValueError(f"plaintext modulus {p} must divide q = 2^{q_bits}")
    delta = q // p
    dtype = dtype_for(q_bits)
    noisy = np.asarray(noisy, dtype=dtype)
    with np.errstate(over="ignore"):
        shifted = noisy + dtype(delta // 2)
    # Shifted division by a power of two is exact in the unsigned ring.
    return ((shifted >> dtype(int(delta).bit_length() - 1)) % dtype(p)).astype(
        np.int64
    )


def encode_message(m: np.ndarray, q_bits: int, p: int) -> np.ndarray:
    """Scale plaintexts in Z_p up to Z_q: ``m -> Delta * m``."""
    q = 1 << q_bits
    if q % p != 0:
        raise ValueError(f"plaintext modulus {p} must divide q = 2^{q_bits}")
    delta = q // p
    dtype = dtype_for(q_bits)
    m = np.asarray(m)
    m_red = to_ring(np.mod(m, p), q_bits)
    with np.errstate(over="ignore"):
        return m_red * dtype(delta)


#: Smallest ciphertext limb width for which the BLAS path is worthwhile;
#: below this the limb count makes dgemm slower than the native matmul.
MIN_LIMB_BITS = 16

#: float64 represents every integer of magnitude below 2^53 exactly.
_FLOAT_EXACT_BITS = 53


def exact_limb_bits(bound: int, cols: int, q_bits: int) -> int:
    """Widest limb for which the float64 partial sums stay exact.

    Every partial sum of ``M_centered @ limb`` is bounded by
    ``bound * (2^limb_bits - 1) * cols``; the returned width is the
    largest one keeping that strictly below 2^53, clamped to
    ``q_bits``.  Returns 0 when no positive width is exact-safe.  Any
    *smaller* positive width is also exact (the bound only shrinks), so
    tuned plans may narrow limbs freely without losing bit-identity.
    """
    bound = int(bound)
    cols = int(cols)
    limb_bits = min(
        q_bits,
        _FLOAT_EXACT_BITS - 1 - bound.bit_length() - max(cols, 1).bit_length(),
    )
    while limb_bits > 0 and (
        bound * ((1 << limb_bits) - 1) * cols >= 1 << _FLOAT_EXACT_BITS
    ):
        limb_bits -= 1
    return max(limb_bits, 0)


def limb_product(
    float_matrix: np.ndarray,
    stacked: np.ndarray,
    limb_bits: int,
    q_bits: int,
    *,
    chunk_rows: int = 0,
) -> np.ndarray:
    """The exact limb-decomposed product ``M @ B`` over Z_{2^q_bits}.

    ``float_matrix`` is the centered float64 copy of ``M`` (every entry
    within the bound that derived ``limb_bits``); ``stacked`` is the
    (cols, Q) ciphertext stack.  This is the one shared hot kernel:
    :meth:`StackedPlan.matmul` and every out-of-process backend worker
    call it on their row slice, so bit-identity across backends holds
    by construction -- all intermediate sums are exactly representable
    integers, making the result independent of summation order and of
    any row partition (``chunk_rows`` only tiles the dgemm).
    """
    num_limbs = -(-q_bits // limb_bits)
    rows = float_matrix.shape[0]
    wide = stacked.astype(np.uint64)  # lossless widening for uint32
    mask = np.uint64((1 << limb_bits) - 1)
    shifts = [np.uint64(limb_bits * j) for j in range(num_limbs)]
    limbs = [((wide >> shift) & mask).astype(np.float64) for shift in shifts]
    acc = np.zeros((rows, stacked.shape[1]), dtype=np.uint64)
    step = chunk_rows if 0 < chunk_rows < rows else rows
    with np.errstate(over="ignore"):
        for lo in range(0, rows, step):
            block = float_matrix[lo : lo + step]
            out = acc[lo : lo + step]
            for shift, limb in zip(shifts, limbs):
                exact = block @ limb  # every partial sum < 2^53
                # tiptoe-lint: disable=dtype-signed-cast -- exact holds signed integers below 2^53; int64 view then uint64 is the value mod 2^64
                part = exact.astype(np.int64).view(np.uint64)
                out += part << shift
    # Truncation to uint32 is reduction mod 2^32 (2^32 | 2^64).
    return acc if q_bits == 64 else acc.astype(dtype_for(q_bits))


class StackedPlan:
    """Preprocessed state for exact stacked products ``M @ B`` over Z_{2^k}.

    Stacking Q query ciphertexts into the columns of one matrix ``B``
    turns Q matrix-vector scans over ``M`` into a single matrix-matrix
    product -- the database is streamed from memory once per batch
    instead of once per query.  When the *centered* entries of ``M``
    are small (always true for the ranking matrix, whose entries are
    quantized embeddings, and for the packed URL database, whose
    entries are digits mod p), the product is additionally routed
    through float64 BLAS: each ciphertext column is split into limbs of
    ``limb_bits`` bits chosen so that every partial sum of
    ``M_centered @ limb`` stays strictly below 2^53 in magnitude.
    Every term and every intermediate sum of each dgemm is then an
    exactly representable integer, so the limbs recombine with
    wraparound shifts into the exact mod-2^k result.  Column i of the
    output is bit-identical to ``matvec(M, B[:, i], q_bits)`` whichever
    path runs.

    Matrices whose centered entries are too large for an exact limb
    split fall back to the native unsigned integer matmul (also exact).
    The plan is message-independent -- it depends only on ``M``, like
    the SimplePIR hint -- so it is computed once per long-lived matrix;
    the float64 copy costs one extra 8-byte word per entry.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        q_bits: int,
        *,
        entry_bound: int | None = None,
        limb_bits: int | None = None,
        chunk_rows: int = 0,
        timer_label: str = "lwe.matmul_batch",
    ):
        self.q_bits = q_bits
        self.ring = to_ring(np.asarray(matrix), q_bits)
        if self.ring.ndim != 2:
            raise ValueError("a stacked plan needs a 2-D matrix")
        _, cols = self.ring.shape
        if entry_bound is None:
            signed = centered(self.ring, q_bits)
            if signed.size:
                # Python-int bound: abs() of the most negative int64 would
                # overflow inside numpy, so take both extremes exactly.
                bound = max(-int(signed.min()), int(signed.max()))
            else:
                bound = 0
        else:
            # A caller-supplied bound (e.g. from the precompute sidecar)
            # skips the full-matrix scan.  Any upper bound on the true
            # centered magnitude is exact-safe: the limb width below only
            # shrinks when the bound grows.
            bound = int(entry_bound)
            if bound < 0:
                raise ValueError("entry_bound must be non-negative")
        self.entry_bound = bound
        derived = exact_limb_bits(bound, cols, q_bits)
        if derived >= MIN_LIMB_BITS:
            self.limb_bits = derived
            if limb_bits is not None:
                # A tuned override may only *narrow* the limbs -- any
                # width at or below the derived maximum stays exact.
                self.limb_bits = max(MIN_LIMB_BITS, min(int(limb_bits), derived))
        else:
            self.limb_bits = 0
        if chunk_rows < 0:
            raise ValueError("chunk_rows must be non-negative")
        self.chunk_rows = int(chunk_rows)
        self.timer_label = timer_label
        # The float64 limb copy is staged lazily on the first stacked
        # product, so plans serving only matrix-vector traffic never pay
        # the extra 8-byte word per entry.
        self._float = None

    @property
    def uses_blas(self) -> bool:
        """True when the exact float64 limb path is active."""
        return self.limb_bits > 0

    def _staged_float(self) -> np.ndarray:
        """The centered float64 copy, built on first use and cached.

        Benign race under concurrent first calls: both threads compute
        the same array and either assignment is correct.
        """
        if self._float is None:
            # tiptoe-lint: disable=dtype-signed-cast -- the BLAS fast path runs on the centered representatives; exactness is guaranteed by the limb-width bound in __init__
            self._float = centered(self.ring, self.q_bits).astype(np.float64)
        return self._float

    def metadata(self) -> dict:
        """Serializable plan parameters (everything but the matrix).

        Together with the matrix these reconstruct the plan without the
        entry-bound scan; persisted in the ``repro.index/v2`` precompute
        sidecar.
        """
        return {
            "q_bits": self.q_bits,
            "entry_bound": self.entry_bound,
            "limb_bits": self.limb_bits,
        }

    @classmethod
    def from_metadata(
        cls, matrix: np.ndarray, meta: dict, **kwargs
    ) -> "StackedPlan":
        """Rebuild a plan from :meth:`metadata`, skipping the scan.

        The derived limb width must match the recorded one -- a
        mismatch means the metadata does not describe this matrix.
        Extra keyword arguments (``chunk_rows``, ``timer_label``) pass
        through to the constructor.
        """
        plan = cls(
            matrix,
            int(meta["q_bits"]),
            entry_bound=int(meta["entry_bound"]),
            **kwargs,
        )
        if plan.limb_bits != int(meta["limb_bits"]):
            raise ValueError(
                f"plan metadata mismatch: derived limb_bits"
                f" {plan.limb_bits}, recorded {meta['limb_bits']}"
            )
        return plan

    @property
    def rows(self) -> int:
        return self.ring.shape[0]

    @property
    def cols(self) -> int:
        return self.ring.shape[1]

    def matmul(self, stacked: np.ndarray) -> np.ndarray:
        """The exact stacked product ``M @ B`` in Z_{2^q_bits}.

        ``stacked`` has shape (cols, Q): one query ciphertext per
        column.  Returns the (rows, Q) evaluated columns.
        """
        dtype = dtype_for(self.q_bits)
        stacked = np.asarray(stacked, dtype=dtype)
        if stacked.ndim != 2:
            raise ValueError(
                f"stacked ciphertexts must form a (cols, Q) matrix;"
                f" got shape {stacked.shape}"
            )
        if stacked.shape[0] != self.cols:
            raise ValueError(
                f"stacked ciphertexts have {stacked.shape[0]} rows,"
                f" expected {self.cols}"
            )
        if self.limb_bits == 0:
            return matmul(self.ring, stacked, self.q_bits)
        with _obs.kernel_timer(self.timer_label):
            return limb_product(
                self._staged_float(),
                stacked,
                self.limb_bits,
                self.q_bits,
                chunk_rows=self.chunk_rows,
            )

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        """The exact single-query product ``M @ v`` in Z_{2^q_bits}.

        Runs on the native integer path -- one matrix-vector product
        needs no limb staging -- and never triggers the float64 copy,
        so plans on the single-query path stay as cheap as the bare
        ring matrix.
        """
        return matmul(self.ring, np.asarray(vec).reshape(-1), self.q_bits)

    def close(self) -> None:
        """Release the staged float copy.  Kernel-backend plans share
        this interface; for the in-process plan there is nothing else
        to tear down and the plan stays usable (staging is lazy)."""
        self._float = None


#: How many one-shot plans :func:`stacked_matmul` keeps warm.  Small on
#: purpose: long-lived matrices belong in an explicit plan (or a kernel
#: backend); the cache only de-duplicates repeated convenience calls.
PLAN_CACHE_SIZE = 8

_plan_cache_lock = threading.Lock()
#: guarded-by: _plan_cache_lock
_plan_cache: OrderedDict = OrderedDict()
#: guarded-by: _plan_cache_lock
_plan_cache_stats = {"hits": 0, "misses": 0, "evictions": 0}


def _content_key(ring: np.ndarray, q_bits: int) -> tuple:
    """Cache key: content digest + shape + modulus.

    Keyed on bytes rather than ``id()`` so a caller mutating or
    reallocating an equal matrix still hits, and a reused address with
    different contents never aliases a stale plan.
    """
    digest = hashlib.sha256(np.ascontiguousarray(ring).tobytes()).digest()
    return (digest, ring.shape, q_bits)


def plan_cache_stats() -> dict:
    """Hit/miss counters of the one-shot plan cache (for tests/bench)."""
    with _plan_cache_lock:
        return dict(_plan_cache_stats)


def clear_plan_cache() -> None:
    """Empty the one-shot plan cache and reset its counters.

    Cached plans are closed on the way out -- same discipline as LRU
    eviction -- so backend plans holding real resources release them.
    """
    with _plan_cache_lock:
        dropped = list(_plan_cache.values())
        _plan_cache.clear()
        _plan_cache_stats["hits"] = 0
        _plan_cache_stats["misses"] = 0
        _plan_cache_stats["evictions"] = 0
    for plan in dropped:
        plan.close()


def stacked_matmul(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """One-shot exact stacked product over Z_{2^q_bits}.

    Column i of the result is bit-identical to ``matvec(a, b[:, i],
    q_bits)``.  Repeated calls on the same matrix hit a small LRU keyed
    on the matrix's content digest, so the entry-bound scan and float64
    staging are paid once, not per call.  Long-lived matrices should
    still build a :class:`StackedPlan` (or a kernel-backend plan) once
    explicitly -- the cache is a convenience, not a lifecycle.
    """
    ring = to_ring(np.asarray(a), q_bits)
    if ring.ndim != 2:
        raise ValueError("a stacked plan needs a 2-D matrix")
    key = _content_key(ring, q_bits)
    with _plan_cache_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _plan_cache.move_to_end(key)
            _plan_cache_stats["hits"] += 1
    if plan is None:
        # Build outside the lock: plan construction scans the matrix.
        plan = StackedPlan(ring, q_bits)
        evicted = []
        with _plan_cache_lock:
            _plan_cache_stats["misses"] += 1
            _plan_cache[key] = plan
            _plan_cache.move_to_end(key)
            while len(_plan_cache) > PLAN_CACHE_SIZE:
                evicted.append(_plan_cache.popitem(last=False)[1])
                _plan_cache_stats["evictions"] += 1
        # Close outside the lock: evicted backend plans may hold real
        # resources (native buffers, worker pools) whose teardown must
        # not serialize every cache access behind it.
        for old in evicted:
            old.close()
    return plan.matmul(b)


def mod_switch(values: np.ndarray, q_bits: int, new_modulus: int) -> np.ndarray:
    """Rescale Z_{2^q_bits} elements to Z_{new_modulus} by rounding.

    Computes ``round(x * new_modulus / q)`` elementwise.  Used when
    handing the inner hint/answer to the outer compression layer
    (SS6.2), whose plaintext modulus is an odd prime near 2^32.

    The result is exact: the scaled value is computed with integer
    arithmetic split into high and low halves to avoid overflow.
    """
    q = 1 << q_bits
    arr = np.asarray(values, dtype=dtype_for(q_bits))
    if new_modulus <= 0:
        raise ValueError("new modulus must be positive")
    if q_bits == 32:
        prod = arr.astype(np.uint64) * np.uint64(new_modulus)
        return ((prod + np.uint64(q // 2)) >> np.uint64(q_bits)).astype(
            np.uint64
        ) % np.uint64(new_modulus)
    if new_modulus >= 1 << 32:
        raise ValueError("mod_switch from 2^64 requires new modulus < 2^32")
    # q = 2^64: split x = hi * 2^32 + lo and combine the two scaled halves.
    lo = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint64)
    hi = (arr >> np.uint64(32)).astype(np.uint64)
    t = np.uint64(new_modulus)
    # x * t / 2^64 = hi * t / 2^32 + lo * t / 2^64, rounded.
    hi_prod = hi * t  # < 2^32 * 2^34 = 2^66?  new_modulus < 2^32 keeps it safe
    lo_prod = lo * t
    combined = hi_prod + (lo_prod >> np.uint64(32))
    frac_low = lo_prod & np.uint64(0xFFFFFFFF)
    # combined is x*t / 2^32 with 32 fractional bits remaining; round.
    result = (combined + np.uint64(1 << 31)) >> np.uint64(32)
    # Account for the discarded sub-2^-32 fraction only at the boundary.
    boundary = ((combined & np.uint64(0xFFFFFFFF)) == np.uint64(0x7FFFFFFF)) & (
        frac_low >= np.uint64(1 << 31)
    )
    result = result + boundary.astype(np.uint64)
    return result % t
