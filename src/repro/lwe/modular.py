"""Wrap-around matrix arithmetic over Z_{2^32} and Z_{2^64}.

Tiptoe's inner encryption layer works modulo a power-of-two ciphertext
modulus q (2^64 for the ranking service, 2^32 for the URL service;
Appendix C).  Representing ring elements as ``uint32`` / ``uint64``
NumPy arrays makes reduction modulo q free: C-style unsigned integer
arithmetic wraps exactly as required, including inside ``matmul``
accumulators, so a single integer matrix product *is* the homomorphic
evaluation.

All helpers here take and return arrays of the ``dtype`` matching the
modulus; they never silently up-cast.
"""

from __future__ import annotations

import numpy as np

from repro.obs import runtime as _obs

#: Ciphertext moduli supported by the inner layer, keyed by bit width.
SUPPORTED_Q_BITS = (32, 64)

_DTYPES = {32: np.uint32, 64: np.uint64}
_SIGNED_DTYPES = {32: np.int32, 64: np.int64}


def dtype_for(q_bits: int) -> type:
    """Return the unsigned NumPy dtype representing Z_{2^q_bits}."""
    try:
        return _DTYPES[q_bits]
    except KeyError:
        raise ValueError(
            f"unsupported modulus 2^{q_bits}; supported: {SUPPORTED_Q_BITS}"
        ) from None


def signed_dtype_for(q_bits: int) -> type:
    """Return the signed NumPy dtype for centered representatives."""
    try:
        return _SIGNED_DTYPES[q_bits]
    except KeyError:
        raise ValueError(
            f"unsupported modulus 2^{q_bits}; supported: {SUPPORTED_Q_BITS}"
        ) from None


def to_ring(values: np.ndarray, q_bits: int) -> np.ndarray:
    """Reduce arbitrary integers into Z_{2^q_bits} (non-negative reps).

    Accepts signed input; negative entries map to their additive
    inverses mod q, matching the centered-representative convention of
    Appendix B.1.
    """
    dtype = dtype_for(q_bits)
    arr = np.asarray(values)
    if arr.dtype == dtype:
        return arr
    # Cast through a signed/unsigned view wraps correctly for any
    # integer input; object/float inputs are reduced explicitly first.
    if arr.dtype.kind not in "iu":
        q = 1 << q_bits
        arr = np.asarray(np.mod(arr, q), dtype=object)
        return np.array([int(x) for x in arr.ravel()], dtype=dtype).reshape(
            arr.shape
        )
    return arr.astype(dtype, casting="unsafe")


def centered(values: np.ndarray, q_bits: int) -> np.ndarray:
    """Map Z_q elements to centered representatives in [-q/2, q/2)."""
    dtype = dtype_for(q_bits)
    arr = np.asarray(values, dtype=dtype)
    return arr.view(signed_dtype_for(q_bits)) if arr.flags.c_contiguous else (
        np.ascontiguousarray(arr).view(signed_dtype_for(q_bits))
    )


def matmul(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Matrix product over Z_{2^q_bits}.

    The accumulator wraps modulo q by construction, so this is an exact
    ring operation regardless of operand magnitudes.
    """
    dtype = dtype_for(q_bits)
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    # Kernel timer: the ranking/URL scans bottom out here.  Disabled
    # observability costs one global read + branch (see repro.obs).
    with _obs.kernel_timer("lwe.matmul"):
        with np.errstate(over="ignore"):
            return a @ b


def matvec(a: np.ndarray, v: np.ndarray, q_bits: int) -> np.ndarray:
    """Matrix-vector product over Z_{2^q_bits}."""
    return matmul(a, v.reshape(-1), q_bits)


def add(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Elementwise sum over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) + np.asarray(b, dtype=dtype)


def sub(a: np.ndarray, b: np.ndarray, q_bits: int) -> np.ndarray:
    """Elementwise difference over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) - np.asarray(b, dtype=dtype)


def scale(a: np.ndarray, c: int, q_bits: int) -> np.ndarray:
    """Scalar multiple over Z_{2^q_bits}."""
    dtype = dtype_for(q_bits)
    with np.errstate(over="ignore"):
        return np.asarray(a, dtype=dtype) * dtype(c % (1 << q_bits))


def round_to_message(noisy: np.ndarray, q_bits: int, p: int) -> np.ndarray:
    """Round Z_q values to the nearest multiple of Delta = q // p.

    This is the non-linear step ``f`` of SimplePIR decryption
    (Appendix A): given ``Delta * m + e`` with ``|e| < Delta / 2``,
    recover ``m mod p``.  Requires ``p`` to divide ``2^q_bits`` exactly
    (both are powers of two in the operational configuration), so the
    encoding has no ``m * epsilon`` error term.
    """
    q = 1 << q_bits
    if q % p != 0:
        raise ValueError(f"plaintext modulus {p} must divide q = 2^{q_bits}")
    delta = q // p
    dtype = dtype_for(q_bits)
    noisy = np.asarray(noisy, dtype=dtype)
    with np.errstate(over="ignore"):
        shifted = noisy + dtype(delta // 2)
    # Shifted division by a power of two is exact in the unsigned ring.
    return ((shifted >> dtype(int(delta).bit_length() - 1)) % dtype(p)).astype(
        np.int64
    )


def encode_message(m: np.ndarray, q_bits: int, p: int) -> np.ndarray:
    """Scale plaintexts in Z_p up to Z_q: ``m -> Delta * m``."""
    q = 1 << q_bits
    if q % p != 0:
        raise ValueError(f"plaintext modulus {p} must divide q = 2^{q_bits}")
    delta = q // p
    dtype = dtype_for(q_bits)
    m = np.asarray(m)
    m_red = to_ring(np.mod(m, p), q_bits)
    with np.errstate(over="ignore"):
        return m_red * dtype(delta)


def mod_switch(values: np.ndarray, q_bits: int, new_modulus: int) -> np.ndarray:
    """Rescale Z_{2^q_bits} elements to Z_{new_modulus} by rounding.

    Computes ``round(x * new_modulus / q)`` elementwise.  Used when
    handing the inner hint/answer to the outer compression layer
    (SS6.2), whose plaintext modulus is an odd prime near 2^32.

    The result is exact: the scaled value is computed with integer
    arithmetic split into high and low halves to avoid overflow.
    """
    q = 1 << q_bits
    arr = np.asarray(values, dtype=dtype_for(q_bits))
    if new_modulus <= 0:
        raise ValueError("new modulus must be positive")
    if q_bits == 32:
        prod = arr.astype(np.uint64) * np.uint64(new_modulus)
        return ((prod + np.uint64(q // 2)) >> np.uint64(q_bits)).astype(
            np.uint64
        ) % np.uint64(new_modulus)
    if new_modulus >= 1 << 32:
        raise ValueError("mod_switch from 2^64 requires new modulus < 2^32")
    # q = 2^64: split x = hi * 2^32 + lo and combine the two scaled halves.
    lo = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint64)
    hi = (arr >> np.uint64(32)).astype(np.uint64)
    t = np.uint64(new_modulus)
    # x * t / 2^64 = hi * t / 2^32 + lo * t / 2^64, rounded.
    hi_prod = hi * t  # < 2^32 * 2^34 = 2^66?  new_modulus < 2^32 keeps it safe
    lo_prod = lo * t
    combined = hi_prod + (lo_prod >> np.uint64(32))
    frac_low = lo_prod & np.uint64(0xFFFFFFFF)
    # combined is x*t / 2^32 with 32 fractional bits remaining; round.
    result = (combined + np.uint64(1 << 31)) >> np.uint64(32)
    # Account for the discarded sub-2^-32 fraction only at the boundary.
    boundary = ((combined & np.uint64(0xFFFFFFFF)) == np.uint64(0x7FFFFFFF)) & (
        frac_low >= np.uint64(1 << 31)
    )
    result = result + boundary.astype(np.uint64)
    return result % t
