"""LWE parameter selection, noise budgets, and security estimates.

Appendix C of the paper fixes concrete Regev parameters for the two
inner-layer uses:

* ranking (SS4): ciphertext modulus q = 2^64, secret dimension n = 2048,
  error sigma = 81920 (or 4096 for very wide uploads), plaintext modulus
  p chosen per upload dimension -- Table 12;
* URL retrieval (SS5): q = 2^32, n = 1408 (1608 for very wide uploads),
  sigma = 6.4 (0.5) -- Table 11.

This module reproduces those tables: :func:`max_plaintext_modulus`
derives the largest safe plaintext modulus from the 2^-40 correctness
budget, and ``PAPER_TABLE_11`` / ``PAPER_TABLE_12`` record the paper's
values so the benchmark can print both side by side.

Security is estimated with a calibrated closed-form heuristic (see
:func:`estimate_security_bits`); it is anchored on the paper's own
parameter points rather than re-running the lattice estimator of
Albrecht et al., which is out of scope for this reproduction.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

#: Gaussian tail cut z with P(|X| > z * sigma) <= 2^-40.
TAIL_CUT_2_NEG_40 = math.sqrt(2.0 * 41.0 * math.log(2.0))

#: Paper Table 11 -- parameters for q = 2^32 (URL retrieval step).
#: upload dimension m -> (plaintext modulus p, lattice dim n, sigma).
PAPER_TABLE_11 = {
    2**13: (991, 1408, 6.4),
    2**14: (833, 1408, 6.4),
    2**15: (701, 1408, 6.4),
    2**16: (589, 1408, 6.4),
    2**17: (495, 1408, 6.4),
    2**18: (416, 1408, 6.4),
    2**19: (350, 1408, 6.4),
    2**20: (294, 1408, 6.4),
    2**21: (887, 1608, 0.5),
    2**22: (745, 1608, 0.5),
    2**23: (627, 1608, 0.5),
    2**24: (527, 1608, 0.5),
}

#: Paper Table 12 -- parameters for q = 2^64 (ranking step).
PAPER_TABLE_12 = {
    2**13: (2**19, 2048, 81920.0),
    2**14: (2**18, 2048, 81920.0),
    2**15: (2**18, 2048, 81920.0),
    2**16: (2**18, 2048, 81920.0),
    2**17: (2**18, 2048, 81920.0),
    2**18: (2**17, 2048, 81920.0),
    2**19: (2**17, 2048, 81920.0),
    2**20: (2**17, 2048, 81920.0),
    2**21: (2**17, 2048, 81920.0),
    2**22: (2**19, 2048, 4096.0),
    2**23: (2**18, 2048, 4096.0),
    2**24: (2**18, 2048, 4096.0),
}


class SecurityLevel(enum.Enum):
    """How hard the lattice problem underlying a parameter set is.

    ``TOY`` and ``LIGHT`` shrink the secret dimension so the full
    pipeline runs fast in tests; they provide **no** security and exist
    only for functional verification.  ``PAPER_128`` matches Appendix C.
    """

    TOY = "toy"
    LIGHT = "light"
    PAPER_128 = "paper-128"


_LATTICE_DIMS = {
    # level -> (n for q = 2^32, n for q = 2^64)
    SecurityLevel.TOY: (64, 128),
    SecurityLevel.LIGHT: (256, 512),
    SecurityLevel.PAPER_128: (1408, 2048),
}

_SIGMAS = {
    SecurityLevel.TOY: (6.4, 81920.0),
    SecurityLevel.LIGHT: (6.4, 81920.0),
    SecurityLevel.PAPER_128: (6.4, 81920.0),
}


@dataclass(frozen=True)
class LweParams:
    """A concrete Regev parameter set for the inner encryption layer.

    Attributes
    ----------
    n:
        Secret (lattice) dimension.
    q_bits:
        Ciphertext modulus is 2**q_bits (32 or 64).
    p:
        Plaintext modulus; must divide 2**q_bits for exact encoding.
    sigma:
        Standard deviation of the rounded-Gaussian error.
    m:
        Upload dimension the noise budget was computed for (the width
        of the matrices that will be applied to ciphertexts).
    """

    n: int
    q_bits: int
    p: int
    sigma: float
    m: int

    def __post_init__(self) -> None:
        if self.q_bits not in (32, 64):
            raise ValueError("q_bits must be 32 or 64")
        if self.p < 2:
            raise ValueError("plaintext modulus must be at least 2")
        if (1 << self.q_bits) % self.p != 0:
            raise ValueError(
                f"plaintext modulus {self.p} must divide 2^{self.q_bits}"
            )
        if self.n < 1 or self.m < 1:
            raise ValueError("dimensions must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    @property
    def q(self) -> int:
        """The ciphertext modulus."""
        return 1 << self.q_bits

    @property
    def delta(self) -> int:
        """The plaintext scaling factor Delta = q / p."""
        return self.q // self.p

    @property
    def bytes_per_element(self) -> int:
        """Wire size of one Z_q element."""
        return self.q_bits // 8

    def ciphertext_bytes(self, length: int) -> int:
        """Wire size of a ciphertext vector of the given length."""
        return length * self.bytes_per_element

    def security_bits(self) -> float:
        """Estimated bits of security of this parameter set."""
        return estimate_security_bits(self.n, self.q_bits, self.sigma)


def noise_bound(
    m: int, sigma: float, entry_bound: float, tail: float = TAIL_CUT_2_NEG_40
) -> float:
    """High-probability bound on |<d, e>| after a homomorphic Apply.

    ``d`` is a database row with entries bounded by ``entry_bound``
    (modeled as uniform, so E[d_j^2] = entry_bound^2 / 3) and ``e`` the
    fresh Gaussian error.  The bound holds per output entry except with
    probability ~2^-40.
    """
    return tail * sigma * entry_bound * math.sqrt(m / 3.0)


def max_plaintext_modulus(
    m: int,
    q_bits: int,
    sigma: float,
    entry_bound: float | None = None,
    tail: float = TAIL_CUT_2_NEG_40,
) -> int:
    """Largest plaintext modulus p meeting the 2^-40 correctness budget.

    Solves ``noise_bound(m, sigma, p) < q / (2 p)`` for p (database
    entries bounded by p when ``entry_bound`` is None, as in PIR).
    This is the computation behind the paper's Tables 11 and 12.
    """
    q = float(1 << q_bits)
    if entry_bound is None:
        # p appears on both sides: z * sigma * p * sqrt(m/3) < q / (2p).
        p_sq = q * math.sqrt(3.0) / (2.0 * tail * sigma * math.sqrt(m))
        return max(2, int(math.floor(math.sqrt(p_sq))))
    bound = noise_bound(m, sigma, entry_bound, tail)
    return max(2, int(math.floor(q / (2.0 * bound))))


def floor_power_of_two(value: int) -> int:
    """Largest power of two not exceeding ``value``."""
    if value < 1:
        raise ValueError("value must be positive")
    return 1 << (value.bit_length() - 1)


def estimate_security_bits(n: int, q_bits: int, sigma: float) -> float:
    """Heuristic LWE security estimate in bits.

    Uses the standard observation that (for the attack-relevant range)
    security scales roughly linearly in ``n / log2(q / sigma)``.  The
    proportionality constant 3.0 is calibrated so the paper's two
    128-bit anchor points (Appendix C) estimate at >= 128 bits:
    (n=1408, q=2^32, sigma=6.4) and (n=2048, q=2^64, sigma=81920).

    This is a coarse engineering heuristic for flagging insecure toy
    parameters, not a substitute for the lattice estimator.
    """
    log_ratio = q_bits - math.log2(max(sigma, 2.0**-10))
    if log_ratio <= 0:
        return float("inf")
    return 3.0 * n / log_ratio


def select_params(
    q_bits: int,
    m: int,
    level: SecurityLevel = SecurityLevel.PAPER_128,
    entry_bound: float | None = None,
    p: int | None = None,
) -> LweParams:
    """Choose a full parameter set for an upload dimension ``m``.

    The plaintext modulus defaults to the largest power of two within
    the correctness budget (powers of two keep the Delta-encoding
    exact; the paper's tables list the un-rounded maxima, which the
    parameter benchmark reports for comparison).
    """
    idx = 0 if q_bits == 32 else 1
    n = _LATTICE_DIMS[level][idx]
    sigma = _SIGMAS[level][idx]
    if p is None:
        p = floor_power_of_two(
            max_plaintext_modulus(m, q_bits, sigma, entry_bound)
        )
    return LweParams(n=n, q_bits=q_bits, p=p, sigma=sigma, m=m)
