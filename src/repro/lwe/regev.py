"""Secret-key Regev encryption with preprocessing (the SimplePIR LHE).

This is the inner encryption layer of Tiptoe (SS6.1, Appendix A.1): a
linearly homomorphic encryption scheme whose homomorphic evaluation --
multiplying a server-held plaintext matrix ``M`` into an encrypted
vector -- costs roughly two 64-bit word operations per matrix entry
after a one-time, message-independent preprocessing of ``M``.

Scheme (all arithmetic mod q = 2^32 or 2^64):

* public parameters: a uniform matrix ``A`` in Z_q^{m x n}, expanded
  from a short seed shared by both parties;
* secret key: ternary ``s`` in Z_q^n;
* ``Enc(s, v) = A s + e + Delta v`` for plaintext ``v`` in Z_p^m and
  ``Delta = q / p``;
* ``Preproc(M) = H = M A`` (the SimplePIR "hint");
* ``Apply(M, c) = M c``;
* ``Dec(s, H, a) = round_Delta(a - H s) mod p = M v mod p``.

The hint is what makes evaluation cheap: the ``M A s`` term is folded
into preprocessing, so the per-query work is a single plaintext-speed
integer matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.lwe import modular, sampling
from repro.lwe.params import LweParams
from repro.obs import runtime as _obs


@dataclass(frozen=True)
class SecretKey:
    """A ternary Regev secret, stored reduced into Z_q."""

    s: np.ndarray
    params: LweParams

    def __post_init__(self) -> None:
        if self.s.shape != (self.params.n,):
            raise ValueError(
                f"secret has shape {self.s.shape}, expected ({self.params.n},)"
            )

    def signed(self) -> np.ndarray:
        """The secret as small signed integers in {-1, 0, 1}."""
        return modular.centered(self.s, self.params.q_bits).astype(np.int64)


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted vector: ``c = A s + e + Delta v`` in Z_q^m."""

    c: np.ndarray
    params: LweParams

    def __post_init__(self) -> None:
        if self.c.ndim != 1:
            raise ValueError("ciphertext must be a vector")

    @property
    def upload_bytes(self) -> int:
        """Wire size of this ciphertext (the seed for A is amortized)."""
        return self.params.ciphertext_bytes(len(self.c))


def stack_ciphertexts(cts: Sequence[Ciphertext]) -> np.ndarray:
    """Stack Q ciphertext vectors into the (m, Q) column matrix.

    This is the wire layout of the cross-query batch plane: one query
    per column, so a batched Apply is a single matrix-matrix product.
    """
    if not cts:
        raise ValueError("cannot stack an empty ciphertext batch")
    params = cts[0].params
    for ct in cts[1:]:
        if ct.params != params:
            raise ValueError(
                "all ciphertexts in a batch must share one parameter set"
            )
    return np.stack([ct.c for ct in cts], axis=1)


@dataclass
class RegevScheme:
    """The SimplePIR linearly homomorphic encryption scheme.

    One instance is bound to one public matrix ``A`` (i.e., one
    database layout); the seed for ``A`` is the only public parameter
    that must be shared.
    """

    params: LweParams
    a_seed: bytes = field(default_factory=sampling.random_seed)
    _a: np.ndarray | None = field(default=None, repr=False)

    @property
    def a(self) -> np.ndarray:
        """The public matrix ``A`` in Z_q^{m x n} (expanded lazily)."""
        if self._a is None:
            self._a = sampling.expand_matrix(
                self.a_seed, self.params.m, self.params.n, self.params.q_bits
            )
        return self._a

    def gen_secret(self, rng: np.random.Generator | None = None) -> SecretKey:
        """Sample a fresh ternary secret key."""
        rng = sampling.resolve_rng(rng)
        s = sampling.ternary_secret(rng, self.params.n, self.params.q_bits)
        return SecretKey(s=s, params=self.params)

    def encrypt(
        self,
        sk: SecretKey,
        message: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> Ciphertext:
        """Encrypt a plaintext vector in Z_p^m.

        Negative message entries are accepted and reduced mod p
        (centered fixed-precision convention of Appendix B.1).
        """
        rng = sampling.resolve_rng(rng)
        message = np.asarray(message)
        if message.shape != (self.params.m,):
            raise ValueError(
                f"message has shape {message.shape}, expected"
                f" ({self.params.m},)"
            )
        q_bits = self.params.q_bits
        e = sampling.gaussian_error(rng, self.params.sigma, self.params.m, q_bits)
        mask = modular.matvec(self.a, sk.s, q_bits)
        encoded = modular.encode_message(message, q_bits, self.params.p)
        c = modular.add(modular.add(mask, e, q_bits), encoded, q_bits)
        return Ciphertext(c=c, params=self.params)

    def preprocess(self, matrix: np.ndarray) -> np.ndarray:
        """Compute the hint ``H = M A`` for a plaintext matrix ``M``.

        ``M`` has shape (l, m) with entries that are small integers
        (database records mod p, or signed quantized embeddings); it is
        lifted into Z_q before the product.
        """
        matrix = self._check_matrix(matrix)
        return modular.matmul(matrix, self.a, self.params.q_bits)

    def apply(self, matrix: np.ndarray, ct: Ciphertext) -> np.ndarray:
        """Homomorphically compute ``Enc(M v)`` -- the online hot loop.

        Returns the evaluated ciphertext vector ``a = M c`` in Z_q^l.
        This is the ~2*N word operations per query of SS6.1.  The
        ``kernel.lwe.apply`` timer contains ``kernel.lwe.matmul``.
        """
        matrix = self._check_matrix(matrix)
        with _obs.kernel_timer("lwe.apply"):
            return modular.matvec(matrix, ct.c, self.params.q_bits)

    def batch_plan(
        self, matrix: np.ndarray, *, backend: str | None = None, **plan_kwargs
    ):
        """Message-independent preprocessing for batched Apply calls.

        Like the hint, the plan depends only on ``M``; long-lived
        servers build it once and feed it to :meth:`apply_batch`.
        ``backend`` names a registered kernel backend (``None`` /
        ``"auto"`` resolve to the reference path); ``plan_kwargs``
        (``metadata``, ``limb_bits``, ``chunk_rows``, ``workers``)
        forward to :meth:`~repro.lwe.backends.KernelBackend.plan`.
        """
        from repro.lwe import backends as kernel_backends

        return kernel_backends.get_backend(backend).plan(
            self._check_matrix(matrix), self.params.q_bits, **plan_kwargs
        )

    def apply_batch(
        self,
        matrix: np.ndarray | None,
        cts: Sequence[Ciphertext] | np.ndarray,
        plan=None,
    ) -> np.ndarray:
        """Homomorphically evaluate ``M`` against Q stacked queries.

        ``cts`` is either a sequence of ciphertexts or an already
        stacked (m, Q) column matrix.  Returns the (rows, Q) evaluated
        columns; column i is bit-identical to ``apply(matrix, cts[i])``
        (both paths are exact mod-2^k ring arithmetic).  Pass a
        precomputed ``plan`` to skip the per-call preprocessing, in
        which case ``matrix`` may be None.
        """
        if plan is None:
            if matrix is None:
                raise ValueError("apply_batch needs a matrix or a plan")
            plan = self.batch_plan(matrix)
        stacked = (
            cts if isinstance(cts, np.ndarray) else stack_ciphertexts(cts)
        )
        with _obs.kernel_timer("lwe.apply_batch"):
            return plan.matmul(stacked)

    def decrypt(
        self, sk: SecretKey, hint: np.ndarray, answer: np.ndarray
    ) -> np.ndarray:
        """Recover ``M v mod p`` from an evaluated ciphertext."""
        noisy = self.decrypt_noisy(sk, hint, answer)
        return modular.round_to_message(noisy, self.params.q_bits, self.params.p)

    def decrypt_noisy(
        self, sk: SecretKey, hint: np.ndarray, answer: np.ndarray
    ) -> np.ndarray:
        """The linear part of decryption: ``a - H s`` in Z_q.

        Isolated because the double-layer scheme (SS6.2) outsources
        exactly this matrix-vector product to the server.
        """
        q_bits = self.params.q_bits
        hs = modular.matvec(hint, sk.s, q_bits)
        return modular.sub(np.asarray(answer), hs, q_bits)

    def decrypt_centered(
        self, sk: SecretKey, hint: np.ndarray, answer: np.ndarray
    ) -> np.ndarray:
        """Decrypt and map results to centered values in [-p/2, p/2)."""
        m = self.decrypt(sk, hint, answer)
        p = self.params.p
        return np.where(m >= p // 2, m - p, m)

    def _check_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.params.m:
            raise ValueError(
                f"matrix has shape {matrix.shape}, expected (*, {self.params.m})"
            )
        return modular.to_ring(matrix, self.params.q_bits)

    # -- cost model hooks -------------------------------------------------

    def hint_bytes(self, rows: int) -> int:
        """Wire/storage size of the hint for an l-row matrix."""
        return rows * self.params.n * self.params.bytes_per_element

    def answer_bytes(self, rows: int) -> int:
        """Wire size of an evaluated ciphertext for an l-row matrix."""
        return rows * self.params.bytes_per_element

    def apply_word_ops(self, rows: int) -> int:
        """Word operations for one Apply (2 per matrix entry, SS6.1)."""
        return 2 * rows * self.params.m

    def preprocess_word_ops(self, rows: int) -> int:
        """Word operations for the one-time hint computation."""
        return 2 * rows * self.params.m * self.params.n
