"""Randomness for the lattice schemes.

Appendix C of the paper fixes the error distribution (discrete Gaussian
with per-scheme standard deviation) and the secret distribution
(ternary).  This module provides those samplers plus seeded expansion
of the public random matrix ``A``, which lets the client and server
agree on ``A`` by exchanging a 32-byte seed instead of the matrix.

All sampling is driven by :class:`numpy.random.Generator`.  Call sites
that need cryptographic randomness pass a generator built from
:func:`system_rng`; tests pass seeded generators for reproducibility.
"""

from __future__ import annotations

import secrets

import numpy as np

from repro.lwe import modular


def system_rng() -> np.random.Generator:
    """A generator seeded from the operating system's entropy pool."""
    return np.random.Generator(np.random.Philox(secrets.randbits(128)))


#: Process-wide replay generator; installed by :func:`set_default_seed`.
_replay_rng: np.random.Generator | None = None


def set_default_seed(seed: int | bytes | None) -> None:
    """Install (or clear) the process-wide deterministic replay stream.

    After ``set_default_seed(seed)``, every library-level ``rng=None``
    fallback that goes through :func:`resolve_rng` draws from one
    shared seeded generator, so a whole run -- keygen, encryption
    noise, load generation -- replays bit-identically.  Call with
    ``None`` to restore the default (OS entropy for key material).

    This exists for debugging and benchmarking only; a deployment must
    never pin its key-generation randomness.
    """
    global _replay_rng
    _replay_rng = None if seed is None else seeded_rng(seed)


def resolve_rng(
    rng: np.random.Generator | None, *, fallback_seed: int | None = None
) -> np.random.Generator:
    """Resolve an optional caller-supplied generator -- the single
    sanctioned ``rng=None`` fallback for library code.

    Precedence: an explicit ``rng`` wins; else the process-wide replay
    stream (:func:`set_default_seed`), which makes end-to-end
    deterministic replay possible; else ``fallback_seed`` (for call
    sites whose documented default behavior is deterministic, e.g. the
    indexer); else fresh OS entropy via :func:`system_rng`.

    The tiptoe-lint ``rng-unseeded`` rule flags library code that calls
    ``np.random.default_rng()`` directly instead of routing through
    here.
    """
    if rng is not None:
        return rng
    if _replay_rng is not None:
        return _replay_rng
    if fallback_seed is not None:
        return seeded_rng(fallback_seed)
    return system_rng()


def seeded_rng(seed: int | bytes) -> np.random.Generator:
    """A deterministic generator for a given integer or byte-string seed."""
    if isinstance(seed, bytes):
        seed = int.from_bytes(seed, "little")
    return np.random.Generator(np.random.Philox(seed))


def random_seed() -> bytes:
    """A fresh 32-byte seed for matrix expansion."""
    return secrets.token_bytes(32)


def expand_matrix(seed: int | bytes, rows: int, cols: int, q_bits: int) -> np.ndarray:
    """Deterministically expand a seed into a uniform matrix over Z_q.

    Both parties run this with the same seed, so the LWE public matrix
    ``A`` never crosses the network (SimplePIR's seed-compression).
    """
    rng = seeded_rng(seed)
    dtype = modular.dtype_for(q_bits)
    if q_bits == 32:
        return rng.integers(0, 1 << 32, size=(rows, cols), dtype=np.uint32)
    lo = rng.integers(0, 1 << 32, size=(rows, cols), dtype=np.uint32)
    hi = rng.integers(0, 1 << 32, size=(rows, cols), dtype=np.uint32)
    return (hi.astype(dtype) << dtype(32)) | lo.astype(dtype)


def gaussian_error(
    rng: np.random.Generator, sigma: float, size: int | tuple, q_bits: int
) -> np.ndarray:
    """Sample rounded-Gaussian errors, reduced into Z_{2^q_bits}.

    SimplePIR samples from the discrete Gaussian; rounding a continuous
    Gaussian is the standard implementation (and what the SimplePIR
    codebase itself does) -- statistically within 2^-40 of the target
    for the sigmas used here.
    """
    raw = np.rint(rng.normal(0.0, sigma, size=size)).astype(np.int64)
    return modular.to_ring(raw, q_bits)


def ternary_secret(
    rng: np.random.Generator, n: int, q_bits: int
) -> np.ndarray:
    """Sample a uniformly ternary secret vector in {-1, 0, 1}^n mod q."""
    raw = rng.integers(-1, 2, size=n, dtype=np.int64)
    return modular.to_ring(raw, q_bits)


def ternary_secret_signed(rng: np.random.Generator, n: int) -> np.ndarray:
    """Sample a ternary secret as small signed integers (for RLWE)."""
    return rng.integers(-1, 2, size=n, dtype=np.int64)
