"""Lattice-based (LWE) linearly homomorphic encryption.

This subpackage implements the "inner" encryption layer of Tiptoe: the
high-throughput secret-key Regev encryption scheme with preprocessing
from SimplePIR (Henzinger et al., USENIX Security 2023), which Tiptoe
uses for both its ranking protocol (SS4) and its URL-retrieval PIR (SS5).

Modules
-------
modular
    Wrap-around matrix arithmetic over Z_{2^32} and Z_{2^64}.
sampling
    Discrete-Gaussian and ternary samplers, seeded matrix expansion.
params
    Parameter selection and noise/security estimation; reproduces the
    paper's Tables 11 and 12.
regev
    The Enc / Preproc / Apply / Dec scheme of Appendix A.1.
"""

from repro.lwe.params import (
    LweParams,
    SecurityLevel,
    estimate_security_bits,
    max_plaintext_modulus,
    select_params,
)
from repro.lwe.regev import (
    Ciphertext,
    RegevScheme,
    SecretKey,
)

__all__ = [
    "Ciphertext",
    "LweParams",
    "RegevScheme",
    "SecretKey",
    "SecurityLevel",
    "estimate_security_bits",
    "max_plaintext_modulus",
    "select_params",
]
