"""Spans and traces: where one query's time goes.

A :class:`Span` is a named interval with attributes and children; a
*trace* is the tree rooted at a span opened with no parent.  The
:class:`Tracer` hands out spans as context managers::

    tracer = Tracer()
    with tracer.span("client.search") as root:
        with tracer.span("ranking", bytes_up=1234):
            ...

Thread model: the "current span" stack is thread-local, so spans
opened on the same thread nest automatically.  Worker threads (which
have no ambient stack) attach to the caller's span by passing
``parent=`` explicitly; child-list mutation is locked, so concurrent
workers attach safely.

Privacy contract (docs/SECURITY.md): span names are static strings and
attributes are sizes, counts, and times only -- never query text,
scores, cluster choices, or key material.  The secret-taint lint runs
over this package like any other.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.clock import MONOTONIC, Clock


@dataclass
class Span:
    """One named, timed interval in a trace tree."""

    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        """Seconds from start to end, or None while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes (sizes, counts -- never secret values)."""
        self.attrs.update(attrs)
        return self

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def child_names(self) -> list[str]:
        return [c.name for c in self.children]


class _SpanContext:
    """Context manager that opens a span on enter and seals it on exit."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_is_root", "span")

    def __init__(self, tracer: "Tracer", name: str, parent: Span | None, attrs):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._is_root = False
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span, self._is_root = self._tracer._open(
            self._name, self._parent, self._attrs
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Record only the exception *type* -- messages may embed data.
        error = exc_type.__name__ if exc_type is not None else None
        self._tracer._close(self.span, self._is_root, error)
        return False


class Tracer:
    """Collects span trees; one finished root span per trace."""

    def __init__(self, clock: Clock | None = None, max_traces: int = 64):
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        self.clock: Clock = clock if clock is not None else MONOTONIC
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._local = threading.local()
        self._traces: list[Span] = []  # guarded-by: _lock

    # -- the public surface ------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attrs):
        """Open a span as a context manager.

        With no explicit ``parent`` the span nests under the current
        span of the calling thread (or starts a new trace if there is
        none).  Pool workers pass the coordinator's span explicitly.
        """
        return _SpanContext(self, name, parent, attrs)

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def traces(self) -> tuple[Span, ...]:
        """All finished traces, oldest first (bounded by max_traces)."""
        with self._lock:
            return tuple(self._traces)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(
        self, name: str, parent: Span | None, attrs
    ) -> tuple[Span, bool]:
        span = Span(name=name, start=self.clock(), attrs=dict(attrs))
        if parent is None:
            parent = self.current()
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        self._stack().append(span)
        return span, parent is None

    def _close(self, span: Span | None, is_root: bool, error: str | None) -> None:
        if span is None:
            return
        span.end = self.clock()
        if error is not None:
            span.attrs["error"] = error
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; drop through to it
            del stack[stack.index(span) :]
        if is_root:
            with self._lock:
                self._traces.append(span)
                if len(self._traces) > self.max_traces:
                    del self._traces[: -self.max_traces]
