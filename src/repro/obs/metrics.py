"""Counters, gauges, and fixed-bucket latency histograms.

The registry is the process's numeric view of the serving stack:
counters for monotonic totals (queries answered, RPC bytes), gauges
for point-in-time values (workers alive), and histograms for latency
distributions.  Histograms use *fixed* exponential buckets -- a
quarter-decade grid from 1 microsecond to 100 seconds -- so two runs
(or two machines) always bucket identically and snapshots can be
diffed across PRs.

Quantiles (p50/p95/p99) are estimated by linear interpolation inside
the bucket containing the target rank, clamped to the observed
min/max; :func:`percentile` gives the exact order statistic when the
raw samples are at hand (the load generator uses it for BENCH_*.json).

Everything is lock-protected and cheap: one ``bisect`` per observation.
"""

from __future__ import annotations

import bisect
import threading

from repro.obs.clock import MONOTONIC, Clock

#: Quarter-decade latency bucket upper bounds, 1e-6 s .. 1e2 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (exp / 4.0) for exp in range(-24, 9)
)


def percentile(samples, q: float) -> float:
    """Exact linear-interpolated percentile of raw samples.

    ``q`` is in [0, 1].  Raises on an empty sample set -- callers
    decide what an absent distribution means.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("percentile rank must be in [0, 1]")
    data = sorted(samples)
    if not data:
        raise ValueError("cannot take a percentile of no samples")
    if len(data) == 1:
        return float(data[0])
    pos = q * (len(data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; set freely."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates."""

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min: float | None = None  # guarded-by: _lock
        self._max: float | None = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float | None:
        with self._lock:
            return self._sum / self._count if self._count else None

    def _state(self) -> tuple[int, list[int], float, float | None, float | None]:
        """One consistent snapshot under a single lock acquisition."""
        with self._lock:
            return (
                self._count,
                list(self._counts),
                self._sum,
                self._min,
                self._max,
            )

    def _quantile_from(
        self,
        q: float,
        count: int,
        counts: list[int],
        lo_seen: float | None,
        hi_seen: float | None,
    ) -> float | None:
        """Pure interpolation over an already-snapshotted state."""
        if count == 0:
            return None
        target = q * count
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= target and bucket_count > 0:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = (
                    self.bounds[idx]
                    if idx < len(self.bounds)
                    else (hi_seen if hi_seen is not None else lower)
                )
                frac = (target - cumulative) / bucket_count
                est = lower + frac * (upper - lower)
                return min(max(est, lo_seen), hi_seen)
            cumulative += bucket_count
        return hi_seen

    def quantile(self, q: float) -> float | None:
        """Estimate the q-quantile from the bucket counts.

        Linear interpolation within the target bucket, clamped to the
        observed [min, max]; None if nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile rank must be in [0, 1]")
        count, counts, _, lo_seen, hi_seen = self._state()
        return self._quantile_from(q, count, counts, lo_seen, hi_seen)

    @property
    def p50(self) -> float | None:
        return self.quantile(0.50)

    @property
    def p95(self) -> float | None:
        return self.quantile(0.95)

    @property
    def p99(self) -> float | None:
        return self.quantile(0.99)

    def summary(self) -> dict:
        """A JSON-ready digest of the distribution.

        Built from one snapshot, so count/sum/quantiles are mutually
        consistent even while other threads keep observing.
        """
        count, counts, total, lo_seen, hi_seen = self._state()
        return {
            "count": count,
            "sum": total,
            "min": lo_seen,
            "max": hi_seen,
            "mean": total / count if count else None,
            "p50": self._quantile_from(0.50, count, counts, lo_seen, hi_seen),
            "p95": self._quantile_from(0.95, count, counts, lo_seen, hi_seen),
            "p99": self._quantile_from(0.99, count, counts, lo_seen, hi_seen),
        }


class _HistogramTimer:
    """Times a block into a histogram using the registry's clock."""

    __slots__ = ("_hist", "_clock", "_start")

    def __init__(self, hist: Histogram, clock: Clock):
        self._hist = hist
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._hist.observe(self._clock() - self._start)
        return False


class MetricsRegistry:
    """Get-or-create home for all metrics; one per process (usually)."""

    def __init__(self, clock: Clock | None = None):
        self.clock: Clock = clock if clock is not None else MONOTONIC
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}  # guarded-by: _lock

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as"
                    f" {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, buckets)

    def timer(self, name: str) -> _HistogramTimer:
        """Context manager timing a block into ``histogram(name)``."""
        return _HistogramTimer(self.histogram(name), self.clock)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """JSON-ready dump of every registered metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in items:
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.summary()
        return out
