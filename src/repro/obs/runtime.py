"""Process-global observability state -- off by default, cheap when off.

The serving stack calls the module-level helpers here (:func:`span`,
:func:`kernel_timer`, :func:`observe`, :func:`count`) instead of
holding tracer/registry references.  When observability is disabled
(the default) every helper returns a shared no-op object or returns
immediately: the cost is one global read and one branch, which keeps
the instrumented ranking scan within the <5% no-op overhead budget
(measured by ``benchmarks/bench_throughput.py``).

Enable around a region of interest::

    from repro.obs import runtime as obs

    tracer, registry = obs.enable()
    try:
        ...  # run queries
        trace = tracer.last_trace()
    finally:
        obs.disable()
"""

from __future__ import annotations

import functools

from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer


class _NoopContext:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopContext()

_tracer: Tracer | None = None
_metrics: MetricsRegistry | None = None


def enable(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    clock: Clock | None = None,
) -> tuple[Tracer, MetricsRegistry]:
    """Activate tracing and metrics (idempotent; replaces prior state)."""
    global _tracer, _metrics
    _tracer = tracer if tracer is not None else Tracer(clock=clock)
    _metrics = metrics if metrics is not None else MetricsRegistry(clock=clock)
    return _tracer, _metrics


def disable() -> None:
    """Back to the zero-instrumentation default."""
    global _tracer, _metrics
    _tracer = None
    _metrics = None


def enabled() -> bool:
    return _tracer is not None


def tracer() -> Tracer | None:
    return _tracer


def metrics() -> MetricsRegistry | None:
    return _metrics


def span(name: str, parent: Span | None = None, **attrs):
    """A span context manager on the active tracer, or a no-op.

    The body receives the :class:`Span` (``with obs.span(...) as sp``)
    when enabled and ``None`` when disabled -- guard attribute writes
    with ``if sp is not None``.
    """
    t = _tracer
    if t is None:
        return _NOOP
    return t.span(name, parent=parent, **attrs)


def current_span() -> Span | None:
    """The calling thread's innermost open span (None when disabled)."""
    t = _tracer
    return t.current() if t is not None else None


def kernel_timer(name: str):
    """Time a crypto kernel into ``kernel.<name>`` (no-op when off)."""
    m = _metrics
    if m is None:
        return _NOOP
    return m.timer(f"kernel.{name}")


def observe(name: str, value: float) -> None:
    """Record one sample into a histogram (no-op when off)."""
    m = _metrics
    if m is not None:
        m.histogram(name).observe(value)


def count(name: str, n: int = 1) -> None:
    """Bump a counter (no-op when off)."""
    m = _metrics
    if m is not None:
        m.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set a gauge to its current value (no-op when off)."""
    m = _metrics
    if m is not None:
        m.gauge(name).set(value)


def traced(name: str | None = None):
    """Decorator form of :func:`span` for whole functions."""

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
