"""JSON exporters: trace dumps and the BENCH_*.json perf trajectory.

Two machine-readable formats, both versioned by a ``schema`` field so
downstream tooling can evolve safely:

``repro.obs.trace/v1``
    One query's span tree.  Times are *offsets in seconds from the
    root span's start* (never wall-clock timestamps), attributes are
    the sizes/counts the spans recorded.

``repro.obs.bench/v1``
    A benchmark result envelope: ``{"schema", "bench", "data"}``.
    ``benchmarks/bench_throughput.py`` writes two of these per run --
    ``BENCH_throughput.json`` (per-phase queries/sec) and
    ``BENCH_latency.json`` (per-phase p50/p95/p99 seconds) -- giving
    every future PR a numeric baseline to diff against.

See EXPERIMENTS.md ("Observability") for the field-by-field schema.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span

TRACE_SCHEMA = "repro.obs.trace/v1"
BENCH_SCHEMA = "repro.obs.bench/v1"


def span_to_dict(span: Span, t0: float | None = None) -> dict:
    """One span as a JSON-ready dict; times relative to the trace root."""
    if t0 is None:
        t0 = span.start
    return {
        "name": span.name,
        "start_s": span.start - t0,
        "end_s": span.end - t0 if span.end is not None else None,
        "duration_s": span.duration,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(c, t0) for c in span.children],
    }


def trace_to_dict(root: Span) -> dict:
    """A whole trace under the versioned envelope."""
    return {
        "schema": TRACE_SCHEMA,
        "root": span_to_dict(root),
        "total_seconds": root.duration,
    }


def dump_trace(root: Span, path) -> pathlib.Path:
    """Write one trace as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(trace_to_dict(root), indent=2) + "\n", encoding="utf-8"
    )
    return path


def metrics_to_dict(registry: MetricsRegistry) -> dict:
    """Registry snapshot under the bench envelope (for obs-report --json)."""
    return {
        "schema": BENCH_SCHEMA,
        "bench": "metrics_snapshot",
        "data": registry.snapshot(),
    }


def write_bench_json(path, bench: str, data: dict) -> pathlib.Path:
    """Write one BENCH_*.json file; returns the path."""
    path = pathlib.Path(path)
    payload = {"schema": BENCH_SCHEMA, "bench": bench, "data": data}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def read_bench_json(path) -> dict:
    """Load and validate a BENCH_*.json envelope."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unexpected bench schema {payload.get('schema')!r};"
            f" expected {BENCH_SCHEMA!r}"
        )
    return payload
