"""repro.obs -- observability for the Tiptoe serving stack.

Spans (where a query's time goes), metrics (latency distributions,
kernel timers, counters), JSON exporters (per-query traces and the
BENCH_*.json perf trajectory), and a unified text report that folds in
the existing ``CostLedger`` / ``TrafficLog`` totals.

Off by default and nearly free when off: library call sites go through
:mod:`repro.obs.runtime`, whose disabled fast path is one global read
plus one branch.  Enable with::

    from repro.obs import runtime as obs

    tracer, registry = obs.enable()
    ...
    obs.disable()

Privacy contract: spans and metrics record *names, sizes, counts, and
times* only -- never query text, scores, cluster ids, or key material
(docs/SECURITY.md, "What the observability layer records").
"""

from repro.obs.clock import MONOTONIC, Clock, ManualClock
from repro.obs.export import (
    BENCH_SCHEMA,
    TRACE_SCHEMA,
    dump_trace,
    metrics_to_dict,
    read_bench_json,
    span_to_dict,
    trace_to_dict,
    write_bench_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.report import render_report, render_span_tree
from repro.obs.runtime import (
    count,
    current_span,
    disable,
    enable,
    enabled,
    kernel_timer,
    metrics,
    observe,
    span,
    traced,
    tracer,
)
from repro.obs.spans import Span, Tracer

__all__ = [
    "BENCH_SCHEMA",
    "Clock",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MONOTONIC",
    "ManualClock",
    "MetricsRegistry",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "count",
    "current_span",
    "disable",
    "dump_trace",
    "enable",
    "enabled",
    "kernel_timer",
    "metrics",
    "metrics_to_dict",
    "observe",
    "percentile",
    "read_bench_json",
    "render_report",
    "render_span_tree",
    "span",
    "span_to_dict",
    "trace_to_dict",
    "traced",
    "tracer",
    "write_bench_json",
]
