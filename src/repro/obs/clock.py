"""Injectable monotonic clocks.

Every duration the observability layer records comes from a *clock*:
a zero-argument callable returning monotonic seconds as a float.  The
production clock is :func:`time.perf_counter`; tests inject a
:class:`ManualClock` and advance it by hand, which makes every span
duration and histogram bucket deterministic.

Library code never reads the wall clock -- ``time.time()`` is banned
by the ``api-wallclock`` lint rule (wall time is neither monotonic nor
reproducible, and absolute timestamps are one more thing a trace could
leak).  Exported traces therefore carry only *relative* offsets.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock is any zero-argument callable returning monotonic seconds.
Clock = Callable[[], float]

#: The production clock: CPython's highest-resolution monotonic timer.
MONOTONIC: Clock = time.perf_counter


class ManualClock:
    """A deterministic clock for tests: advances only when told to.

    >>> clock = ManualClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self._now += float(seconds)
