"""Human-readable rendering: span trees, metric tables, unified totals.

One report joins the three accounting systems the repo already has:

* the **span tree** of a query (where the time went),
* the **metrics registry** (latency distributions, kernel timers),
* the existing **CostLedger** (word operations -> core-seconds) and
  **TrafficLog** (bytes per phase) totals,

so ``python -m repro obs-report`` shows time, compute, and bytes in a
single view.  Pure string formatting -- no I/O, no clock reads.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_span_tree(root: Span, indent: int = 0) -> list[str]:
    """One line per span: name, duration, and its recorded attributes."""
    attrs = " ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
    pad = "  " * indent
    line = f"{pad}{root.name:<{max(28 - len(pad), 1)}s} {_fmt_seconds(root.duration):>10s}"
    if attrs:
        line += f"  [{attrs}]"
    lines = [line]
    for child in root.children:
        lines.extend(render_span_tree(child, indent + 1))
    return lines


def render_report(
    *,
    metrics: MetricsRegistry | None = None,
    trace: Span | None = None,
    ledger=None,
    traffic=None,
) -> str:
    """The unified text report (see module docstring)."""
    sections: list[str] = []

    if trace is not None:
        sections.append("== last query trace ==")
        sections.extend(render_span_tree(trace))
        sections.append("")

    if metrics is not None:
        snapshot = metrics.snapshot()
        if snapshot["histograms"]:
            sections.append("== latency histograms ==")
            header = (
                f"{'histogram':<32s} {'count':>7s} {'mean':>10s}"
                f" {'p50':>10s} {'p95':>10s} {'p99':>10s}"
            )
            sections.append(header)
            for name, digest in snapshot["histograms"].items():
                sections.append(
                    f"{name:<32s} {digest['count']:>7d}"
                    f" {_fmt_seconds(digest['mean']):>10s}"
                    f" {_fmt_seconds(digest['p50']):>10s}"
                    f" {_fmt_seconds(digest['p95']):>10s}"
                    f" {_fmt_seconds(digest['p99']):>10s}"
                )
            sections.append("")
        if snapshot["counters"]:
            sections.append("== counters ==")
            for name, value in snapshot["counters"].items():
                sections.append(f"{name:<32s} {value:>12,d}")
            sections.append("")
        if snapshot["gauges"]:
            sections.append("== gauges ==")
            for name, value in snapshot["gauges"].items():
                sections.append(f"{name:<32s} {value:>12,.3f}")
            sections.append("")

    if ledger is not None:
        sections.append("== server compute (CostLedger) ==")
        sections.append(
            f"{'component':<32s} {'word ops':>14s} {'core-seconds':>13s}"
        )
        for component in sorted(ledger.word_ops):
            sections.append(
                f"{component:<32s} {ledger.total_ops(component):>14,d}"
                f" {ledger.core_seconds(component):>13.6f}"
            )
        sections.append(
            f"{'total':<32s} {ledger.total_ops():>14,d}"
            f" {ledger.core_seconds():>13.6f}"
        )
        sections.append("")

    if traffic is not None:
        sections.append("== traffic (TrafficLog) ==")
        sections.append(f"{'phase':<32s} {'bytes up':>12s} {'bytes down':>12s}")
        for phase, (up, down) in traffic.phase_summary().items():
            sections.append(f"{phase:<32s} {up:>12,d} {down:>12,d}")
        sections.append(
            f"{'total':<32s} {traffic.bytes_up():>12,d}"
            f" {traffic.bytes_down():>12,d}"
        )
        sections.append("")

    return "\n".join(sections).rstrip() + "\n"
