"""Bounded-memory discipline for the ingestion plane.

The whole point of :mod:`repro.ingest` is that no stage ever holds the
corpus in memory: documents move through in bounded batches and spill
to stage artifacts.  One careless ``np.vstack(list(batches))`` quietly
reintroduces the O(corpus) allocation the plane exists to remove -- and
nothing fails until someone runs a corpus large enough to OOM, which is
exactly the run that matters.

The ``ingest-materialize`` rule therefore bans, inside
``src/repro/ingest/`` only:

* the numpy stack family (``vstack`` / ``hstack`` / ``stack`` /
  ``concatenate`` / ``column_stack`` / ``row_stack``), whose output is
  a fresh array the size of everything stacked -- per-batch code never
  needs them (preallocate or memmap and fill slices instead);
* draining a stream into a container: ``list`` / ``tuple`` / ``sorted``
  over a generator expression or over a call to a batch iterator
  (``batches()`` / ``iter_batches()`` / ``read_batches()``).

Fixed-size materialization (``list(range(k))`` over clusters, a
per-batch ``list(...)``) is fine and not matched; the rule targets the
two shapes that scale with the corpus.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, call_name
from repro.analysis.findings import Finding, RuleSpec

#: numpy calls whose result is one array holding every input row.
STACK_CALLS = frozenset(
    {"vstack", "hstack", "stack", "concatenate", "column_stack", "row_stack"}
)

#: containers that drain whatever iterator they are handed.
DRAIN_CALLS = frozenset({"list", "tuple", "sorted"})

#: conventional names of corpus-scale batch iterators.
BATCH_ITERATORS = frozenset({"batches", "iter_batches", "read_batches"})


class IngestMaterializeChecker(Checker):
    name = "ingest"
    rules = (
        RuleSpec(
            rule="ingest-materialize",
            summary=(
                "whole-corpus materialization inside the ingestion"
                " plane (numpy stack family, or list/tuple/sorted over"
                " a stream)"
            ),
            invariant="src/repro/ingest/ holds one batch at a time",
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "ingest" in ctx.parts and ctx.filename.endswith(".py")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in STACK_CALLS and isinstance(node.func, ast.Attribute):
                findings.append(
                    self.finding(
                        ctx,
                        "ingest-materialize",
                        node,
                        f"np.{name}() allocates one array spanning every"
                        " input; preallocate (or memmap) and fill"
                        " per-batch slices instead",
                    )
                )
            elif (
                name in DRAIN_CALLS
                and isinstance(node.func, ast.Name)
                and node.args
                and self._drains_stream(node.args[0])
            ):
                findings.append(
                    self.finding(
                        ctx,
                        "ingest-materialize",
                        node,
                        f"{name}() drains a document stream into memory;"
                        " iterate the batches instead",
                    )
                )
        return findings

    @staticmethod
    def _drains_stream(arg: ast.AST) -> bool:
        if isinstance(arg, ast.GeneratorExp):
            return True
        return (
            isinstance(arg, ast.Call) and call_name(arg) in BATCH_ITERATORS
        )
