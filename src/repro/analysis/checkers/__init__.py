"""The shipped checkers and their registry."""

from __future__ import annotations

from repro.analysis.base import Checker
from repro.analysis.checkers.api import ApiHygieneChecker
from repro.analysis.checkers.batch import BatchPlaneChecker
from repro.analysis.checkers.dtype import DtypeDisciplineChecker
from repro.analysis.checkers.hotpath import HotPathPrecomputeChecker
from repro.analysis.checkers.net import TransportSeamChecker
from repro.analysis.checkers.rng import RngHygieneChecker
from repro.analysis.checkers.taint import SecretTaintChecker


def build_checkers(rules: set[str] | None = None) -> list[Checker]:
    """Instantiate every checker, optionally filtered to a rule subset."""
    checkers: list[Checker] = [
        DtypeDisciplineChecker(),
        SecretTaintChecker(),
        RngHygieneChecker(),
        ApiHygieneChecker(),
        TransportSeamChecker(),
        BatchPlaneChecker(),
        HotPathPrecomputeChecker(),
    ]
    if rules is None:
        return checkers
    kept = []
    for checker in checkers:
        if any(spec.rule in rules for spec in checker.rules):
            kept.append(checker)
    return kept


def all_rules() -> list:
    """Every RuleSpec across all checkers, in registry order."""
    specs = []
    for checker in build_checkers():
        specs.extend(checker.rules)
    return specs


__all__ = [
    "ApiHygieneChecker",
    "BatchPlaneChecker",
    "DtypeDisciplineChecker",
    "HotPathPrecomputeChecker",
    "RngHygieneChecker",
    "SecretTaintChecker",
    "TransportSeamChecker",
    "all_rules",
    "build_checkers",
]
