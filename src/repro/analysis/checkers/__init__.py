"""The shipped checkers and their registry."""

from __future__ import annotations

from repro.analysis.base import Checker, ProgramChecker
from repro.analysis.checkers.api import ApiHygieneChecker
from repro.analysis.checkers.batch import BatchPlaneChecker
from repro.analysis.checkers.dtype import DtypeDisciplineChecker
from repro.analysis.checkers.hotpath import HotPathPrecomputeChecker
from repro.analysis.checkers.ingest import IngestMaterializeChecker
from repro.analysis.checkers.itaint import InterproceduralTaintChecker
from repro.analysis.checkers.kernelseam import KernelSeamChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.net import TransportSeamChecker
from repro.analysis.checkers.rng import RngHygieneChecker
from repro.analysis.checkers.taint import SecretTaintChecker


def build_checkers(rules: set[str] | None = None) -> list[Checker]:
    """Instantiate every per-file checker, optionally rule-filtered."""
    checkers: list[Checker] = [
        DtypeDisciplineChecker(),
        SecretTaintChecker(),
        RngHygieneChecker(),
        ApiHygieneChecker(),
        TransportSeamChecker(),
        BatchPlaneChecker(),
        HotPathPrecomputeChecker(),
        IngestMaterializeChecker(),
        KernelSeamChecker(),
    ]
    return _filter(checkers, rules)


def build_program_checkers(
    rules: set[str] | None = None,
) -> list[ProgramChecker]:
    """Instantiate every whole-program checker, optionally filtered."""
    checkers: list[ProgramChecker] = [
        LockDisciplineChecker(),
        InterproceduralTaintChecker(),
    ]
    return _filter(checkers, rules)


def _filter(checkers: list, rules: set[str] | None) -> list:
    if rules is None:
        return checkers
    return [
        checker
        for checker in checkers
        if any(spec.rule in rules for spec in checker.rules)
    ]


def all_rules() -> list:
    """Every RuleSpec across all checkers, in registry order."""
    specs = []
    for checker in build_checkers():
        specs.extend(checker.rules)
    for checker in build_program_checkers():
        specs.extend(checker.rules)
    return specs


__all__ = [
    "ApiHygieneChecker",
    "BatchPlaneChecker",
    "DtypeDisciplineChecker",
    "HotPathPrecomputeChecker",
    "IngestMaterializeChecker",
    "KernelSeamChecker",
    "InterproceduralTaintChecker",
    "LockDisciplineChecker",
    "RngHygieneChecker",
    "SecretTaintChecker",
    "TransportSeamChecker",
    "all_rules",
    "build_checkers",
    "build_program_checkers",
]
