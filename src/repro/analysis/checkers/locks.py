"""Lock discipline: guarded attributes, lock ordering, blocking calls.

The concurrency added by the batch/ahead-of-time planes (``TokenPool``,
``BatchScheduler``, the NTT context registry, ``SocketTransport``, the
obs metrics) all follows one idiom: a ``threading.Lock`` (or a
``Condition`` wrapping one) acquired via ``with``, guarding a small set
of attributes.  This checker makes that idiom mechanical:

* ``# guarded-by: <lockname>`` on an attribute, module global, or
  function local declares its guard.  Every read or write must then
  occur while the guard is held (**lock-guarded-attr**).  ``__init__``
  / ``__post_init__`` / ``__del__`` are exempt -- the object is not
  yet (or no longer) shared.
* Acquisition *order* is collected across the whole program: acquiring
  B while holding A -- directly or through any resolved call chain --
  adds the edge A -> B.  A cycle in that graph, including re-acquiring
  a held non-reentrant lock, is a potential deadlock
  (**lock-order-cycle**).
* Blocking operations while holding a lock -- socket send/recv/
  connect, ``future.result()``, ``queue.get``/``put``, ``sleep``,
  ``event.wait()``, or any call that transitively reaches one --
  stall every other thread contending for the lock
  (**lock-blocking-call**).  ``cond.wait()`` on a condition whose
  underlying lock *is* the held lock is the one sanctioned idiom and
  is exempt.
* ``# requires-lock: <lockname>`` on a function both seeds its entry
  held-set and obliges callers to hold the lock (**lock-requires**).
* Annotations that name an unknown lock, or that attach to nothing,
  are themselves errors (**lock-bad-annotation**) so typos cannot
  silently disable checking.
"""

from __future__ import annotations

import ast

from repro.analysis.base import ProgramChecker, call_name, dotted_name
from repro.analysis.findings import Finding, RuleSpec
from repro.analysis.ir.callgraph import CallGraph
from repro.analysis.ir.cfg import shallow_exprs
from repro.analysis.ir.program import FunctionInfo, Program

#: Methods where guarded attributes may be touched without the lock:
#: construction and teardown happen before/after the object is shared.
EXEMPT_METHODS = {"__init__", "__post_init__", "__del__"}

#: Calls that block the calling thread outright.
BLOCKING_CALL_NAMES = {
    "sendall",
    "recv",
    "recv_into",
    "accept",
    "connect",
    "create_connection",
    "sleep",
    "result",
    "acquire",
    "select",
}

#: Block only when the receiver looks like a queue (``q.get()``), so
#: ``dict.get`` stays quiet.
QUEUE_CALL_NAMES = {"get", "put"}

#: ``cond.wait()`` is exempt iff ``cond`` aliases a held lock.
WAITER_NAMES = {"wait", "wait_for"}


def _is_blocking_name(call: ast.Call) -> str | None:
    """Classify a call as directly blocking (reason string) or not."""
    name = call_name(call)
    if name in BLOCKING_CALL_NAMES:
        return f"{name}() blocks"
    if name in QUEUE_CALL_NAMES and isinstance(call.func, ast.Attribute):
        receiver = dotted_name(call.func.value) or ""
        if "queue" in receiver.lower() or receiver.lower().endswith("_q"):
            return f"queue {name}() blocks"
    return None


def _acquire_summaries(
    program: Program, graph: CallGraph
) -> dict[int, frozenset]:
    """id(func) -> every lock token the function may acquire,
    transitively through resolved calls (fixpoint)."""
    funcs = graph.all_functions()
    acquired: dict[int, set] = {id(f): set() for f in funcs}
    direct: dict[int, set] = {}
    callee_map: dict[int, list[FunctionInfo]] = {}
    for func in funcs:
        tokens: set = set()
        cfg = program.cfg_of(func)
        for block in cfg.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        tok = program.resolve_lock_expr(
                            item.context_expr, func
                        )
                        if tok is not None:
                            tokens.add(tok)
        direct[id(func)] = tokens
        acquired[id(func)] |= tokens
        callee_map[id(func)] = graph.callees(func)
    changed = True
    while changed:
        changed = False
        for func in funcs:
            mine = acquired[id(func)]
            before = len(mine)
            for callee in callee_map[id(func)]:
                mine |= acquired.get(id(callee), set())
            if len(mine) != before:
                changed = True
    return {k: frozenset(v) for k, v in acquired.items()}


def _may_block_summaries(
    program: Program, graph: CallGraph
) -> dict[int, bool]:
    """id(func) -> the function may block (directly or transitively).

    Condition waits count here even though they are exempt at their
    own site: *calling* a waiting function while holding an unrelated
    lock still stalls that lock's other contenders.
    """
    funcs = graph.all_functions()
    may_block: dict[int, bool] = {}
    callee_map: dict[int, list[FunctionInfo]] = {}
    for func in funcs:
        blocking = False
        cfg = program.cfg_of(func)
        for block in cfg.blocks:
            for stmt in block.stmts:
                for expr in shallow_exprs(stmt):
                    for node in ast.walk(expr):
                        if isinstance(node, ast.Call) and (
                            _is_blocking_name(node)
                            or call_name(node) in WAITER_NAMES
                        ):
                            blocking = True
        may_block[id(func)] = blocking
        callee_map[id(func)] = graph.callees(func)
    changed = True
    while changed:
        changed = False
        for func in funcs:
            if may_block[id(func)]:
                continue
            if any(
                may_block.get(id(c), False) for c in callee_map[id(func)]
            ):
                may_block[id(func)] = True
                changed = True
    return may_block


def lock_order_edges(
    program: Program,
    graph: CallGraph | None = None,
    acquired: dict[int, frozenset] | None = None,
) -> dict[tuple[str, str], tuple[str, int]]:
    """The whole-program lock-order graph.

    Returns ``{(held_token, acquired_token): (path, line)}`` -- one
    representative acquisition site per edge.  The dynamic concurrency
    harness asserts its *observed* nesting edges are a subset of this.
    """
    graph = graph or CallGraph(program)
    if acquired is None:
        acquired = _acquire_summaries(program, graph)
    edges: dict[tuple[str, str], tuple[str, int]] = {}

    def add(src: str, dst: str, path: str, line: int) -> None:
        edges.setdefault((src, dst), (path, line))

    for func in graph.all_functions():
        path = func.module.path
        cfg = program.cfg_of(func)
        for block in cfg.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    toks = [
                        program.resolve_lock_expr(item.context_expr, func)
                        for item in stmt.items
                    ]
                    toks = [t for t in toks if t is not None]
                    for tok in toks:
                        for held in block.held:
                            add(held, tok, path, stmt.lineno)
                    for i, first in enumerate(toks):
                        for second in toks[i + 1 :]:
                            add(first, second, path, stmt.lineno)
                for expr in shallow_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        if not block.held:
                            continue
                        targets, _ = graph.resolve_call(node, func)
                        for target in targets:
                            for tok in acquired.get(id(target), ()):
                                for held in block.held:
                                    add(held, tok, path, node.lineno)
    return edges


def find_cycles(
    edges: dict[tuple[str, str], tuple[str, int]]
) -> list[list[str]]:
    """Every elementary cycle reachable in the lock-order graph,
    deduplicated by node set (self-loops included)."""
    succ: dict[str, list[str]] = {}
    for src, dst in edges:
        succ.setdefault(src, []).append(dst)
    cycles: list[list[str]] = []
    seen_sets: set[frozenset] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        for nxt in succ.get(node, ()):
            if nxt in on_path:
                cycle = path[path.index(nxt) :] + [nxt]
                key = frozenset(cycle)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(cycle)
                continue
            dfs(nxt, path + [nxt], on_path | {nxt})

    for start in list(succ):
        dfs(start, [start], {start})
    return cycles


class LockDisciplineChecker(ProgramChecker):
    name = "locks"
    rules = (
        RuleSpec(
            rule="lock-guarded-attr",
            summary="guarded attribute accessed without its declared lock",
            invariant=(
                "every read/write of a `# guarded-by:` attribute is "
                "dominated by `with <lock>:`"
            ),
            paper="SS4 (server shared state)",
        ),
        RuleSpec(
            rule="lock-order-cycle",
            summary="lock-acquisition-order cycle (potential deadlock)",
            invariant="the whole-program lock-order graph is acyclic",
        ),
        RuleSpec(
            rule="lock-blocking-call",
            summary="blocking operation while holding a lock",
            invariant=(
                "no socket/future/queue/sleep blocking while a lock is "
                "held (condition.wait on the held lock excepted)"
            ),
        ),
        RuleSpec(
            rule="lock-requires",
            summary="`# requires-lock:` function called without the lock",
            invariant="callers of requires-lock functions hold the lock",
        ),
        RuleSpec(
            rule="lock-bad-annotation",
            summary="guarded-by/requires-lock names no known lock",
            invariant="lock annotations bind to real locks (no typos)",
        ),
    )

    def check_program(
        self, program: Program, graph: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        self._check_annotations(program, findings)
        acquired = _acquire_summaries(program, graph)
        may_block = _may_block_summaries(program, graph)
        for func in graph.all_functions():
            self._check_function(
                program, graph, func, may_block, findings
            )
        edges = lock_order_edges(program, graph, acquired)
        for cycle in find_cycles(edges):
            first_edge = (cycle[0], cycle[1]) if len(cycle) > 1 else (
                cycle[0],
                cycle[0],
            )
            path, line = edges.get(
                first_edge, next(iter(edges.values()))
            )
            if len(set(cycle)) == 1:
                message = (
                    f"lock {cycle[0]} re-acquired while already held "
                    "(self-deadlock on a non-reentrant lock)"
                )
            else:
                message = (
                    "lock-order cycle: " + " -> ".join(cycle)
                )
            mod = program.by_path.get(path)
            snippet = mod.ctx.snippet(line) if mod else ""
            findings.append(
                Finding(
                    rule="lock-order-cycle",
                    path=path,
                    line=line,
                    col=0,
                    message=message,
                    snippet=snippet,
                )
            )
        return findings

    # -- annotations --------------------------------------------------------

    def _check_annotations(
        self, program: Program, findings: list[Finding]
    ) -> None:
        for mod in program.modules:
            snippet = mod.ctx.snippet
            for cls in mod.classes.values():
                for attr, lockname in cls.guarded.items():
                    if self._class_lock_token(program, cls, lockname):
                        continue
                    line = cls.guard_lines.get(attr, cls.node.lineno)
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=line,
                            col=0,
                            message=(
                                f"guarded-by names '{lockname}' but "
                                f"{cls.name} declares no such lock"
                            ),
                            snippet=snippet(line),
                        )
                    )
            for name, lockname in mod.guarded_globals.items():
                if mod.lock_token(lockname) is None:
                    line = mod.guard_lines.get(name, 1)
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=line,
                            col=0,
                            message=(
                                f"guarded-by names '{lockname}' but the "
                                "module declares no such lock"
                            ),
                            snippet=snippet(line),
                        )
                    )
            for func in mod.all_functions:
                for lockname in func.requires:
                    if program.entry_held(func):
                        continue
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=func.node.lineno,
                            col=0,
                            message=(
                                f"requires-lock names '{lockname}' but "
                                "it resolves to no known lock"
                            ),
                            snippet=snippet(func.node.lineno),
                        )
                    )
                for var, lockname in func.guarded_locals.items():
                    if lockname in func.local_locks:
                        continue
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=func.node.lineno,
                            col=0,
                            message=(
                                f"guarded-by on local '{var}' names "
                                f"'{lockname}' but {func.name}() declares "
                                "no such local lock"
                            ),
                            snippet=snippet(func.node.lineno),
                        )
                    )
            for ann in mod.guard_annotations:
                if not ann.used:
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=ann.line,
                            col=0,
                            message=(
                                "guarded-by annotation attaches to no "
                                "attribute/global/local declaration"
                            ),
                            snippet=snippet(ann.line),
                        )
                    )
            for ann in mod.require_annotations:
                if not ann.used:
                    findings.append(
                        Finding(
                            rule="lock-bad-annotation",
                            path=mod.path,
                            line=ann.line,
                            col=0,
                            message=(
                                "requires-lock annotation attaches to no "
                                "function definition"
                            ),
                            snippet=snippet(ann.line),
                        )
                    )

    @staticmethod
    def _class_lock_token(program: Program, cls, lockname: str) -> str | None:
        token = cls.lock_token(lockname)
        if token is not None:
            return token
        for base in cls.base_names:
            for base_cls in program.resolve_class_name(base, cls.module):
                token = base_cls.lock_token(lockname)
                if token is not None:
                    return token
        return None

    # -- per-function checks ------------------------------------------------

    def _check_function(
        self,
        program: Program,
        graph: CallGraph,
        func: FunctionInfo,
        may_block: dict[int, bool],
        findings: list[Finding],
    ) -> None:
        mod = func.module
        snippet = mod.ctx.snippet
        guard_exempt = (
            func.class_info is not None and func.name in EXEMPT_METHODS
        )
        cfg = program.cfg_of(func)
        for block in cfg.blocks:
            held = block.held
            for stmt in block.stmts:
                for expr in shallow_exprs(stmt):
                    for node in ast.walk(expr):
                        if isinstance(node, ast.Attribute):
                            if not guard_exempt:
                                self._check_attr_access(
                                    program, func, node, held, findings
                                )
                        elif isinstance(node, ast.Name):
                            if not guard_exempt:
                                self._check_name_access(
                                    func, node, held, findings
                                )
                        elif isinstance(node, ast.Call):
                            self._check_call(
                                program,
                                graph,
                                func,
                                node,
                                held,
                                may_block,
                                findings,
                            )

    def _check_attr_access(
        self,
        program: Program,
        func: FunctionInfo,
        node: ast.Attribute,
        held: frozenset,
        findings: list[Finding],
    ) -> None:
        if not (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ):
            return
        cls = func.class_info
        if cls is None:
            return
        lockname = cls.guarded.get(node.attr)
        source_cls = cls
        if lockname is None:
            for base in cls.base_names:
                for base_cls in program.resolve_class_name(
                    base, cls.module
                ):
                    if node.attr in base_cls.guarded:
                        lockname = base_cls.guarded[node.attr]
                        source_cls = base_cls
                        break
                if lockname is not None:
                    break
        if lockname is None:
            return
        token = self._class_lock_token(program, source_cls, lockname)
        if token is None or token in held:
            return
        findings.append(
            Finding(
                rule="lock-guarded-attr",
                path=func.module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"self.{node.attr} is guarded-by {lockname} but "
                    f"{token} is not held here"
                ),
                snippet=func.module.ctx.snippet(node.lineno),
            )
        )

    def _check_name_access(
        self,
        func: FunctionInfo,
        node: ast.Name,
        held: frozenset,
        findings: list[Finding],
    ) -> None:
        mod = func.module
        # Module global guarded at module scope.
        lockname = mod.guarded_globals.get(node.id)
        if lockname is not None and node.id not in func.param_names():
            token = mod.lock_token(lockname)
            if token is not None and token not in held:
                findings.append(
                    Finding(
                        rule="lock-guarded-attr",
                        path=mod.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"module global {node.id} is guarded-by "
                            f"{lockname} but {token} is not held here"
                        ),
                        snippet=mod.ctx.snippet(node.lineno),
                    )
                )
            return
        # Function local of an ancestor scope (closure capture): the
        # declaring body is exempt, nested functions are checked.
        scope = func.parent
        while scope is not None:
            if node.id in scope.guarded_locals:
                guard = scope.guarded_locals[node.id]
                canon = scope.local_locks.get(guard, guard)
                token = f"{scope.name}.{canon}"
                if token not in held:
                    findings.append(
                        Finding(
                            rule="lock-guarded-attr",
                            path=mod.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"captured local {node.id} is guarded-by "
                                f"{guard} but {token} is not held here"
                            ),
                            snippet=mod.ctx.snippet(node.lineno),
                        )
                    )
                return
            scope = scope.parent

    def _check_call(
        self,
        program: Program,
        graph: CallGraph,
        func: FunctionInfo,
        node: ast.Call,
        held: frozenset,
        may_block: dict[int, bool],
        findings: list[Finding],
    ) -> None:
        mod = func.module
        targets, _ = graph.resolve_call(node, func)
        # requires-lock obligations hold regardless of our own held set.
        for target in targets:
            needed = program.entry_held(target)
            missing = needed - held
            if needed and missing:
                findings.append(
                    Finding(
                        rule="lock-requires",
                        path=mod.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{target.name}() requires "
                            f"{', '.join(sorted(missing))} but it is not "
                            "held at this call site"
                        ),
                        snippet=mod.ctx.snippet(node.lineno),
                    )
                )
        if not held:
            return
        name = call_name(node)
        if name in WAITER_NAMES and isinstance(node.func, ast.Attribute):
            tok = program.resolve_lock_expr(node.func.value, func)
            if tok is not None and tok in held:
                return  # cond.wait() on the held lock: the idiom itself
        reason = _is_blocking_name(node)
        if reason is None and name in WAITER_NAMES:
            reason = f"{name}() blocks (receiver is not the held lock)"
        if reason is None:
            for target in targets:
                if may_block.get(id(target), False):
                    reason = f"{target.name}() may block"
                    break
        if reason is not None:
            held_list = ", ".join(sorted(held))
            findings.append(
                Finding(
                    rule="lock-blocking-call",
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{reason} while holding {held_list}"
                    ),
                    snippet=mod.ctx.snippet(node.lineno),
                )
            )
