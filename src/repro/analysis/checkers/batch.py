"""The batch-plane rule: no per-query GEMM loops in the hot path.

The whole point of the cross-query batch plane (DESIGN.md, "Batch
plane") is that the coordinator and scheduler move *stacked* query
matrices, so each shard runs one matrix-matrix product per batch.  A
Python ``for`` loop issuing one ``matmul``/``apply``/``answer`` per
query inside those two modules silently undoes the batching: the code
still returns correct answers but streams the index from memory once
per query again, which is exactly the regression PR 3's serial
``answer_batch`` shipped with.

``batch-loop`` flags calls whose trailing name is one of the
per-query kernel entry points (``matmul``, ``matvec``, ``apply``,
``answer``) lexically inside any ``for``/``while`` loop or
comprehension, scoped to ``core/cluster_runtime.py`` and
``core/scheduler.py``.  Batched entry points (``answer_stacked``,
``apply_batch``, ``answer_batch``) are not flagged; a genuinely
per-worker loop that must stay (e.g. replica failover) takes a
justified suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, call_name
from repro.analysis.findings import Finding, RuleSpec

#: Per-query kernel entry points that must not sit inside a loop.
_PER_QUERY_CALLS = frozenset({"matmul", "matvec", "apply", "answer"})

#: The batch-plane modules this invariant binds in.
_HOT_FILES = frozenset({"cluster_runtime.py", "scheduler.py"})

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class BatchPlaneChecker(Checker):
    name = "batch"
    rules = (
        RuleSpec(
            rule="batch-loop",
            summary=(
                "per-query matmul/apply/answer loop in a batch-plane"
                " module; stack the queries and make one GEMM call"
            ),
            invariant=(
                "the coordinator and scheduler execute one matrix-matrix"
                " product per shard per batch, never one product per query"
            ),
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.filename in _HOT_FILES and "core" in ctx.parts

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, _LOOP_NODES):
                continue
            for node in ast.walk(loop):
                if node is loop or isinstance(node, _LOOP_NODES):
                    # Nested loops produce their own findings.
                    if node is not loop:
                        continue
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name in _PER_QUERY_CALLS:
                        findings.append(
                            self.finding(
                                ctx,
                                "batch-loop",
                                node,
                                f"per-query '{name}' call inside a loop"
                                " re-scans the index once per query; stack"
                                " the batch and call the *_stacked /"
                                " *_batch entry point once",
                            )
                        )
        # A call inside N nested loops would be reported N times; dedup
        # by position so each offending call yields one finding.
        seen: set[tuple[int, int]] = set()
        unique: list[Finding] = []
        for finding in findings:
            key = (finding.line, finding.col)
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique
