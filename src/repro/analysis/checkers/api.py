"""API hygiene for library modules: no bare asserts, no prints.

* ``assert`` disappears under ``python -O``; a validation check that
  can be compiled away is not a validation check.  Library code raises
  ``ValueError`` / ``TypeError`` instead (the repo already does this
  everywhere -- this rule keeps it that way).
* ``print()`` in a library module bypasses the logging tree, cannot be
  silenced by embedders, and -- combined with the taint rules -- is a
  standing temptation to dump ciphertext internals to a terminal.
* ``time.time()`` is wall-clock: it jumps under NTP slew and makes
  every latency measurement irreproducible.  Library code times with
  ``time.perf_counter`` (monotonic) or takes an injectable
  :data:`repro.obs.Clock`, so tests can drive a manual clock and the
  BENCH/trace artifacts never embed wall timestamps.

``cli.py`` files are exempt from the print rule (and the whole
checker): the CLI *is* the terminal.  Test code is not scanned (the
suite runs over ``src/``), so pytest-style asserts are unaffected.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, is_library_file
from repro.analysis.findings import Finding, RuleSpec


class ApiHygieneChecker(Checker):
    name = "api"
    rules = (
        RuleSpec(
            rule="api-assert",
            summary=(
                "bare assert used for validation; raise ValueError/"
                "TypeError (asserts vanish under python -O)"
            ),
            invariant="input validation survives optimized bytecode",
        ),
        RuleSpec(
            rule="api-print",
            summary="print() in a library module; use logging",
            invariant="library output is routed, filterable, and quiet",
        ),
        RuleSpec(
            rule="api-wallclock",
            summary=(
                "time.time() in a library module; use time.perf_counter"
                " or an injectable repro.obs Clock"
            ),
            invariant="timing is monotonic, reproducible, and injectable",
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return is_library_file(ctx)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    self.finding(
                        ctx,
                        "api-assert",
                        node,
                        "assert used for validation; raise an exception"
                        " (asserts are stripped under python -O)",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                findings.append(
                    self.finding(
                        ctx,
                        "api-print",
                        node,
                        "print() in library code; use the module logger",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                findings.append(
                    self.finding(
                        ctx,
                        "api-wallclock",
                        node,
                        "time.time() is wall-clock; use time.perf_counter"
                        " or accept a repro.obs Clock",
                    )
                )
        return findings
