"""Secret-taint analysis: key material must not reach observable sinks.

Tiptoe's privacy argument (Definition 2.1, Appendix D) assumes the
secret keys and the sampled noise influence *only* ciphertext contents.
A secret that reaches a branch condition, a log line, an exception
message, or a wire encoding is a side channel the proof knows nothing
about.

This checker runs a forward, intraprocedural taint pass per function:

* **sources** -- calls to key/noise generators (``gen_keys``,
  ``gen_secret``, ``keygen``, ``make_client_keys``, ``ternary_secret``,
  ``ternary_secret_signed``, ``gaussian_error``), parameters named like
  secrets (``sk``, ``secret``, ``secret_key``, ...), and attribute
  reads named ``.secret`` / ``.sk`` / ``.secret_key``;
* **propagation** -- assignments (including tuple unpacking),
  arithmetic, subscripts, f-strings, and through calls (a call with a
  tainted argument returns a tainted value);
* **declassifiers** -- structure-only reads (``.shape``, ``.ndim``,
  ``.dtype``, ``.size``, ``.nbytes``, ``.wire_bytes``, ``len()``,
  ``isinstance()``, ``type()``) drop taint: array *shapes* are public
  parameters even when contents are secret;
* **sinks** -- ``if``/``while``/``assert`` conditions (taint-branch),
  ``print``/logging calls (taint-log), exception constructions
  (taint-raise), and serialization calls -- ``encode_*``, ``dumps``,
  ``pack``, ``tobytes``, ... (taint-wire).

The pass is linear (no fixpoint over loops) and name-based; it trades
soundness for a near-zero false-positive rate on this codebase.  The
one intended exception: *encrypting* a secret and sending the
ciphertext is the protocol, and such sites carry a justified
suppression (see ``core/engine.py``).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, call_name
from repro.analysis.findings import Finding, RuleSpec

SECRET_SOURCE_CALLS = {
    "gen_keys",
    "gen_secret",
    "keygen",
    "make_client_keys",
    "ternary_secret",
    "ternary_secret_signed",
    "gaussian_error",
}

SECRET_PARAM_NAMES = {"sk", "secret", "secret_key", "secret_keys", "private_key"}

SECRET_ATTR_NAMES = {"secret", "sk", "secret_key"}

#: Attribute reads that yield public structure, not secret contents.
DECLASSIFY_ATTRS = {
    "shape",
    "ndim",
    "dtype",
    "size",
    "nbytes",
    "itemsize",
    "params",
    "wire_bytes",
    "upload_bytes",
}

#: ``struct`` header unpacking is the bytes-domain analog of ``.shape``:
#: it reads frame *metadata* (lengths, moduli, counts), not contents.
DECLASSIFY_CALLS = {
    "len",
    "isinstance",
    "type",
    "issubclass",
    "unpack",
    "unpack_from",
}

LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "critical",
    "exception",
    "log",
}

WIRE_CALL_NAMES = {
    "dumps",
    "dump",
    "serialize",
    "pack",
    "tobytes",
    "to_bytes",
    "save",
    "savez",
    "write",
    "send",
}


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            out.extend(_target_names(elt))
        return out
    return []


class SecretTaintChecker(Checker):
    name = "taint"
    rules = (
        RuleSpec(
            rule="taint-branch",
            summary="control flow (if/while/assert) depends on a secret",
            invariant="server/client behavior is query- and key-independent",
            paper="SS3.1, Appendix D",
        ),
        RuleSpec(
            rule="taint-log",
            summary="secret-derived value passed to print/logging",
            invariant="secrets never appear in logs or terminals",
            paper="Definition 2.1",
        ),
        RuleSpec(
            rule="taint-raise",
            summary="secret-derived value embedded in an exception message",
            invariant="error paths leak no key material",
            paper="Definition 2.1",
        ),
        RuleSpec(
            rule="taint-wire",
            summary="secret-derived value passed to a serialization call",
            invariant=(
                "only ciphertexts cross the wire; plaintext secrets never do"
            ),
            paper="SS6.3",
        ),
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        scopes: list[tuple[list[ast.stmt], set[str]]] = [(ctx.tree.body, set())]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                seeded = {
                    arg.arg
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                    )
                    if arg.arg in SECRET_PARAM_NAMES
                }
                scopes.append((node.body, seeded))
        for body, tainted in scopes:
            self._walk(body, set(tainted), ctx, findings)
        return findings

    # -- statement walk ---------------------------------------------------

    def _walk(
        self,
        body: list[ast.stmt],
        tainted: set[str],
        ctx: FileContext,
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate scope
            self._visit_stmt(stmt, tainted, ctx, findings)

    def _visit_stmt(
        self,
        stmt: ast.stmt,
        tainted: set[str],
        ctx: FileContext,
        findings: list[Finding],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, tainted)
        elif isinstance(stmt, ast.AugAssign):
            if self._is_tainted(stmt.value, tainted):
                tainted.update(_target_names(stmt.target))
        elif isinstance(stmt, (ast.If, ast.While)):
            if self._is_tainted(stmt.test, tainted):
                findings.append(
                    self.finding(
                        ctx,
                        "taint-branch",
                        stmt,
                        "branch condition depends on secret-derived data",
                    )
                )
        elif isinstance(stmt, ast.Assert):
            if self._is_tainted(stmt.test, tainted):
                findings.append(
                    self.finding(
                        ctx,
                        "taint-branch",
                        stmt,
                        "assert condition depends on secret-derived data",
                    )
                )
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            exc_args: list[ast.expr] = []
            if isinstance(stmt.exc, ast.Call):
                exc_args = list(stmt.exc.args) + [
                    kw.value for kw in stmt.exc.keywords
                ]
            else:
                exc_args = [stmt.exc]
            if any(self._is_tainted(a, tainted) for a in exc_args):
                findings.append(
                    self.finding(
                        ctx,
                        "taint-raise",
                        stmt,
                        "exception message embeds secret-derived data",
                    )
                )
        elif isinstance(stmt, ast.For):
            if self._is_tainted(stmt.iter, tainted):
                tainted.update(_target_names(stmt.target))

        # sink calls in this statement's own expressions (nested compound
        # statements are handled by the recursion below, exactly once)
        for _, value in ast.iter_fields(stmt):
            values = value if isinstance(value, list) else [value]
            for item in values:
                if not isinstance(item, ast.expr):
                    continue
                for node in ast.walk(item):
                    if isinstance(node, ast.Call):
                        self._check_call_sink(node, tainted, ctx, findings)

        # recurse into compound bodies with the same (shared) taint set
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                self._walk(sub, tainted, ctx, findings)
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk(handler.body, tainted, ctx, findings)

    def _assign(
        self, targets: list[ast.expr], value: ast.expr, tainted: set[str]
    ) -> None:
        names = [n for t in targets for n in _target_names(t)]
        if self._is_tainted(value, tainted):
            tainted.update(names)
        else:
            tainted.difference_update(names)

    # -- sinks -------------------------------------------------------------

    def _check_call_sink(
        self,
        node: ast.Call,
        tainted: set[str],
        ctx: FileContext,
        findings: list[Finding],
    ) -> None:
        args = list(node.args) + [kw.value for kw in node.keywords]
        any_tainted_arg = any(self._is_tainted(a, tainted) for a in args)
        name = call_name(node)

        if name == "print" and isinstance(node.func, ast.Name):
            if any_tainted_arg:
                findings.append(
                    self.finding(
                        ctx,
                        "taint-log",
                        node,
                        "print() receives secret-derived data",
                    )
                )
            return
        if isinstance(node.func, ast.Attribute) and name in LOG_METHODS:
            base = node.func.value
            if isinstance(base, ast.Name) and base.id in (
                "logging",
                "logger",
                "log",
            ):
                if any_tainted_arg:
                    findings.append(
                        self.finding(
                            ctx,
                            "taint-log",
                            node,
                            f"logging call {name}() receives secret-derived"
                            " data",
                        )
                    )
                return

        is_wire = name.startswith("encode_") or name in WIRE_CALL_NAMES
        if is_wire:
            receiver_tainted = isinstance(
                node.func, ast.Attribute
            ) and self._is_tainted(node.func.value, tainted)
            if any_tainted_arg or receiver_tainted:
                findings.append(
                    self.finding(
                        ctx,
                        "taint-wire",
                        node,
                        f"serialization call {name}() receives"
                        " secret-derived data",
                    )
                )

    # -- expression taint --------------------------------------------------

    def _is_tainted(self, node: ast.expr | None, tainted: set[str]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Attribute):
            if node.attr in DECLASSIFY_ATTRS:
                return False
            if node.attr in SECRET_ATTR_NAMES:
                return True
            return self._is_tainted(node.value, tainted)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in DECLASSIFY_CALLS:
                return False
            if name in SECRET_SOURCE_CALLS:
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in DECLASSIFY_ATTRS:
                    return False
                if self._is_tainted(node.func.value, tainted):
                    return True
            return any(
                self._is_tainted(a, tainted)
                for a in list(node.args) + [kw.value for kw in node.keywords]
            )
        if isinstance(node, ast.BinOp):
            return self._is_tainted(node.left, tainted) or self._is_tainted(
                node.right, tainted
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_tainted(node.operand, tainted)
        if isinstance(node, ast.BoolOp):
            return any(self._is_tainted(v, tainted) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._is_tainted(node.left, tainted) or any(
                self._is_tainted(c, tainted) for c in node.comparators
            )
        if isinstance(node, ast.Subscript):
            return self._is_tainted(node.value, tainted)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_tainted(e, tainted) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                self._is_tainted(v, tainted)
                for v in list(node.keys) + list(node.values)
                if v is not None
            )
        if isinstance(node, ast.IfExp):
            return self._is_tainted(node.body, tainted) or self._is_tainted(
                node.orelse, tainted
            )
        if isinstance(node, ast.JoinedStr):
            return any(
                self._is_tainted(v.value, tainted)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self._is_tainted(node.value, tainted)
        if isinstance(node, ast.Starred):
            return self._is_tainted(node.value, tainted)
        if isinstance(node, ast.Await):
            return self._is_tainted(node.value, tainted)
        return False
