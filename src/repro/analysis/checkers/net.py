"""The transport-seam rule: all request bytes cross a Transport.

The serving stack's refactor (DESIGN.md, "Deployment") makes
:class:`repro.net.transport.Transport` the only path by which request
bytes reach a service: the client-side channel addresses services by
name, and only a transport implementation may hand a frame to
``ServiceEndpoint.dispatch``.  Code that dispatches on an endpoint
object directly would run in-process only -- it silently breaks the
moment the deployment is split across machines, and it bypasses the
traffic accounting the evaluation depends on.

``net-dispatch`` therefore flags any ``*.dispatch(...)`` call outside
:mod:`repro.net` itself.  The name-based heuristic is deliberate: in
this codebase ``dispatch`` belongs to the RPC vocabulary, so a new
method of that name outside the net package deserves a second look
(and a justified suppression if it is genuinely unrelated).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext
from repro.analysis.findings import Finding, RuleSpec


class TransportSeamChecker(Checker):
    name = "net"
    rules = (
        RuleSpec(
            rule="net-dispatch",
            summary=(
                "ServiceEndpoint.dispatch called outside repro.net;"
                " route the request through an RpcChannel + Transport"
            ),
            invariant=(
                "every request crosses the transport seam, so in-process"
                " and socket deployments run the same code path"
            ),
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The seam's own implementations (loopback, the socket server)
        # are the one legitimate home of dispatch calls.
        parts = ctx.parts[:-1]
        return not ("repro" in parts and "net" in parts)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "dispatch"
            ):
                findings.append(
                    self.finding(
                        ctx,
                        "net-dispatch",
                        node,
                        "direct endpoint dispatch bypasses the transport"
                        " seam; call RpcChannel.call(service, ...) so the"
                        " request works over loopback and sockets alike",
                    )
                )
        return findings
