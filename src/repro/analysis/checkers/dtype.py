"""dtype/overflow discipline for the unsigned ring arithmetic.

The inner layer's whole correctness story (``repro/lwe/modular.py``)
is that ciphertext arrays stay in the exact unsigned dtype matching
q = 2^32 or 2^64, where C-style wraparound *is* reduction mod q.  Three
refactoring accidents break it silently:

* mixing a ring array with a bare Python int/float in arithmetic --
  under NumPy 1.x, ``uint64 + int`` promotes to ``float64`` and the
  "exact" ring product quietly loses low bits; the repo convention is
  to wrap scalars as ``dtype(c)`` first;
* calling a ring helper without its ``q_bits`` argument -- the helper
  then has no idea which ring it is reducing into;
* ``astype`` to a signed or float dtype on a ciphertext-bearing array
  -- valid only after centering/mod-switching, so it must be explicit
  and justified.

Scope: the crypto packages (``lwe/``, ``rlwe/``, ``homenc/``,
``pir/``), where "array" overwhelmingly means "ring element".  The
tracking is intraprocedural and name-based: a name becomes
*ring-tainted* when assigned from a known ring producer
(``modular.*`` helpers, ``sampling.expand_matrix``, unsigned
``astype``/``np.zeros(..., dtype=np.uint64)``, ...).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, call_name, dotted_name
from repro.analysis.findings import Finding, RuleSpec

#: Directories where the unsigned-ring convention is binding.
CRYPTO_DIRS = {"lwe", "rlwe", "homenc", "pir"}

#: modular.py helpers and the argument count that includes q_bits.
RING_HELPERS = {
    "to_ring": 2,
    "centered": 2,
    "matmul": 3,
    "matvec": 3,
    "add": 3,
    "sub": 3,
    "scale": 3,
    "round_to_message": 3,
    "encode_message": 3,
    "mod_switch": 3,
}

#: Helper names distinctive enough to match without a ``modular.`` base.
UNAMBIGUOUS_HELPERS = {
    "to_ring",
    "round_to_message",
    "encode_message",
    "mod_switch",
}

#: Call names whose result is a ring array (beyond the modular helpers).
RING_PRODUCERS = {
    "to_ring",
    "matmul",
    "matvec",
    "add",
    "sub",
    "scale",
    "encode_message",
    "mod_switch",
    "expand_matrix",
    "gaussian_error",
    "ternary_secret",
}

UNSIGNED_DTYPES = {"uint8", "uint16", "uint32", "uint64"}
SIGNED_OR_FLOAT_DTYPES = {
    "int8",
    "int16",
    "int32",
    "int64",
    "float16",
    "float32",
    "float64",
    "float128",
    "int",
    "float",
}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.Mod)


def _dtype_token(node: ast.AST) -> str:
    """Identify a dtype expression: 'uint64', 'int64', 'float', ... or ''."""
    if isinstance(node, ast.Attribute):  # np.uint64
        return node.attr
    if isinstance(node, ast.Name):  # float, int, or a local alias
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>=")  # 'uint64', '<u8' won't match: fine
    return ""


class _ScopeState:
    """Per-function name sets for the linear walk."""

    def __init__(self) -> None:
        self.ring: set[str] = set()
        self.signed: set[str] = set()
        self.dtype_vars: set[str] = set()  # names bound to dtype_for(...)


class DtypeDisciplineChecker(Checker):
    name = "dtype"
    rules = (
        RuleSpec(
            rule="dtype-mixed-arith",
            summary=(
                "ring array mixed with a bare int/float scalar or a "
                "signed array in arithmetic; wrap scalars as dtype(c)"
            ),
            invariant=(
                "ciphertext arrays never silently up-cast out of the "
                "unsigned dtype matching q"
            ),
            paper="Appendix C / modular.py contract",
        ),
        RuleSpec(
            rule="dtype-missing-qbits",
            summary="ring helper called without its q_bits argument",
            invariant="every reduction names its modulus explicitly",
            paper="Appendix C",
        ),
        RuleSpec(
            rule="dtype-signed-cast",
            summary=(
                "astype to a signed/float dtype on a ring array; only "
                "valid after centering or modulus switching"
            ),
            invariant=(
                "leaving the unsigned ring representation is an explicit, "
                "justified act"
            ),
            paper="Appendix B.1",
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(CRYPTO_DIRS.intersection(ctx.parts[:-1]))

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        modular_imports = self._modular_imports(ctx.tree)
        for scope in self._scopes(ctx.tree):
            state = _ScopeState()
            self._walk(scope, state, ctx, findings, modular_imports)
        return findings

    # -- scope handling ----------------------------------------------------

    def _scopes(self, tree: ast.Module) -> list[list[ast.stmt]]:
        """Module body plus every function body, walked independently."""
        scopes = [tree.body]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        return scopes

    def _modular_imports(self, tree: ast.Module) -> set[str]:
        """Names imported directly from repro.lwe.modular."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("lwe.modular") or node.module == "modular"
            ):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def _walk(
        self,
        body: list[ast.stmt],
        state: _ScopeState,
        ctx: FileContext,
        findings: list[Finding],
        modular_imports: set[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate scope
            self._track_assignment(stmt, state)
            for node in self._own_expr_nodes(stmt):
                if isinstance(node, ast.Call):
                    self._check_call(node, state, ctx, findings, modular_imports)
                elif isinstance(node, ast.BinOp):
                    self._check_binop(node, state, ctx, findings)
            for sub_body in self._nested_bodies(stmt):
                self._walk(sub_body, state, ctx, findings, modular_imports)

    def _own_expr_nodes(self, stmt: ast.stmt) -> list[ast.expr]:
        """Expression nodes of one statement, excluding nested bodies."""
        exprs: list[ast.expr] = []
        for _, value in ast.iter_fields(stmt):
            values = value if isinstance(value, list) else [value]
            for item in values:
                if isinstance(item, ast.expr):
                    exprs.extend(
                        n for n in ast.walk(item) if isinstance(n, ast.expr)
                    )
        return exprs

    def _nested_bodies(self, stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                bodies.append(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    # -- assignment tracking ----------------------------------------------

    def _track_assignment(self, stmt: ast.stmt, state: _ScopeState) -> None:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        kind = self._classify(value, state)
        for name in names:
            state.ring.discard(name)
            state.signed.discard(name)
            state.dtype_vars.discard(name)
            if kind == "ring":
                state.ring.add(name)
            elif kind == "signed":
                state.signed.add(name)
            elif kind == "dtype":
                state.dtype_vars.add(name)

    def _classify(self, value: ast.expr, state: _ScopeState) -> str:
        """'ring' / 'signed' / 'dtype' / '' for an assignment RHS."""
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name == "dtype_for":
                return "dtype"
            if name in RING_PRODUCERS:
                return "ring"
            if name == "centered":
                return "signed"
            dtype_kind = self._call_dtype_kind(value, state)
            if dtype_kind:
                return dtype_kind
            # dtype-constructor scalars: np.uint64(x) is a ring scalar
            if name in UNSIGNED_DTYPES:
                return "ring"
            if name in SIGNED_OR_FLOAT_DTYPES and name not in ("int", "float"):
                return "signed"
        elif isinstance(value, ast.Name):
            if value.id in state.ring:
                return "ring"
            if value.id in state.signed:
                return "signed"
            if value.id in state.dtype_vars:
                return "dtype"
        return ""

    def _call_dtype_kind(self, call: ast.Call, state: _ScopeState) -> str:
        """Classify astype()/array-constructor calls by their dtype arg."""
        name = call_name(call)
        dtype_arg: ast.expr | None = None
        if name == "astype" and call.args:
            dtype_arg = call.args[0]
        elif name in ("zeros", "ones", "empty", "full", "asarray", "array"):
            for kw in call.keywords:
                if kw.arg == "dtype":
                    dtype_arg = kw.value
        if dtype_arg is None:
            return ""
        if isinstance(dtype_arg, ast.Name) and dtype_arg.id in state.dtype_vars:
            return "ring"  # dtype=dtype_for(q_bits) result
        if isinstance(dtype_arg, ast.Call) and call_name(dtype_arg) == "dtype_for":
            return "ring"
        token = _dtype_token(dtype_arg)
        if token in UNSIGNED_DTYPES:
            return "ring"
        if token in SIGNED_OR_FLOAT_DTYPES:
            return "signed"
        return ""

    # -- rule bodies -------------------------------------------------------

    def _check_binop(
        self,
        node: ast.BinOp,
        state: _ScopeState,
        ctx: FileContext,
        findings: list[Finding],
    ) -> None:
        if not isinstance(node.op, _ARITH_OPS):
            return
        for ring_side, other in ((node.left, node.right), (node.right, node.left)):
            if not (isinstance(ring_side, ast.Name) and ring_side.id in state.ring):
                continue
            if isinstance(other, ast.Constant) and isinstance(
                other.value, (int, float)
            ):
                kind = "float" if isinstance(other.value, float) else "int"
                findings.append(
                    self.finding(
                        ctx,
                        "dtype-mixed-arith",
                        node,
                        f"ring array {ring_side.id!r} mixed with bare "
                        f"{kind} literal {other.value!r}; wrap it in the "
                        "ring dtype first (dtype_for(q_bits)(c))",
                    )
                )
                return
            if isinstance(other, ast.Name) and other.id in state.signed:
                findings.append(
                    self.finding(
                        ctx,
                        "dtype-mixed-arith",
                        node,
                        f"ring array {ring_side.id!r} mixed with "
                        f"signed/float array {other.id!r}; reduce with "
                        "to_ring(...) before ring arithmetic",
                    )
                )
                return

    def _check_call(
        self,
        node: ast.Call,
        state: _ScopeState,
        ctx: FileContext,
        findings: list[Finding],
        modular_imports: set[str],
    ) -> None:
        name = call_name(node)
        # (a) ring helper invoked without q_bits
        if name in RING_HELPERS and self._is_ring_helper_call(
            node, name, modular_imports
        ):
            has_qbits_kw = any(kw.arg == "q_bits" for kw in node.keywords)
            if not has_qbits_kw and len(node.args) < RING_HELPERS[name]:
                findings.append(
                    self.finding(
                        ctx,
                        "dtype-missing-qbits",
                        node,
                        f"{name}() called without its q_bits argument; "
                        "the ring being reduced into must be explicit",
                    )
                )
        # (b) signed/float astype on a tracked ring array
        if (
            name == "astype"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in state.ring
            and node.args
        ):
            token = _dtype_token(node.args[0])
            if token in SIGNED_OR_FLOAT_DTYPES:
                findings.append(
                    self.finding(
                        ctx,
                        "dtype-signed-cast",
                        node,
                        f"ring array {node.func.value.id!r} cast to "
                        f"{token}; use modular.centered() or justify with "
                        "a suppression",
                    )
                )

    def _is_ring_helper_call(
        self, node: ast.Call, name: str, modular_imports: set[str]
    ) -> bool:
        if isinstance(node.func, ast.Attribute):
            return dotted_name(node.func).startswith("modular.")
        if isinstance(node.func, ast.Name):
            return name in UNAMBIGUOUS_HELPERS or name in modular_imports
        return False
