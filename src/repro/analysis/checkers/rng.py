"""RNG hygiene: all randomness is explicit, seedable, and replayable.

The repo's randomness contract (``repro/lwe/sampling.py``): library
code receives an ``np.random.Generator`` from its caller and, when the
caller passes ``None``, resolves it through
:func:`repro.lwe.sampling.resolve_rng` -- which honors the
process-wide replay seed before falling back to OS entropy.  Three
patterns break the contract:

* ``np.random.default_rng()`` with no seed argument -- fresh hidden
  entropy that no replay harness can pin down;
* the stdlib ``random`` module -- global mutable state, a different
  (non-cryptographic, non-replayable) stream, and invisible to the
  seeded-Generator plumbing;
* NumPy's legacy global-state API (``np.random.seed`` /
  ``np.random.rand`` / ...) -- same problem with a NumPy accent.

``cli.py`` entry points are exempt: they are where user-provided seeds
enter the system.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    Checker,
    FileContext,
    call_name,
    dotted_name,
    is_library_file,
)
from repro.analysis.findings import Finding, RuleSpec

#: Legacy numpy global-state entry points (np.random.<name>(...)).
NUMPY_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "shuffle",
    "permutation",
    "choice",
    "normal",
    "uniform",
    "standard_normal",
}


class RngHygieneChecker(Checker):
    name = "rng"
    rules = (
        RuleSpec(
            rule="rng-unseeded",
            summary=(
                "np.random.default_rng() with no seed in library code; "
                "use repro.lwe.sampling.resolve_rng(rng) instead"
            ),
            invariant="every random stream is replayable end-to-end",
            paper="Appendix C (error/secret distributions)",
        ),
        RuleSpec(
            rule="rng-stdlib",
            summary="stdlib `random` module used; not seedable per-call",
            invariant="randomness flows through explicit np Generators",
            paper="Appendix C",
        ),
        RuleSpec(
            rule="rng-legacy",
            summary="legacy np.random global-state API used",
            invariant="randomness flows through explicit np Generators",
            paper="Appendix C",
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return is_library_file(ctx)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                "rng-stdlib",
                                node,
                                "stdlib random imported; use a seeded"
                                " np.random.Generator",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        self.finding(
                            ctx,
                            "rng-stdlib",
                            node,
                            "stdlib random imported; use a seeded"
                            " np.random.Generator",
                        )
                    )
            elif isinstance(node, ast.Call):
                self._check_call(node, ctx, findings)
        return findings

    def _check_call(
        self, node: ast.Call, ctx: FileContext, findings: list[Finding]
    ) -> None:
        name = call_name(node)
        dotted = dotted_name(node.func) if not isinstance(
            node.func, ast.Name
        ) else node.func.id
        if name == "default_rng" and not node.args and not node.keywords:
            findings.append(
                self.finding(
                    ctx,
                    "rng-unseeded",
                    node,
                    "unseeded default_rng() in library code; accept an rng"
                    " parameter and resolve it via sampling.resolve_rng()",
                )
            )
            return
        if (
            dotted.startswith("np.random.") or dotted.startswith("numpy.random.")
        ) and name in NUMPY_LEGACY:
            findings.append(
                self.finding(
                    ctx,
                    "rng-legacy",
                    node,
                    f"legacy global-state np.random.{name}(); use an"
                    " explicit np.random.Generator",
                )
            )
