"""Interprocedural secret taint: PR-1's sources/sinks across calls.

The per-file :class:`SecretTaintChecker` is linear and intraprocedural:
a secret that crosses *one* function call boundary -- returned through
a helper, or passed into a wrapper that logs -- is invisible to it.
This checker closes that gap with call-graph **summaries** computed to
a fixpoint:

* ``returns_secret`` -- the function may return secret-derived data
  (its own sources, or a callee's secret return);
* ``taint_through`` -- parameter positions whose taint flows to the
  return value (``def clamp(sk): return sk % q``);
* ``param_to_sink`` -- parameter positions that reach a log / raise /
  wire / branch sink inside the function (or transitively through a
  callee), with the sink kind and location.

Findings use a small label domain so nothing PR-1 already reports is
duplicated: ``S`` marks locally-sourced secrets (exactly PR-1's
notion), ``C`` marks secrets that arrived *through a resolved call*,
``P<i>`` tracks parameter flow for summaries.  A sink is reported here
(``itaint-*``) only when its taint includes ``C`` without ``S`` --
i.e. only flows a per-file pass cannot see -- or when a call site
passes secret data into a callee whose summary sinks that parameter.

Dataflow runs on the CFG with a worklist fixpoint, so loop-carried
taint (another PR-1 blind spot) converges instead of being missed.
"""

from __future__ import annotations

import ast

from repro.analysis.base import ProgramChecker, call_name
from repro.analysis.findings import Finding, RuleSpec
from repro.analysis.checkers.taint import (
    DECLASSIFY_ATTRS,
    DECLASSIFY_CALLS,
    LOG_METHODS,
    SECRET_ATTR_NAMES,
    SECRET_PARAM_NAMES,
    SECRET_SOURCE_CALLS,
    WIRE_CALL_NAMES,
)
from repro.analysis.ir.callgraph import CallGraph
from repro.analysis.ir.cfg import shallow_exprs
from repro.analysis.ir.dataflow import solve_forward, union_join
from repro.analysis.ir.program import FunctionInfo, Program

#: Taint labels: locally-sourced secret / call-returned secret.
S = "S"
C = "C"

EMPTY: frozenset = frozenset()

#: Upper bound on summary fixpoint sweeps (call-graph depth bound;
#: real code converges in 2-4).
MAX_SWEEPS = 20


class Summary:
    __slots__ = ("returns_secret", "taint_through", "param_to_sink")

    def __init__(self):
        self.returns_secret = False
        self.taint_through: set[int] = set()
        # param index -> (sink_kind, description) of the *first* sink.
        self.param_to_sink: dict[int, tuple[str, str]] = {}

    def snapshot(self) -> tuple:
        return (
            self.returns_secret,
            frozenset(self.taint_through),
            frozenset(self.param_to_sink),
        )


class _FunctionPass:
    """One dataflow pass over one function against current summaries."""

    def __init__(
        self,
        program: Program,
        graph: CallGraph,
        func: FunctionInfo,
        summaries: dict[int, Summary],
    ):
        self.program = program
        self.graph = graph
        self.func = func
        self.summaries = summaries
        self.params = func.param_names()
        self.param_index = {p: i for i, p in enumerate(self.params)}
        self.sinks: list[tuple[str, ast.AST, str, frozenset]] = []

    # -- environment --------------------------------------------------------

    def entry_env(self) -> dict:
        env: dict[str, frozenset] = {}
        for name, idx in self.param_index.items():
            labels = {f"P{idx}"}
            if name in SECRET_PARAM_NAMES:
                labels.add(S)
            env[name] = frozenset(labels)
        return env

    def run(self) -> tuple[Summary, list]:
        cfg = self.program.cfg_of(self.func)
        in_states, out_states = solve_forward(
            cfg, self._transfer, self.entry_env(), union_join
        )
        # Final reporting walk: sinks with their converged in-state.
        self.sinks = []
        summary = Summary()
        for block in cfg.blocks:
            env = dict(in_states.get(block.id, {}))
            for stmt in block.stmts:
                self._stmt(stmt, env, summary, record_sinks=True)
        return summary, self.sinks

    def _transfer(self, block, state: dict) -> dict:
        env = dict(state)
        dummy = Summary()
        for stmt in block.stmts:
            self._stmt(stmt, env, dummy, record_sinks=False)
        return env

    # -- statements ---------------------------------------------------------

    def _stmt(
        self,
        stmt: ast.stmt,
        env: dict,
        summary: Summary,
        record_sinks: bool,
    ) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._labels(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, labels, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._labels(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._labels(stmt.value, env) | self._labels(
                stmt.target, env
            )
            self._bind(stmt.target, labels, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._sink(
                "branch", stmt, self._labels(stmt.test, env),
                "condition", summary, record_sinks,
            )
        elif isinstance(stmt, ast.Assert):
            self._sink(
                "branch", stmt, self._labels(stmt.test, env),
                "assert condition", summary, record_sinks,
            )
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            if isinstance(stmt.exc, ast.Call):
                args = list(stmt.exc.args) + [
                    kw.value for kw in stmt.exc.keywords
                ]
            else:
                args = [stmt.exc]
            labels = EMPTY
            for arg in args:
                labels |= self._labels(arg, env)
            self._sink(
                "raise", stmt, labels, "exception message",
                summary, record_sinks,
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._labels(stmt.iter, env), env)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            labels = self._labels(stmt.value, env)
            if labels & {S, C}:
                summary.returns_secret = True
            for label in labels:
                if label.startswith("P"):
                    summary.taint_through.add(int(label[1:]))
        # Sink calls inside this statement's own expressions.
        for expr in shallow_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._call_sinks(node, env, summary, record_sinks)

    def _bind(self, target: ast.expr, labels: frozenset, env: dict) -> None:
        if isinstance(target, ast.Name):
            if labels:
                env[target.id] = labels
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                self._bind(elt, labels, env)

    # -- sinks --------------------------------------------------------------

    def _sink(
        self,
        kind: str,
        node: ast.AST,
        labels: frozenset,
        what: str,
        summary: Summary,
        record_sinks: bool,
    ) -> None:
        if not labels:
            return
        # Branch sinks do not enter summaries: almost every function
        # validates its arguments, so forwarding "param reaches a
        # branch" to call sites would flag every call passing secret
        # data to any function -- pure noise.  Branch findings stay
        # local (a returned secret used in a condition *here*).
        if kind != "branch":
            for label in labels:
                if label.startswith("P"):
                    summary.param_to_sink.setdefault(
                        int(label[1:]), (kind, what)
                    )
        if record_sinks and C in labels and S not in labels:
            self.sinks.append((kind, node, what, labels))

    def _call_sinks(
        self,
        node: ast.Call,
        env: dict,
        summary: Summary,
        record_sinks: bool,
    ) -> None:
        args = list(node.args) + [kw.value for kw in node.keywords]
        arg_labels = EMPTY
        for arg in args:
            arg_labels |= self._labels(arg, env)
        name = call_name(node)

        if name == "print" and isinstance(node.func, ast.Name):
            self._sink(
                "log", node, arg_labels, "print()", summary, record_sinks
            )
            return
        if isinstance(node.func, ast.Attribute) and name in LOG_METHODS:
            base = node.func.value
            if isinstance(base, ast.Name) and base.id in (
                "logging",
                "logger",
                "log",
            ):
                self._sink(
                    "log", node, arg_labels, f"logging {name}()",
                    summary, record_sinks,
                )
                return
        if name.startswith("encode_") or name in WIRE_CALL_NAMES:
            labels = arg_labels
            if isinstance(node.func, ast.Attribute):
                labels = labels | self._labels(node.func.value, env)
            self._sink(
                "wire", node, labels, f"serialization {name}()",
                summary, record_sinks,
            )

        # Passing secret data into a callee that sinks that parameter.
        targets, is_method = self.graph.resolve_call(node, self.func)
        if not targets:
            return
        offset = 1 if is_method else 0
        positional = list(node.args)
        for target in targets:
            callee_summary = self.summaries.get(id(target))
            if callee_summary is None or not callee_summary.param_to_sink:
                continue
            callee_params = target.param_names()
            for i, arg in enumerate(positional):
                idx = i + offset
                self._forward_to_sink(
                    target, callee_summary, idx, arg, env, node,
                    summary, record_sinks,
                )
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                if kw.arg in callee_params:
                    idx = callee_params.index(kw.arg)
                    self._forward_to_sink(
                        target, callee_summary, idx, kw.value, env, node,
                        summary, record_sinks,
                    )

    def _forward_to_sink(
        self,
        target: FunctionInfo,
        callee_summary: Summary,
        idx: int,
        arg: ast.expr,
        env: dict,
        node: ast.Call,
        summary: Summary,
        record_sinks: bool,
    ) -> None:
        hit = callee_summary.param_to_sink.get(idx)
        if hit is None:
            return
        kind, what = hit
        labels = self._labels(arg, env)
        if not labels:
            return
        # Propagate into our own summary (wrapper functions).
        for label in labels:
            if label.startswith("P"):
                summary.param_to_sink.setdefault(int(label[1:]), (kind, what))
        if (
            record_sinks
            and labels & {S, C}
            and not self._pr1_flags_here(node, kind)
        ):
            self.sinks.append(
                (
                    kind,
                    node,
                    f"{target.name}() forwards its argument to a "
                    f"{kind} sink ({what})",
                    labels,
                )
            )

    @staticmethod
    def _pr1_flags_here(node: ast.Call, kind: str) -> bool:
        """True when the per-file pass already reports this call as the
        same kind of sink -- the call's *name* is itself a sink, so a
        forwarded finding would duplicate (and double-pragma) it."""
        name = call_name(node)
        if kind == "wire":
            return name.startswith("encode_") or name in WIRE_CALL_NAMES
        if kind == "log":
            if name == "print" and isinstance(node.func, ast.Name):
                return True
            return (
                isinstance(node.func, ast.Attribute)
                and name in LOG_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("logging", "logger", "log")
            )
        return False

    # -- expressions --------------------------------------------------------

    def _labels(self, node: ast.expr | None, env: dict) -> frozenset:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            if node.attr in DECLASSIFY_ATTRS:
                return EMPTY
            if node.attr in SECRET_ATTR_NAMES:
                return frozenset({S})
            return self._labels(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_labels(node, env)
        if isinstance(node, ast.BinOp):
            return self._labels(node.left, env) | self._labels(
                node.right, env
            )
        if isinstance(node, ast.UnaryOp):
            return self._labels(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self._labels(value, env)
            return out
        if isinstance(node, ast.Compare):
            out = self._labels(node.left, env)
            for comp in node.comparators:
                out |= self._labels(comp, env)
            return out
        if isinstance(node, ast.Subscript):
            return self._labels(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out |= self._labels(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for sub in list(node.keys) + list(node.values):
                if sub is not None:
                    out |= self._labels(sub, env)
            return out
        if isinstance(node, ast.IfExp):
            return self._labels(node.body, env) | self._labels(
                node.orelse, env
            )
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._labels(value.value, env)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._labels(node.value, env)
        if isinstance(node, ast.Starred):
            return self._labels(node.value, env)
        if isinstance(node, ast.Await):
            return self._labels(node.value, env)
        return EMPTY

    def _call_labels(self, node: ast.Call, env: dict) -> frozenset:
        name = call_name(node)
        if name in DECLASSIFY_CALLS:
            return EMPTY
        if name in SECRET_SOURCE_CALLS:
            return frozenset({S})
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in DECLASSIFY_ATTRS:
                return EMPTY
        args = list(node.args) + [kw.value for kw in node.keywords]
        arg_labels = EMPTY
        for arg in args:
            arg_labels |= self._labels(arg, env)
        targets, is_method = self.graph.resolve_call(node, self.func)
        if targets:
            out = EMPTY
            offset = 1 if is_method else 0
            for target in targets:
                callee_summary = self.summaries.get(id(target))
                if callee_summary is None:
                    continue
                if callee_summary.returns_secret:
                    out |= frozenset({C})
                if callee_summary.taint_through:
                    callee_params = target.param_names()
                    for i, arg in enumerate(node.args):
                        if i + offset in callee_summary.taint_through:
                            out |= self._labels(arg, env)
                    for kw in node.keywords:
                        if kw.arg in callee_params and (
                            callee_params.index(kw.arg)
                            in callee_summary.taint_through
                        ):
                            out |= self._labels(kw.value, env)
            return out
        # Unresolved call: PR-1 semantics -- taint flows through, and a
        # tainted receiver taints the result.
        if isinstance(node.func, ast.Attribute) and self._labels(
            node.func.value, env
        ):
            return arg_labels | self._labels(node.func.value, env)
        return arg_labels


class InterproceduralTaintChecker(ProgramChecker):
    name = "itaint"
    rules = (
        RuleSpec(
            rule="itaint-branch",
            summary="secret crosses a call boundary into a branch condition",
            invariant="behavior is key-independent even across helpers",
            paper="SS3.1, Appendix D",
        ),
        RuleSpec(
            rule="itaint-log",
            summary="secret crosses a call boundary into print/logging",
            invariant="secrets never reach logs, even via helper returns",
            paper="Definition 2.1",
        ),
        RuleSpec(
            rule="itaint-raise",
            summary="secret crosses a call boundary into an exception",
            invariant="error paths leak no key material across calls",
            paper="Definition 2.1",
        ),
        RuleSpec(
            rule="itaint-wire",
            summary="secret crosses a call boundary into serialization",
            invariant="plaintext secrets never reach the wire via helpers",
            paper="SS6.3",
        ),
    )

    def check_program(
        self, program: Program, graph: CallGraph
    ) -> list[Finding]:
        funcs = [
            f for mod in program.modules for f in mod.all_functions
        ]
        summaries: dict[int, Summary] = {id(f): Summary() for f in funcs}
        for _ in range(MAX_SWEEPS):
            changed = False
            for func in funcs:
                new_summary, _ = _FunctionPass(
                    program, graph, func, summaries
                ).run()
                if (
                    new_summary.snapshot()
                    != summaries[id(func)].snapshot()
                ):
                    summaries[id(func)] = new_summary
                    changed = True
                else:
                    summaries[id(func)] = new_summary
            if not changed:
                break
        findings: list[Finding] = []
        for func in funcs:
            _, sinks = _FunctionPass(
                program, graph, func, summaries
            ).run()
            for kind, node, what, _labels in sinks:
                findings.append(
                    Finding(
                        rule=f"itaint-{kind}",
                        path=func.module.path,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        message=(
                            f"secret-derived data (through a call chain) "
                            f"reaches {what}"
                        ),
                        snippet=func.module.ctx.snippet(
                            getattr(node, "lineno", 1)
                        ),
                    )
                )
        return findings
