"""The kernel-seam rule: every hot ring product crosses a backend.

The kernel refactor (DESIGN.md, "Kernel plane") makes
:mod:`repro.lwe.backends` the only place the stacked modular GEMM is
executed: serving code asks the registry for a plan
(``get_backend(name).plan(...)``) and calls ``plan.matmul`` /
``plan.matvec``.  Code that builds a
:class:`~repro.lwe.modular.StackedPlan` directly, or multiplies a ring
matrix with ``@`` / ``np.matmul``, silently pins itself to one
execution strategy -- it ignores the configured backend, the tuned
sidecar ``KernelPlan``, and the kernel timers the benchmarks read.

Two shapes are flagged outside the seam (the backends package plus
:mod:`repro.lwe.modular` itself, which implements the one shared
kernel):

* ``StackedPlan(...)`` / ``StackedPlan.from_metadata(...)``
  construction -- ask the registry for a plan instead.
* ``np.matmul(...)`` or the ``@`` operator where an operand's name
  mentions ``ring``/``stacked``/``limb`` -- this codebase's vocabulary
  for Z_{2^k} matrices.  Float-geometry products (embeddings,
  centroids, PCA) multiply freely; they are not ring data and never
  match.  ``modular.matmul`` remains legal: it is the exact
  single-shot product (hint builds, ingest deltas), not the batched
  hot path the backends own.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, dotted_name
from repro.analysis.findings import Finding, RuleSpec

#: Identifier fragments that mark an operand as ring-domain data.
_RING_WORDS = ("ring", "stacked", "limb")


def _names_ring(node: ast.AST) -> bool:
    """Does this operand's identifier read as a ring matrix?"""
    if isinstance(node, ast.Name):
        text = node.id
    elif isinstance(node, ast.Attribute):
        text = node.attr
    elif isinstance(node, ast.Call):
        return _names_ring(node.func)
    elif isinstance(node, ast.Subscript):
        return _names_ring(node.value)
    else:
        return False
    lowered = text.lower()
    return any(word in lowered for word in _RING_WORDS)


def _is_stacked_plan_ctor(call: ast.Call) -> bool:
    """``StackedPlan(...)`` or ``[modular.]StackedPlan.from_metadata(...)``."""
    dotted = dotted_name(call.func)
    if isinstance(call.func, ast.Name):
        return call.func.id == "StackedPlan"
    if not dotted:
        return False
    parts = dotted.split(".")
    if parts[-1] == "StackedPlan":
        return True
    return len(parts) >= 2 and parts[-2] == "StackedPlan" and (
        parts[-1] == "from_metadata"
    )


class KernelSeamChecker(Checker):
    name = "kernelseam"
    rules = (
        RuleSpec(
            rule="kernel-seam",
            summary=(
                "hot ring product executed outside repro.lwe.backends;"
                " request a plan from the backend registry"
            ),
            invariant=(
                "every stacked modular GEMM flows through a backend"
                " plan, so the configured/tuned kernel actually runs"
            ),
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The seam itself: the backends package, and modular.py, which
        # is the kernel those backends execute.
        parts = ctx.parts[:-1]
        if "repro" in parts and "lwe" in parts:
            if "backends" in parts or ctx.filename == "modular.py":
                return False
        return True

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_stacked_plan_ctor(node):
                findings.append(
                    self.finding(
                        ctx,
                        "kernel-seam",
                        node,
                        "direct StackedPlan construction pins the"
                        " reference kernel; call"
                        " get_backend(name).plan(matrix, q_bits, ...)"
                        " so the configured backend runs",
                    )
                )
            elif isinstance(node, ast.Call) and dotted_name(node.func) in (
                "np.matmul",
                "numpy.matmul",
            ):
                if any(_names_ring(arg) for arg in node.args[:2]):
                    findings.append(
                        self.finding(
                            ctx,
                            "kernel-seam",
                            node,
                            "np.matmul on a ring matrix wraps at the"
                            " float precision limit and bypasses the"
                            " kernel seam; use a backend plan (or"
                            " modular.matmul for a one-shot product)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                if _names_ring(node.left) or _names_ring(node.right):
                    findings.append(
                        self.finding(
                            ctx,
                            "kernel-seam",
                            node,
                            "`@` on a ring matrix bypasses the kernel"
                            " seam (and is inexact past 2^53); use a"
                            " backend plan or modular.matmul",
                        )
                    )
        return findings
