"""The precompute-plane rule: no ahead-of-time crypto on the query path.

Tiptoe's latency numbers (PAPER.md SS6.3, Table 7) assume the
query-independent work -- server-side hint preprocessing and the NTT
table builds behind it -- happens *before* the user types a query.
The precompute plane (DESIGN.md, "Precompute plane") exists so that
``client.search`` and the ranking hot path only ever touch
already-prepared state: pooled tokens, the sidecar's hint-NTT tables,
and the process-wide ``ntt_context`` registry.

``hot-path-precompute`` flags calls whose trailing name is one of the
ahead-of-time entry points (``preprocess``, ``evaluate_hint``,
``evaluate_hint_batch``, ``hint_ntt_table``, or a bare ``NttContext``
construction) lexically inside ``core/client.py`` or
``core/ranking.py``.  Those calls re-run forward NTTs or matrix
preprocessing inline, which silently puts seconds of work back on the
latency-critical path while still returning correct answers.  Online
code needing a context goes through the cached ``ntt_context(n, p)``
registry accessor; anything that genuinely must preprocess inline
takes a justified suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, FileContext, call_name
from repro.analysis.findings import Finding, RuleSpec

#: Ahead-of-time entry points that must not run on the query path.
_PRECOMPUTE_CALLS = frozenset(
    {
        "preprocess",
        "evaluate_hint",
        "evaluate_hint_batch",
        "hint_ntt_table",
        "NttContext",
    }
)

#: The online-path modules this invariant binds in.
_HOT_FILES = frozenset({"client.py", "ranking.py"})


class HotPathPrecomputeChecker(Checker):
    name = "hotpath"
    rules = (
        RuleSpec(
            rule="hot-path-precompute",
            summary=(
                "ahead-of-time crypto (preprocess/evaluate_hint/"
                "NttContext) called on the online query path"
            ),
            invariant=(
                "the client and ranking hot paths consume precomputed"
                " state (pooled tokens, sidecar hint-NTT tables, the"
                " ntt_context registry); query-independent work never"
                " runs inline"
            ),
        ),
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.filename in _HOT_FILES and "core" in ctx.parts

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            trailing = name.rsplit(".", 1)[-1]
            if trailing in _PRECOMPUTE_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        "hot-path-precompute",
                        node,
                        f"'{trailing}' is ahead-of-time work (forward"
                        " NTTs / matrix preprocessing); run it at index"
                        " build or token-mint time and consume the"
                        " cached result here",
                    )
                )
        return findings
