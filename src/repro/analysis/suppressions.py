"""Per-line suppression pragmas with mandatory justifications.

Syntax (in a comment, on the flagged line or standing alone on the
line directly above it)::

    # tiptoe-lint: disable=rule-a,rule-b -- reason the finding is safe
    # tiptoe-lint: disable=all -- reason

The reason after ``--`` is required: a pragma without one does *not*
suppress anything.  That keeps every accepted risk documented in place
-- the repo-wide baseline (``--baseline``) lists each suppression with
its reason so reviews can diff them.

Comments are located with :mod:`tokenize`, so a ``#`` inside a string
literal never reads as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_PRAGMA = re.compile(
    r"#\s*tiptoe-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed pragma."""

    line: int
    rules: frozenset  # empty frozenset means "all"
    reason: str
    standalone: bool  # comment-only line: also covers the next line

    def covers(self, rule: str, line: int) -> bool:
        if line != self.line and not (self.standalone and line == self.line + 1):
            return False
        return not self.rules or rule in self.rules


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every well-formed, justified pragma from a source file."""
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(tok.string)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            continue  # unjustified pragmas are inert by design
        names = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        rules = frozenset() if "all" in names else frozenset(names)
        standalone = tok.line.strip().startswith("#")
        out.append(
            Suppression(
                line=tok.start[0],
                rules=rules,
                reason=reason,
                standalone=standalone,
            )
        )
    return out


def find_cover(
    suppressions: list[Suppression], rule: str, line: int
) -> Suppression | None:
    """The pragma covering (rule, line), if any."""
    for sup in suppressions:
        if sup.covers(rule, line):
            return sup
    return None
