"""The tiptoe-lint command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.checkers import all_rules, build_checkers
from repro.analysis.runner import AnalysisReport, analyze_paths


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "tiptoe-lint: check the crypto invariants (dtype/overflow "
            "discipline, secret taint, RNG hygiene, API hygiene) that "
            "this reproduction's correctness and privacy rest on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="emit the counts-per-rule baseline format "
        "(see benchmarks/out/lint_baseline.txt)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings in human output",
    )
    return parser


def _render_human(report: AnalysisReport, show_suppressed: bool) -> str:
    lines = []
    for finding in report.findings:
        lines.append(finding.render())
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(finding.render())
    lines.append(
        f"{report.files_scanned} files scanned: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _render_baseline(report: AnalysisReport) -> str:
    """The diff-friendly repo baseline recorded under benchmarks/out/."""
    lines = [
        "# tiptoe-lint baseline",
        "# regenerate: PYTHONPATH=src python -m repro.analysis src/ --baseline",
        f"files scanned: {report.files_scanned}",
        f"active findings: {len(report.findings)}",
        f"suppressed findings: {len(report.suppressed)}",
        "",
        "active counts per rule:",
    ]
    counts = report.counts()
    if counts:
        lines.extend(f"  {rule}: {n}" for rule, n in counts.items())
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("suppressed counts per rule:")
    sup_counts = report.counts(suppressed=True)
    if sup_counts:
        lines.extend(f"  {rule}: {n}" for rule, n in sup_counts.items())
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("suppressions (location, rule, reason):")
    if report.suppressed:
        for f in report.suppressed:
            lines.append(f"  {f.location()} {f.rule} -- {f.suppress_reason}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for spec in all_rules():
            print(spec.describe())
            print(f"    invariant: {spec.invariant}")
        return 0

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {spec.rule for spec in all_rules()}
        unknown = rules - known
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    checkers = build_checkers(rules)

    try:
        report = analyze_paths(list(args.paths), checkers)
    except (FileNotFoundError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if rules is not None:
        report.findings = [f for f in report.findings if f.rule in rules]
        report.suppressed = [f for f in report.suppressed if f.rule in rules]

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    elif args.baseline:
        print(_render_baseline(report))
    else:
        print(_render_human(report, args.show_suppressed))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
