"""The tiptoe-lint command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.checkers import (
    all_rules,
    build_checkers,
    build_program_checkers,
)
from repro.analysis.runner import AnalysisReport, analyze_paths, discover_files


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "tiptoe-lint: check the crypto invariants (dtype/overflow "
            "discipline, secret taint, RNG hygiene, API hygiene) that "
            "this reproduction's correctness and privacy rest on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="emit the counts-per-rule baseline format "
        "(see benchmarks/out/lint_baseline.txt)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings in human output",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed vs. --base-ref "
        "plus their call-graph dependents (the whole program is still "
        "parsed so cross-file resolution stays complete)",
    )
    parser.add_argument(
        "--base-ref",
        default="HEAD",
        help="git ref to diff against for --changed-only (default: HEAD)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the analysis wall clock exceeds this "
        "budget -- the CI gate's rot detector",
    )
    return parser


def _changed_files(base_ref: str) -> set[str] | None:
    """Paths changed vs. ``base_ref`` plus untracked files, absolute.

    Returns None when git is unavailable (callers fall back to a full
    report rather than silently reporting nothing).
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", base_ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    out = set()
    for rel in (diff + untracked).splitlines():
        rel = rel.strip()
        if rel.endswith(".py"):
            out.add(str(Path(top) / rel))
    return out


def _keep_paths_for_changed(
    paths: list[str], base_ref: str
) -> set[str] | None:
    """Resolve --changed-only to the set of report-worthy file paths:
    the changed files themselves plus every module whose call graph
    reaches into them."""
    changed = _changed_files(base_ref)
    if changed is None:
        return None
    from repro.analysis.ir.callgraph import CallGraph
    from repro.analysis.ir.program import Program, module_name_for

    files = discover_files(list(paths))
    resolved = {str(Path(f).resolve()): str(f) for f in files}
    changed_local = {
        resolved[c] for c in changed if c in resolved
    }
    if not changed_local:
        return set()
    program = Program.load(files)
    graph = CallGraph(program)
    changed_modules = {module_name_for(p) for p in changed_local}
    affected = graph.reverse_dependents(changed_modules)
    return {
        str(f)
        for f in files
        if module_name_for(str(f)) in affected
        or str(f) in changed_local
    }


def _render_human(report: AnalysisReport, show_suppressed: bool) -> str:
    lines = []
    for finding in report.findings:
        lines.append(finding.render())
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(finding.render())
    lines.append(
        f"{report.files_scanned} files scanned: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _render_baseline(report: AnalysisReport) -> str:
    """The diff-friendly repo baseline recorded under benchmarks/out/."""
    lines = [
        "# tiptoe-lint baseline",
        "# regenerate: PYTHONPATH=src python -m repro.analysis src/ --baseline",
        f"files scanned: {report.files_scanned}",
        f"active findings: {len(report.findings)}",
        f"suppressed findings: {len(report.suppressed)}",
        "",
        "active counts per rule:",
    ]
    counts = report.counts()
    if counts:
        lines.extend(f"  {rule}: {n}" for rule, n in counts.items())
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("suppressed counts per rule:")
    sup_counts = report.counts(suppressed=True)
    if sup_counts:
        lines.extend(f"  {rule}: {n}" for rule, n in sup_counts.items())
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("suppressions (location, rule, reason):")
    if report.suppressed:
        for f in report.suppressed:
            lines.append(f"  {f.location()} {f.rule} -- {f.suppress_reason}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for spec in all_rules():
            print(spec.describe())
            print(f"    invariant: {spec.invariant}")
        return 0

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {spec.rule for spec in all_rules()}
        unknown = rules - known
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    checkers = build_checkers(rules)
    program_checkers = build_program_checkers(rules)

    started = time.monotonic()
    keep_paths: set[str] | None = None
    if args.changed_only:
        try:
            keep_paths = _keep_paths_for_changed(
                list(args.paths), args.base_ref
            )
        except (FileNotFoundError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        report = analyze_paths(
            list(args.paths),
            checkers,
            program_checkers=program_checkers,
            keep_paths=keep_paths,
        )
    except (FileNotFoundError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started
    if rules is not None:
        report.findings = [f for f in report.findings if f.rule in rules]
        report.suppressed = [f for f in report.suppressed if f.rule in rules]

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    elif args.baseline:
        print(_render_baseline(report))
    else:
        print(_render_human(report, args.show_suppressed))
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"analysis took {elapsed:.1f}s, over the "
            f"{args.max_seconds:.1f}s budget",
            file=sys.stderr,
        )
        return 1
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
