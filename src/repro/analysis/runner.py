"""File discovery, per-file analysis, and report aggregation."""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import Checker, FileContext, ProgramChecker
from repro.analysis.findings import Finding
from repro.analysis.suppressions import find_cover, parse_suppressions

#: Rule id reserved for files the parser rejects.
PARSE_ERROR_RULE = "parse-error"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class AnalysisReport:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self, *, suppressed: bool = False) -> dict[str, int]:
        pool = self.suppressed if suppressed else self.findings
        counter: Counter = Counter(f.rule for f in pool)
        return dict(sorted(counter.items()))

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": self.counts(),
            "suppressed_counts": self.counts(suppressed=True),
        }


def analyze_file(path: str | Path, checkers: list[Checker]) -> list[Finding]:
    """Run every applicable checker over one file.

    Returns *all* findings, with covered ones marked ``suppressed``
    (callers split them).  A syntactically invalid file yields a single
    :data:`PARSE_ERROR_RULE` finding.
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=str(path), source=source, tree=tree)
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for checker in checkers:
        if not checker.applies_to(ctx):
            continue
        for finding in checker.check(ctx):
            cover = find_cover(suppressions, finding.rule, finding.line)
            if cover is not None:
                finding.suppressed = True
                finding.suppress_reason = cover.reason
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.append(sub)
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return out


def analyze_paths(
    paths: list[str | Path],
    checkers: list[Checker],
    program_checkers: list[ProgramChecker] | None = None,
    keep_paths: set[str] | None = None,
) -> AnalysisReport:
    """Analyze every file under the given paths.

    Per-file checkers run file by file; whole-program checkers then run
    once over the full parsed set.  Program-checker findings route
    through the same per-file suppression pragmas as everything else.

    ``keep_paths`` (used by ``--changed-only``) restricts *reported*
    findings to those files while the whole program is still parsed, so
    call-graph resolution stays complete.
    """
    report = AnalysisReport()
    contexts: list[FileContext] = []
    suppressions_by_path: dict[str, list] = {}

    def wanted(path: str) -> bool:
        return keep_paths is None or path in keep_paths

    for path in discover_files(paths):
        report.files_scanned += 1
        source = Path(path).read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            if wanted(str(path)):
                report.findings.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
            continue
        ctx = FileContext(path=str(path), source=source, tree=tree)
        contexts.append(ctx)
        suppressions = parse_suppressions(source)
        suppressions_by_path[ctx.path] = suppressions
        if not wanted(ctx.path):
            continue
        for checker in checkers:
            if not checker.applies_to(ctx):
                continue
            for finding in checker.check(ctx):
                _route(finding, suppressions, report)

    if program_checkers and contexts:
        # Imported lazily: the IR layer imports base, so a module-level
        # import here would be circular through the package __init__.
        from repro.analysis.ir.callgraph import CallGraph
        from repro.analysis.ir.program import Program

        program = Program.from_contexts(contexts)
        graph = CallGraph(program)
        for checker in program_checkers:
            for finding in checker.check_program(program, graph):
                if not wanted(finding.path):
                    continue
                _route(
                    finding,
                    suppressions_by_path.get(finding.path, []),
                    report,
                )

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _route(finding: Finding, suppressions: list, report: AnalysisReport) -> None:
    cover = find_cover(suppressions, finding.rule, finding.line)
    if cover is not None:
        finding.suppressed = True
        finding.suppress_reason = cover.reason
        report.suppressed.append(finding)
    else:
        report.findings.append(finding)
