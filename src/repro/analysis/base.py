"""The checker framework: file context plus the Checker interface."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.analysis.findings import Finding, RuleSpec


@dataclass
class FileContext:
    """Everything a checker may need about one parsed source file."""

    path: str  # as given on the command line / to the runner
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, for directory-scoped checkers."""
        return PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Checker:
    """Base class: subclasses declare rules and visit one file's AST.

    ``rules`` documents every rule id the checker may emit (the CLI's
    ``--list-rules`` and the SECURITY.md catalog are generated from
    these).  ``applies_to`` lets a checker scope itself to the
    directories where its invariant holds (e.g. the dtype rules only
    bind inside the crypto packages).
    """

    name: str = "checker"
    rules: tuple[RuleSpec, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def finding(
        self, ctx: FileContext, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet(line),
        )


class ProgramChecker:
    """Base class for whole-program analyses.

    Unlike :class:`Checker`, which sees one file at a time, a program
    checker receives the fully-indexed :class:`~repro.analysis.ir.
    program.Program` and its :class:`~repro.analysis.ir.callgraph.
    CallGraph` and may emit findings against any file in the program.
    Findings still flow through the per-file suppression machinery --
    a ``# tiptoe-lint: disable=...`` pragma in the file a finding
    lands in covers it exactly like a per-file rule.

    (Annotated loosely to avoid a base <-> ir import cycle; the runner
    passes the concrete types.)
    """

    name: str = "program-checker"
    rules: tuple[RuleSpec, ...] = ()

    def check_program(self, program, graph) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, rule: str, node: ast.AST, message: str, snippet: str = ""
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


def call_name(node: ast.AST) -> str:
    """The trailing identifier of a call target (``a.b.c() -> 'c'``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted form of an attribute chain (else '')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_library_file(ctx: FileContext) -> bool:
    """True for library modules: everything except a ``cli.py``."""
    return ctx.filename != "cli.py"
