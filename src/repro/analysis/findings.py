"""Finding and rule descriptors shared by every checker."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RuleSpec:
    """One lint rule: a stable id plus the invariant it guards."""

    rule: str
    summary: str
    invariant: str
    paper: str = ""

    def describe(self) -> str:
        text = f"{self.rule}: {self.summary}"
        if self.paper:
            text += f" [{self.paper}]"
        return text


@dataclass
class Finding:
    """One violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False
    suppress_reason: str = field(default="", repr=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        text = f"{self.location()}  {self.rule}  {self.message}"
        if self.snippet:
            text += f"\n    | {self.snippet.strip()}"
        if self.suppressed:
            text += f"\n    suppressed: {self.suppress_reason}"
        return text

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["reason"] = self.suppress_reason
        return out
