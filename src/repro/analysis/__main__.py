"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from repro.analysis.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pipe reader (e.g. ``| head``) closed early; silence the
    # interpreter's flush-on-exit complaint and report like other tools.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 128 + 13  # conventional SIGPIPE status
sys.exit(code)
