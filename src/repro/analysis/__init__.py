"""tiptoe-lint: crypto-invariant static analysis for this reproduction.

The correctness and privacy of the Tiptoe stack rest on a handful of
conventions that ordinary Python tooling knows nothing about:

* ciphertext arrays live in the exact unsigned dtype matching the
  modulus q and are never silently up-cast (``repro/lwe/modular.py``);
* secret keys and noise never influence control flow, logs, exception
  messages, or wire encodings;
* all randomness flows through explicit ``np.random.Generator``
  objects so runs can be replayed deterministically;
* library modules validate with exceptions (not ``assert``) and never
  ``print``.

This package checks those invariants mechanically.  It is a small
AST-based framework (:mod:`repro.analysis.base`), four checkers
(:mod:`repro.analysis.checkers`), and a CLI::

    python -m repro.analysis src/            # human output, exit 1 on findings
    python -m repro.analysis src/ --json     # machine output
    python -m repro.analysis src/ --baseline # counts-per-rule summary

Findings are suppressed per-line with a justified pragma::

    risky_expr()  # tiptoe-lint: disable=rule-name -- why this is safe

A suppression without a reason (no ``-- ...`` part) is ignored.  See
``docs/SECURITY.md`` ("Mechanically-checked invariants") for the rule
catalog and the invariant each rule guards.
"""

from repro.analysis.base import Checker, FileContext
from repro.analysis.findings import Finding, RuleSpec
from repro.analysis.runner import AnalysisReport, analyze_file, analyze_paths

__all__ = [
    "AnalysisReport",
    "Checker",
    "FileContext",
    "Finding",
    "RuleSpec",
    "analyze_file",
    "analyze_paths",
]
