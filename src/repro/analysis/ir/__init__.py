"""Whole-program IR: CFGs, the call graph, and the dataflow engine."""

from repro.analysis.ir.callgraph import CallGraph, CallSite
from repro.analysis.ir.cfg import CFG, Block, build_cfg, shallow_exprs
from repro.analysis.ir.dataflow import (
    FixpointDiverged,
    solve_forward,
    union_join,
)
from repro.analysis.ir.program import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
    module_name_for,
)

__all__ = [
    "Block",
    "CFG",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FixpointDiverged",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "build_cfg",
    "module_name_for",
    "shallow_exprs",
    "solve_forward",
    "union_join",
]
