"""Per-function control-flow graphs with held-lock sets.

A :class:`CFG` linearizes one function body into basic blocks.  Every
statement lives in exactly one block; compound statements (``if``,
``while``, ``with``, ...) sit in the block that evaluates their
*shallow* expressions (the test, the iterable, the context items) and
their bodies become separate blocks reached by edges.  Checkers walk
``block.stmts`` and use :func:`shallow_exprs` so nested bodies are
never visited twice.

Lock tracking rides along at construction time: the builder is handed
a ``resolve_lock(expr) -> token | None`` callback, and every block
carries ``held`` -- the frozenset of lock tokens whose ``with`` blocks
lexically enclose it.  Lexical ``with`` nesting *is* dominance for
lock acquisition in this codebase (locks are only ever taken via
``with``), which is what the lock-discipline checker needs: an access
in a block is guarded iff its lock is in ``block.held``.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator

LockResolver = Callable[[ast.expr], "str | None"]


class Block:
    """One basic block: straight-line statements plus CFG edges."""

    __slots__ = ("id", "stmts", "succs", "preds", "held")

    def __init__(self, block_id: int, held: frozenset = frozenset()):
        self.id = block_id
        self.stmts: list[ast.stmt] = []
        self.succs: list["Block"] = []
        self.preds: list["Block"] = []
        self.held: frozenset = held

    def __repr__(self) -> str:  # debugging aid only
        return (
            f"Block({self.id}, stmts={len(self.stmts)},"
            f" succs={[s.id for s in self.succs]}, held={sorted(self.held)})"
        )


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, entry: Block, exit_block: Block, blocks: list[Block]):
        self.entry = entry
        self.exit = exit_block
        self.blocks = blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


def shallow_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement evaluates *in its own block*.

    Bodies of compound statements are excluded (they live in other
    blocks); nested function/class definitions contribute only their
    decorators and defaults, never their bodies.
    """
    out: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        out.extend(stmt.targets)
        out.append(stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        out.append(stmt.target)
        if stmt.value is not None:
            out.append(stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        out.extend([stmt.target, stmt.value])
    elif isinstance(stmt, ast.Expr):
        out.append(stmt.value)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            out.append(stmt.value)
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            out.append(stmt.exc)
        if stmt.cause is not None:
            out.append(stmt.cause)
    elif isinstance(stmt, (ast.If, ast.While)):
        out.append(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out.extend([stmt.target, stmt.iter])
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
    elif isinstance(stmt, ast.Assert):
        out.append(stmt.test)
        if stmt.msg is not None:
            out.append(stmt.msg)
    elif isinstance(stmt, ast.Delete):
        out.extend(stmt.targets)
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        out.extend(stmt.decorator_list)
        args = getattr(stmt, "args", None)
        if args is not None:
            out.extend(d for d in args.defaults if d is not None)
            out.extend(d for d in args.kw_defaults if d is not None)
    elif isinstance(stmt, ast.Match):
        out.append(stmt.subject)
    return out


class _Builder:
    def __init__(self, resolve_lock: LockResolver | None):
        self._resolve = resolve_lock or (lambda expr: None)
        self.blocks: list[Block] = []
        # (loop_header, loop_after) for break/continue targets.
        self._loops: list[tuple[Block, Block]] = []

    def new_block(self, held: frozenset) -> Block:
        block = Block(len(self.blocks), held)
        self.blocks.append(block)
        return block

    @staticmethod
    def link(src: Block | None, dst: Block) -> None:
        if src is None:
            return
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def build(
        self, body: list[ast.stmt], entry_held: frozenset
    ) -> tuple[Block, Block]:
        entry = self.new_block(entry_held)
        exit_block = Block(-1, frozenset())  # filled in below
        self._exit = exit_block
        out = self._stmts(body, entry)
        if out is not None:
            self.link(out, exit_block)
        exit_block.id = len(self.blocks)
        self.blocks.append(exit_block)
        return entry, exit_block

    def _stmts(self, body: Iterable[ast.stmt], cur: Block | None) -> Block | None:
        """Thread ``body`` through blocks; None means control never
        falls out the bottom (return/raise/break on every path)."""
        for stmt in body:
            if cur is None:
                # Dead code after a terminator still gets a block so
                # checkers see it; it simply has no predecessors.
                cur = self.new_block(self._dead_held)
            cur = self._stmt(stmt, cur)
        return cur

    _dead_held: frozenset = frozenset()

    def _stmt(self, stmt: ast.stmt, cur: Block) -> Block | None:
        self._dead_held = cur.held
        if isinstance(stmt, ast.If):
            cur.stmts.append(stmt)
            then_b = self.new_block(cur.held)
            self.link(cur, then_b)
            then_out = self._stmts(stmt.body, then_b)
            else_out: Block | None
            if stmt.orelse:
                else_b = self.new_block(cur.held)
                self.link(cur, else_b)
                else_out = self._stmts(stmt.orelse, else_b)
            else:
                else_out = cur  # the test may fall through
            if then_out is None and else_out is None:
                return None
            join = self.new_block(cur.held)
            self.link(then_out, join)
            self.link(else_out, join)
            return join
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block(cur.held)
            self.link(cur, header)
            header.stmts.append(stmt)
            after = self.new_block(cur.held)
            body_b = self.new_block(cur.held)
            self.link(header, body_b)
            self._loops.append((header, after))
            body_out = self._stmts(stmt.body, body_b)
            self._loops.pop()
            self.link(body_out, header)  # back edge
            self.link(header, after)  # loop may not run / condition fails
            if stmt.orelse:
                # else-clause runs on normal loop exit; fold into after.
                else_out = self._stmts(stmt.orelse, after)
                if else_out is not after:
                    after = else_out if else_out is not None else self.new_block(cur.held)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)
            acquired = frozenset(
                tok
                for item in stmt.items
                for tok in [self._resolve(item.context_expr)]
                if tok is not None
            )
            body_b = self.new_block(cur.held | acquired)
            self.link(cur, body_b)
            body_out = self._stmts(stmt.body, body_b)
            after = self.new_block(cur.held)
            self.link(body_out, after)
            return after
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            cur.stmts.append(stmt)
            body_b = self.new_block(cur.held)
            self.link(cur, body_b)
            body_out = self._stmts(stmt.body, body_b)
            if stmt.orelse and body_out is not None:
                body_out = self._stmts(stmt.orelse, body_out)
            join = self.new_block(cur.held)
            self.link(body_out, join)
            for handler in stmt.handlers:
                handler_b = self.new_block(cur.held)
                # Coarse: an exception can surface anywhere in the body.
                self.link(cur, handler_b)
                if body_out is not None:
                    self.link(body_out, handler_b)
                handler_out = self._stmts(handler.body, handler_b)
                self.link(handler_out, join)
            if stmt.finalbody:
                return self._stmts(stmt.finalbody, join)
            if not join.preds:
                return None
            return join
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.stmts.append(stmt)
            self.link(cur, self._exit)
            return None
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            if self._loops:
                self.link(cur, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            if self._loops:
                self.link(cur, self._loops[-1][0])
            return None
        cur.stmts.append(stmt)
        return cur


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    resolve_lock: LockResolver | None = None,
    entry_held: frozenset = frozenset(),
) -> CFG:
    """Build the CFG of one function.

    ``resolve_lock`` maps a ``with`` item's context expression to a
    lock token (or None for non-lock context managers); ``entry_held``
    seeds the held set (for ``# requires-lock:`` functions).
    """
    builder = _Builder(resolve_lock)
    entry, exit_block = builder.build(func.body, entry_held)
    return CFG(entry, exit_block, builder.blocks)
