"""Module-level call graph with alias-aware method resolution.

Given a :class:`~repro.analysis.ir.program.Program`, resolve each call
expression in a function body to the candidate :class:`FunctionInfo`
targets it may invoke.  Resolution is deliberately best-effort and
*under*-approximate -- an unresolved call contributes no edges -- which
is the right polarity for both clients: the lock-order graph only
contains edges we are sure about, and taint summaries simply lose
precision (not soundness against the annotated surface) on dynamic
dispatch we cannot see.

What is resolved:

* ``f(...)`` -- module-local functions, ``from m import f`` imports,
  and class constructors (edge to ``__init__``);
* ``self.m(...)`` -- own class, then program-visible bases;
* ``mod.f(...)`` -- through ``import a.b as mod`` aliases and
  ``from a import b as mod`` module imports;
* ``obj.m(...)`` -- when ``obj`` is a local assigned ``ClassName(...)``,
  a parameter/variable with a class annotation (``X | None`` unions
  included), a module global with an annotation, or ``self.attr`` with
  a type recorded from ``__init__``;
* chained calls ``obj.m(...).n(...)`` -- through the return-type
  annotation of ``m``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.ir.program import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
    _annotation_names,
)


def walk_scope(root: ast.AST):
    """``ast.walk`` minus nested function/class bodies.

    Nested defs are separate :class:`FunctionInfo` scopes; walking into
    them here would double-count their calls against the outer function.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: the AST node plus its candidate targets."""

    node: ast.Call
    caller: FunctionInfo
    targets: tuple[FunctionInfo, ...]
    is_method_call: bool  # receiver expression fills the ``self`` slot


class CallGraph:
    """Lazy call resolution plus whole-program call-site enumeration."""

    def __init__(self, program: Program):
        self.program = program
        self._local_types: dict[int, dict[str, list[str]]] = {}

    # -- public API ---------------------------------------------------------

    def call_sites(self, func: FunctionInfo) -> list[CallSite]:
        """Every call expression in ``func`` with resolved targets.

        Includes unresolved calls (empty ``targets``) so checkers can
        still reason about the call expression itself.
        """
        sites: list[CallSite] = []
        for node in walk_scope(func.node):
            if isinstance(node, ast.Call):
                targets, is_method = self.resolve_call(node, func)
                sites.append(
                    CallSite(node, func, tuple(targets), is_method)
                )
        return sites

    def callees(self, func: FunctionInfo) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        seen: set[int] = set()
        for site in self.call_sites(func):
            for target in site.targets:
                if id(target) not in seen:
                    seen.add(id(target))
                    out.append(target)
        return out

    def all_functions(self) -> list[FunctionInfo]:
        return [
            f for mod in self.program.modules for f in mod.all_functions
        ]

    def reverse_dependents(self, module_names: set[str]) -> set[str]:
        """Module names that (transitively) call into ``module_names``.

        Used by ``--changed-only``: a change to module M can affect any
        module whose functions resolve a call into M.
        """
        # Build module -> set(callee modules) once.
        edges: dict[str, set[str]] = {}
        for func in self.all_functions():
            src = func.module.name
            for callee in self.callees(func):
                if callee.module.name != src:
                    edges.setdefault(callee.module.name, set()).add(src)
        affected = set(module_names)
        work = list(module_names)
        while work:
            mod = work.pop()
            for dependent in edges.get(mod, ()):
                if dependent not in affected:
                    affected.add(dependent)
                    work.append(dependent)
        return affected

    # -- resolution ---------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, func: FunctionInfo
    ) -> tuple[list[FunctionInfo], bool]:
        """Candidate targets of one call, plus whether it is a method
        call (the receiver occupies the ``self`` parameter slot)."""
        target = call.func
        mod = func.module
        if isinstance(target, ast.Name):
            return self._resolve_bare_name(target.id, mod), False
        if isinstance(target, ast.Attribute):
            receiver = target.value
            method = target.attr
            # self.m(...)
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and func.class_info is not None
            ):
                hit = self.program.method_of(func.class_info, method)
                return ([hit] if hit else []), True
            # mod_alias.f(...) / imported_module.f(...)
            if isinstance(receiver, ast.Name):
                module_hits = self._resolve_module_attr(
                    receiver.id, method, mod
                )
                if module_hits:
                    return module_hits, False
            # typed receiver: local, param, global, self.attr, chain
            for cls in self._receiver_classes(receiver, func):
                hit = self.program.method_of(cls, method)
                if hit is not None:
                    return [hit], True
        return [], False

    def _resolve_bare_name(
        self, name: str, mod: ModuleInfo
    ) -> list[FunctionInfo]:
        if name in mod.functions:
            return [mod.functions[name]]
        if name in mod.classes:
            init = self.program.method_of(mod.classes[name], "__init__")
            return [init] if init else []
        if name in mod.imported_names:
            target_mod_name, orig = mod.imported_names[name]
            target = self.program.by_module_name.get(target_mod_name)
            if target is not None:
                if orig in target.functions:
                    return [target.functions[orig]]
                if orig in target.classes:
                    init = self.program.method_of(
                        target.classes[orig], "__init__"
                    )
                    return [init] if init else []
        return []

    def _resolve_module_attr(
        self, alias: str, attr: str, mod: ModuleInfo
    ) -> list[FunctionInfo]:
        target_names: list[str] = []
        if alias in mod.module_aliases:
            target_names.append(mod.module_aliases[alias])
        if alias in mod.imported_names:
            parent, orig = mod.imported_names[alias]
            target_names.append(f"{parent}.{orig}")
        for target_name in target_names:
            target = self.program.by_module_name.get(target_name)
            if target is None:
                continue
            if attr in target.functions:
                return [target.functions[attr]]
            if attr in target.classes:
                init = self.program.method_of(
                    target.classes[attr], "__init__"
                )
                if init is not None:
                    return [init]
        return []

    # -- receiver typing ----------------------------------------------------

    def _receiver_classes(
        self, receiver: ast.expr, func: FunctionInfo
    ) -> list[ClassInfo]:
        """The candidate classes of a method-call receiver expression."""
        mod = func.module
        names: list[str] = []
        if isinstance(receiver, ast.Name):
            names = self._name_types(receiver.id, func)
        elif isinstance(receiver, ast.Attribute) and isinstance(
            receiver.value, ast.Name
        ):
            if receiver.value.id == "self" and func.class_info is not None:
                names = self._self_attr_types(
                    func.class_info, receiver.attr
                )
        elif isinstance(receiver, ast.Call):
            # Chained call: type the receiver by the inner call's
            # declared return type.
            inner_targets, _ = self.resolve_call(receiver, func)
            for target in inner_targets:
                names.extend(_annotation_names(target.node.returns))
        out: list[ClassInfo] = []
        seen: set[int] = set()
        for name in names:
            for cls in self.program.resolve_class_name(name, mod):
                if id(cls) not in seen:
                    seen.add(id(cls))
                    out.append(cls)
        return out

    def _self_attr_types(
        self, cls: ClassInfo, attr: str
    ) -> list[str]:
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.base_names:
            for base_cls in self.program.resolve_class_name(
                base, cls.module
            ):
                found = self._self_attr_types(base_cls, attr)
                if found:
                    return found
        return []

    def _name_types(self, name: str, func: FunctionInfo) -> list[str]:
        env = self._local_types.get(id(func))
        if env is None:
            env = _local_type_env(func)
            self._local_types[id(func)] = env
        if name in env:
            return env[name]
        return func.module.global_types.get(name, [])


def _local_type_env(func: FunctionInfo) -> dict[str, list[str]]:
    """name -> candidate class names, from annotations and ctor calls."""
    env: dict[str, list[str]] = {}
    args = func.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is not None:
            env[arg.arg] = _annotation_names(arg.annotation)
    for node in ast.walk(func.node):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            env.setdefault(node.target.id, []).extend(
                _annotation_names(node.annotation)
            )
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            ctor = node.value.func
            ctor_name = (
                ctor.id
                if isinstance(ctor, ast.Name)
                else ctor.attr if isinstance(ctor, ast.Attribute) else ""
            )
            if not ctor_name or not ctor_name[0].isupper():
                continue  # heuristic: classes are CapWords here
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    env.setdefault(tgt.id, []).append(ctor_name)
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Name
        ):
            # ``m = _metrics``: borrow a typed module global's type.
            types = func.module.global_types.get(node.value.id)
            if types:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        env.setdefault(tgt.id, []).extend(types)
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Attribute
        ):
            # ``conn = self._conn``: borrow the attribute's declared type.
            val = node.value
            if (
                isinstance(val.value, ast.Name)
                and val.value.id == "self"
                and func.class_info is not None
                and val.attr in func.class_info.attr_types
            ):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        env.setdefault(tgt.id, []).extend(
                            func.class_info.attr_types[val.attr]
                        )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    item.optional_vars is not None
                    and isinstance(item.optional_vars, ast.Name)
                    and isinstance(item.context_expr, ast.Call)
                ):
                    ctor = item.context_expr.func
                    ctor_name = (
                        ctor.id
                        if isinstance(ctor, ast.Name)
                        else ctor.attr
                        if isinstance(ctor, ast.Attribute)
                        else ""
                    )
                    if ctor_name and ctor_name[0].isupper():
                        env.setdefault(
                            item.optional_vars.id, []
                        ).append(ctor_name)
    return env
