"""Whole-program model: modules, classes, functions, lock annotations.

:class:`Program` parses a set of files once and indexes what the
whole-program checkers need:

* every class with its methods, its lock attributes (``threading.Lock``
  / ``RLock`` / ``Condition``, including dataclass
  ``field(default_factory=threading.Lock)`` declarations), and the
  *canonical alias map* -- ``self._need = threading.Condition(self._lock)``
  makes ``_need`` an alias of ``_lock``, so ``with self._need:`` counts
  as holding ``_lock``;
* ``# guarded-by: <lockname>`` annotations binding shared attributes
  (class attrs, module globals, or function locals captured by nested
  functions) to the lock that must be held around every access;
* ``# requires-lock: <lockname>`` annotations on functions whose
  callers must already hold the lock (the lock is in the held set at
  entry, and call sites are checked);
* best-effort static types for ``self.<attr>`` fields, locals, module
  globals, parameters, and function returns (from assignments of
  ``ClassName(...)`` and from annotations), which the call graph uses
  to resolve method calls across classes and modules.

Annotation comments attach exactly like lint suppressions: on the
declaring line, or standing alone on the line directly above it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import FileContext
from repro.analysis.ir.cfg import CFG, build_cfg

_GUARDED = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES = re.compile(r"#\s*requires-lock:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

_LOCK_CTORS = {"Lock", "RLock"}
_CONDITION_CTORS = {"Condition"}


@dataclass
class Annotation:
    """One parsed ``guarded-by`` / ``requires-lock`` comment."""

    line: int
    lock: str
    standalone: bool
    used: bool = False

    def covers(self, line: int) -> bool:
        return line == self.line or (self.standalone and line == self.line + 1)


def _parse_annotations(
    source: str,
) -> tuple[list[Annotation], list[Annotation]]:
    guarded: list[Annotation] = []
    requires: list[Annotation] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            standalone = tok.line.strip().startswith("#")
            match = _GUARDED.search(tok.string)
            if match:
                guarded.append(
                    Annotation(tok.start[0], match.group("lock"), standalone)
                )
            match = _REQUIRES.search(tok.string)
            if match:
                requires.append(
                    Annotation(tok.start[0], match.group("lock"), standalone)
                )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return guarded, requires


def _find_annotation(
    annotations: list[Annotation], line: int
) -> Annotation | None:
    for ann in annotations:
        if ann.covers(line):
            ann.used = True
            return ann
    return None


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Every plain identifier inside a type annotation.

    ``MetricsRegistry | None`` -> ["MetricsRegistry"], ``list[Span]``
    -> ["list", "Span"], ``"TokenPool"`` -> ["TokenPool"].
    """
    if node is None:
        return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # A quoted forward reference; take the head identifier.
            head = sub.value.split("[")[0].strip()
            if head.isidentifier():
                names.append(head)
    return names


def _lock_ctor_kind(value: ast.expr) -> tuple[str, ast.expr | None] | None:
    """Classify a lock-ish constructor expression.

    Returns ``("lock", None)`` for ``threading.Lock()`` / ``RLock()``,
    ``("condition", base_expr)`` for ``threading.Condition(base)``
    (``base_expr`` None when default), and recognizes the dataclass
    spelling ``field(default_factory=threading.Lock)``.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name in _LOCK_CTORS:
        return ("lock", None)
    if name in _CONDITION_CTORS:
        base = value.args[0] if value.args else None
        return ("condition", base)
    if name == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                factory = kw.value
                fname = (
                    factory.attr
                    if isinstance(factory, ast.Attribute)
                    else factory.id if isinstance(factory, ast.Name) else ""
                )
                if fname in _LOCK_CTORS:
                    return ("lock", None)
                if fname in _CONDITION_CTORS:
                    return ("condition", None)
    return None


@dataclass
class FunctionInfo:
    """One function or method (nested functions included)."""

    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_info: "ClassInfo | None" = None
    parent: "FunctionInfo | None" = None
    requires: tuple[str, ...] = ()
    local_locks: dict[str, str] = field(default_factory=dict)  # name -> canonical
    guarded_locals: dict[str, str] = field(default_factory=dict)  # var -> lock

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        parts = [self.module.name]
        if self.class_info is not None:
            parts.append(self.class_info.name)
        elif self.parent is not None:
            parts.append(self.parent.name)
        parts.append(self.name)
        return ".".join(parts)

    @property
    def is_method(self) -> bool:
        return self.class_info is not None

    def param_names(self) -> list[str]:
        args = self.node.args
        return [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]


@dataclass
class ClassInfo:
    """One class: methods, lock attributes, guard bindings, attr types."""

    module: "ModuleInfo"
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: dict[str, str] = field(default_factory=dict)  # attr -> canonical
    guarded: dict[str, str] = field(default_factory=dict)  # attr -> lock name
    guard_lines: dict[str, int] = field(default_factory=dict)  # attr -> decl line
    attr_types: dict[str, list[str]] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    def canonical_lock(self, attr: str) -> str | None:
        """Alias-resolve an attribute to its canonical lock, if a lock."""
        seen = set()
        cur = attr
        while cur in self.lock_attrs and cur not in seen:
            seen.add(cur)
            nxt = self.lock_attrs[cur]
            if nxt == cur:
                return cur
            cur = nxt
        return cur if cur in self.lock_attrs or cur in seen else None

    def lock_token(self, attr: str) -> str | None:
        canon = self.canonical_lock(attr)
        if canon is None:
            return None
        return f"{self.name}.{canon}"


@dataclass
class ModuleInfo:
    """One parsed source file and its indexes."""

    ctx: FileContext
    name: str  # dotted module name, best effort
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    all_functions: list[FunctionInfo] = field(default_factory=list)
    module_locks: dict[str, str] = field(default_factory=dict)
    guarded_globals: dict[str, str] = field(default_factory=dict)
    guard_lines: dict[str, int] = field(default_factory=dict)
    global_types: dict[str, list[str]] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    guard_annotations: list[Annotation] = field(default_factory=list)
    require_annotations: list[Annotation] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.ctx.path

    @property
    def basename(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def lock_token(self, name: str) -> str | None:
        if name in self.module_locks:
            return f"{self.basename}.{name}"
        return None


def module_name_for(path: str) -> str:
    """Dotted module name from a path, rooted at ``src`` when present."""
    parts = Path(str(path).replace("\\", "/")).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    return ".".join(parts) if parts else str(path)


class Program:
    """All parsed modules plus lazy CFGs and lock resolution."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self.by_module_name = {m.name: m for m in modules}
        self.by_path = {m.path: m for m in modules}
        # Class name -> every ClassInfo with that name (cross-module
        # lookups tolerate duplicates by returning all candidates).
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for mod in modules:
            for cls in mod.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
        self._cfgs: dict[int, CFG] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def load(cls, paths: list) -> "Program":
        modules = []
        for path in paths:
            path = Path(path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                continue  # the per-file runner reports these
            ctx = FileContext(path=str(path), source=source, tree=tree)
            modules.append(cls.module_from_context(ctx))
        return cls(modules)

    @classmethod
    def from_contexts(cls, contexts: list[FileContext]) -> "Program":
        return cls([cls.module_from_context(ctx) for ctx in contexts])

    @staticmethod
    def module_from_context(ctx: FileContext) -> ModuleInfo:
        mod = ModuleInfo(ctx=ctx, name=module_name_for(ctx.path))
        mod.guard_annotations, mod.require_annotations = _parse_annotations(
            ctx.source
        )
        _index_module(mod)
        return mod

    # -- lookups ------------------------------------------------------------

    def resolve_class_name(
        self, name: str, mod: ModuleInfo
    ) -> list[ClassInfo]:
        """A class name as visible from ``mod`` (local, imported, global)."""
        if name in mod.classes:
            return [mod.classes[name]]
        if name in mod.imported_names:
            target_mod, orig = mod.imported_names[name]
            target = self.by_module_name.get(target_mod)
            if target is not None and orig in target.classes:
                return [target.classes[orig]]
        return self.classes_by_name.get(name, [])

    def method_of(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through the (program-visible) base chain."""
        seen: set[int] = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.base_names:
                stack.extend(self.resolve_class_name(base, cur.module))
        return None

    # -- lock resolution ----------------------------------------------------

    def resolve_lock_expr(
        self, expr: ast.expr, func: FunctionInfo
    ) -> str | None:
        """Map a ``with`` item (or lock-ish expression) to a lock token."""
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if expr.value.id == "self" and func.class_info is not None:
                token = func.class_info.lock_token(expr.attr)
                if token is not None:
                    return token
                # inherited lock attribute
                for base in func.class_info.base_names:
                    for base_cls in self.resolve_class_name(
                        base, func.module
                    ):
                        token = base_cls.lock_token(expr.attr)
                        if token is not None:
                            return token
                return None
        if isinstance(expr, ast.Name):
            scope: FunctionInfo | None = func
            while scope is not None:
                if expr.id in scope.local_locks:
                    return f"{scope.name}.{scope.local_locks[expr.id]}"
                scope = scope.parent
            return func.module.lock_token(expr.id)
        return None

    def entry_held(self, func: FunctionInfo) -> frozenset:
        held = set()
        for name in func.requires:
            token = self._requires_token(name, func)
            if token is not None:
                held.add(token)
        return frozenset(held)

    def _requires_token(self, name: str, func: FunctionInfo) -> str | None:
        if func.class_info is not None:
            token = func.class_info.lock_token(name)
            if token is not None:
                return token
        return func.module.lock_token(name)

    def cfg_of(self, func: FunctionInfo) -> CFG:
        key = id(func.node)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = build_cfg(
                func.node,
                resolve_lock=lambda e: self.resolve_lock_expr(e, func),
                entry_held=self.entry_held(func),
            )
            self._cfgs[key] = cfg
        return cfg


# -- module indexing ----------------------------------------------------------


def _index_module(mod: ModuleInfo) -> None:
    for stmt in mod.ctx.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                mod.module_aliases[alias.asname or alias.name] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                mod.imported_names[alias.asname or alias.name] = (
                    stmt.module,
                    alias.name,
                )
        elif isinstance(stmt, ast.ClassDef):
            _index_class(mod, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(module=mod, node=stmt)
            mod.functions[stmt.name] = info
            _index_function(mod, info)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            _index_module_assign(mod, stmt)


def _index_module_assign(
    mod: ModuleInfo, stmt: ast.Assign | ast.AnnAssign
) -> None:
    targets = (
        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    )
    names = [t.id for t in targets if isinstance(t, ast.Name)]
    if not names:
        return
    value = stmt.value
    if value is not None:
        kind = _lock_ctor_kind(value)
        if kind is not None:
            for name in names:
                base = kind[1]
                if (
                    kind[0] == "condition"
                    and isinstance(base, ast.Name)
                    and base.id in mod.module_locks
                ):
                    mod.module_locks[name] = mod.module_locks[base.id]
                else:
                    mod.module_locks[name] = name
    if isinstance(stmt, ast.AnnAssign):
        types = _annotation_names(stmt.annotation)
        if types:
            mod.global_types[names[0]] = types
    ann = _find_annotation(mod.guard_annotations, stmt.lineno)
    if ann is not None:
        for name in names:
            mod.guarded_globals[name] = ann.lock
            mod.guard_lines[name] = stmt.lineno


def _index_class(mod: ModuleInfo, node: ast.ClassDef) -> None:
    cls = ClassInfo(module=mod, node=node)
    cls.base_names = [
        b.id if isinstance(b, ast.Name) else b.attr
        for b in node.bases
        if isinstance(b, (ast.Name, ast.Attribute))
    ]
    mod.classes[node.name] = cls
    # Class-body declarations (dataclass fields, class attrs).
    for stmt in node.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if stmt.value is not None:
                kind = _lock_ctor_kind(stmt.value)
                if kind is not None:
                    for name in names:
                        cls.lock_attrs[name] = name
            if isinstance(stmt, ast.AnnAssign):
                # ``_lock: threading.Lock`` annotation alone marks a lock.
                ann_names = _annotation_names(stmt.annotation)
                if any(n in _LOCK_CTORS for n in ann_names):
                    for name in names:
                        cls.lock_attrs.setdefault(name, name)
                else:
                    # Dataclass fields: the annotation types the attr.
                    for name in names:
                        for t in ann_names:
                            cls.attr_types.setdefault(name, []).append(t)
            ann = _find_annotation(mod.guard_annotations, stmt.lineno)
            if ann is not None:
                for name in names:
                    cls.guarded[name] = ann.lock
                    cls.guard_lines[name] = stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(module=mod, node=stmt, class_info=cls)
            cls.methods[stmt.name] = info
            _index_function(mod, info)
            _scan_self_assigns(mod, cls, stmt)


def _scan_self_assigns(
    mod: ModuleInfo,
    cls: ClassInfo,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> None:
    """Find ``self.X = ...`` lock declarations, guard annotations, and
    attribute types anywhere in a method (usually ``__init__``)."""
    for stmt in ast.walk(method):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        attrs = [
            t.attr
            for t in targets
            if isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ]
        if not attrs:
            continue
        value = stmt.value
        if value is not None:
            kind = _lock_ctor_kind(value)
            if kind is not None:
                base = kind[1]
                for attr in attrs:
                    if (
                        kind[0] == "condition"
                        and isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                    ):
                        cls.lock_attrs[attr] = base.attr
                    else:
                        cls.lock_attrs[attr] = attr
            elif isinstance(value, ast.Call) and isinstance(
                value.func, ast.Name
            ):
                for attr in attrs:
                    cls.attr_types.setdefault(attr, []).append(value.func.id)
        if isinstance(stmt, ast.AnnAssign):
            types = _annotation_names(stmt.annotation)
            for attr in attrs:
                for t in types:
                    cls.attr_types.setdefault(attr, []).append(t)
        ann = _find_annotation(mod.guard_annotations, stmt.lineno)
        if ann is not None:
            for attr in attrs:
                cls.guarded[attr] = ann.lock
                cls.guard_lines.setdefault(attr, stmt.lineno)


def _index_function(mod: ModuleInfo, info: FunctionInfo) -> None:
    """Requires-lock annotation, local locks/guards, nested functions."""
    mod.all_functions.append(info)
    node = info.node
    ann = _find_annotation(mod.require_annotations, node.lineno)
    if ann is None and node.decorator_list:
        ann = _find_annotation(
            mod.require_annotations, node.decorator_list[0].lineno
        )
    if ann is not None:
        info.requires = (ann.lock,)
    for stmt in node.body:
        _scan_function_stmt(mod, info, stmt)


def _scan_function_stmt(
    mod: ModuleInfo, info: FunctionInfo, stmt: ast.stmt
) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        nested = FunctionInfo(
            module=mod,
            node=stmt,
            class_info=None,
            parent=info,
        )
        _index_function(mod, nested)
        return
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if names and stmt.value is not None:
            kind = _lock_ctor_kind(stmt.value)
            if kind is not None:
                for name in names:
                    base = kind[1]
                    if (
                        kind[0] == "condition"
                        and isinstance(base, ast.Name)
                        and base.id in info.local_locks
                    ):
                        info.local_locks[name] = info.local_locks[base.id]
                    else:
                        info.local_locks[name] = name
        if names:
            ann = _find_annotation(mod.guard_annotations, stmt.lineno)
            if ann is not None:
                for name in names:
                    info.guarded_locals[name] = ann.lock
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            _scan_function_stmt(mod, info, child)
    for fld in ("body", "orelse", "finalbody"):
        pass  # handled by iter_child_nodes above
