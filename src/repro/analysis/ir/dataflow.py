"""A small worklist dataflow engine over :mod:`repro.analysis.ir.cfg`.

Generic forward fixpoint: callers supply a transfer function over
blocks and a join for merge points.  States must be comparable with
``==`` and treated as immutable (transfer returns a *new* state).
The engine iterates to a fixpoint, so loop-carried facts -- the thing
the PR-1 linear taint pass could not see -- converge: a value that
becomes tainted on iteration N is tainted at the loop header on
iteration N+1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, TypeVar

from repro.analysis.ir.cfg import CFG, Block

S = TypeVar("S")

#: Safety valve: no realistic function needs more block visits.
MAX_VISITS = 100_000


class FixpointDiverged(RuntimeError):
    """The transfer function kept producing new states (non-monotone
    transfer or an unbounded lattice)."""


def solve_forward(
    cfg: CFG,
    transfer: Callable[[Block, S], S],
    entry_state: S,
    join: Callable[[S, S], S],
) -> tuple[dict[int, S], dict[int, S]]:
    """Run a forward analysis to fixpoint.

    Returns ``(in_states, out_states)`` keyed by block id.  Blocks
    unreachable from the entry are absent -- callers decide what an
    unvisited block means (for taint: the empty environment).
    """
    in_states: dict[int, S] = {}
    out_states: dict[int, S] = {}
    work: deque[Block] = deque([cfg.entry])
    visits = 0
    while work:
        visits += 1
        if visits > MAX_VISITS:
            raise FixpointDiverged(
                f"no fixpoint after {MAX_VISITS} block visits"
            )
        block = work.popleft()
        if block is cfg.entry:
            ins = entry_state
            preds_known = True
        else:
            pred_outs = [
                out_states[p.id] for p in block.preds if p.id in out_states
            ]
            if not pred_outs:
                continue  # not yet reachable
            ins = pred_outs[0]
            for other in pred_outs[1:]:
                ins = join(ins, other)
            preds_known = True
        already = block.id in out_states
        if already and in_states.get(block.id) == ins:
            continue
        in_states[block.id] = ins
        outs = transfer(block, ins)
        if not already or out_states[block.id] != outs:
            out_states[block.id] = outs
            work.extend(block.succs)
        else:
            out_states[block.id] = outs
    return in_states, out_states


def union_join(a: dict, b: dict) -> dict:
    """Key-wise set union -- the join for taint-style environments."""
    if a == b:
        return a
    merged = dict(a)
    for key, value in b.items():
        have = merged.get(key)
        merged[key] = value if have is None else (have | value)
    return merged
