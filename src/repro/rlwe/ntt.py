"""Negacyclic number-theoretic transforms.

The outer encryption scheme works over Z_q[x] / (x^n + 1).  Polynomial
products in that ring are computed with the negacyclic NTT: a length-n
transform that bakes the reduction by x^n + 1 into twisted twiddle
factors (the 2n-th primitive root "psi"), following the algorithm of
Longa and Naehrig.  All butterflies are vectorized over NumPy arrays;
moduli are capped at 31 bits so products fit in uint64 without
intermediate overflow.
"""

from __future__ import annotations

import functools
import threading

import numpy as np

from repro.obs import runtime as _obs

#: Largest usable NTT modulus: products of two residues must fit uint64.
MAX_PRIME_BITS = 31


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, valid for n < 3.3e24."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@functools.lru_cache(maxsize=None)
def find_ntt_primes(n_ring: int, bits: int, count: int) -> tuple[int, ...]:
    """Find ``count`` primes p < 2^bits with p = 1 (mod 2 * n_ring).

    Such primes admit a primitive 2n-th root of unity, which is what
    the negacyclic transform needs.  Searches downward from 2^bits.
    The search is deterministic in its arguments, so results are
    cached for the life of the process.
    """
    if bits > MAX_PRIME_BITS:
        raise ValueError(f"NTT primes are capped at {MAX_PRIME_BITS} bits")
    modulus = 2 * n_ring
    found: list[int] = []
    candidate = ((1 << bits) - 1) // modulus * modulus + 1
    while candidate > modulus and len(found) < count:
        if candidate < (1 << (bits - 1)):
            break
        if is_prime(candidate):
            found.append(candidate)
        candidate -= modulus
    if len(found) < count:
        raise ValueError(
            f"could not find {count} NTT primes of {bits} bits for n={n_ring}"
        )
    return tuple(found)


@functools.lru_cache(maxsize=None)
def _primitive_root(p: int) -> int:
    """Smallest primitive root modulo prime p (cached per prime)."""
    factors = []
    phi = p - 1
    rem = phi
    f = 2
    while f * f <= rem:
        if rem % f == 0:
            factors.append(f)
            while rem % f == 0:
                rem //= f
        f += 1
    if rem > 1:
        factors.append(rem)
    for g in range(2, p):
        if all(pow(g, phi // f, p) != 1 for f in factors):
            return g
    raise ArithmeticError(f"no primitive root modulo {p}")


@functools.lru_cache(maxsize=None)
def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Bit-reversal index permutation, shared across all primes of one n.

    The permutation depends only on the ring dimension, so every
    :class:`NttContext` of the same ``n`` -- one per RNS prime --
    reuses one cached (read-only) copy instead of rebuilding it.
    """
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.uint64)
    rev = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        rev |= ((idx >> np.uint64(b)) & np.uint64(1)) << np.uint64(bits - 1 - b)
    # tiptoe-lint: disable=dtype-signed-cast -- bit-reversal permutation indices, not ring elements; int64 is numpy's natural index dtype
    out = rev.astype(np.int64)
    out.setflags(write=False)
    return out


def _power_table(base: int, n: int, p: int) -> np.ndarray:
    """``[base^0, ..., base^(n-1)] mod p`` by vectorized doubling.

    Each round extends the filled prefix with one cumulative product
    ``powers[:span] * base^filled mod p`` -- O(log n) NumPy passes
    instead of n Python-level ``pow`` calls.  Residues stay below
    2^MAX_PRIME_BITS, so every product fits uint64 without overflow.
    """
    powers = np.empty(n, dtype=np.uint64)
    powers[0] = 1
    filled = 1
    step = base % p
    pp = np.uint64(p)
    while filled < n:
        span = min(filled, n - filled)
        powers[filled : filled + span] = (
            powers[:span] * np.uint64(step) % pp
        )
        filled += span
        step = step * step % p
    return powers


class NttContext:
    """Forward/inverse negacyclic NTT modulo one prime.

    Transforms operate on the last axis of any array shaped
    ``(..., n)``.  The transform order (bit-reversed) is internally
    consistent: pointwise products of forward transforms invert to the
    negacyclic convolution of the inputs.
    """

    def __init__(self, n: int, p: int):
        if n & (n - 1) != 0 or n < 2:
            raise ValueError("ring dimension must be a power of two >= 2")
        if (p - 1) % (2 * n) != 0:
            raise ValueError(f"prime {p} does not support a 2*{n}-th root")
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        if p.bit_length() > MAX_PRIME_BITS:
            raise ValueError(f"prime {p} exceeds {MAX_PRIME_BITS} bits")
        self.n = n
        self.p = p
        g = _primitive_root(p)
        psi = pow(g, (p - 1) // (2 * n), p)
        # psi is a primitive 2n-th root: psi^n = -1 mod p.
        if pow(psi, n, p) != p - 1:
            raise ArithmeticError("psi is not a primitive 2n-th root")
        inv_psi = pow(psi, p - 2, p)
        rev = _bit_reverse_permutation(n)
        self._psi_rev = _power_table(psi, n, p)[rev]
        self._inv_psi_rev = _power_table(inv_psi, n, p)[rev]
        self._n_inv = np.uint64(pow(n, p - 2, p))

    def forward(self, a: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis; input values must be < p."""
        with _obs.kernel_timer("ntt.forward"):
            p = np.uint64(self.p)
            n = self.n
            out = np.ascontiguousarray(a, dtype=np.uint64).copy()
            lead = out.shape[:-1]
            t = n
            m = 1
            while m < n:
                t //= 2
                view = out.reshape(*lead, m, 2, t)
                s = self._psi_rev[m : 2 * m].reshape(m, 1)
                u = view[..., 0, :].copy()
                v = view[..., 1, :] * s % p
                view[..., 0, :] = (u + v) % p
                view[..., 1, :] = (u + p - v) % p
                m *= 2
            return out

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT along the last axis."""
        with _obs.kernel_timer("ntt.inverse"):
            p = np.uint64(self.p)
            n = self.n
            out = np.ascontiguousarray(a, dtype=np.uint64).copy()
            lead = out.shape[:-1]
            t = 1
            m = n
            while m > 1:
                h = m // 2
                view = out.reshape(*lead, h, 2, t)
                s = self._inv_psi_rev[h : 2 * h].reshape(h, 1)
                u = view[..., 0, :].copy()
                v = view[..., 1, :].copy()
                view[..., 0, :] = (u + v) % p
                view[..., 1, :] = (u + p - v) * s % p
                t *= 2
                m = h
            return out * self._n_inv % p

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Product of two polynomials in Z_p[x]/(x^n + 1)."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % np.uint64(self.p))


# -- the process-wide context registry ----------------------------------------
#
# Twiddle tables depend only on (n, p), and a context is immutable
# after construction (forward/inverse only read the tables), so every
# RnsContext, BfvScheme, and serve cold-start in one process can share
# a single table per (n, p) pair instead of rebuilding it.

_REGISTRY: dict[tuple[int, int], NttContext] = {}  # guarded-by: _REGISTRY_LOCK
_REGISTRY_LOCK = threading.Lock()


def ntt_context(n: int, p: int) -> NttContext:
    """The shared :class:`NttContext` for ``(n, p)``, built at most once.

    Thread-safe: concurrent first requests for the same pair race on
    the registry lock and every caller receives the same object.
    """
    key = (n, p)
    # tiptoe-lint: disable=lock-guarded-attr -- double-checked locking: a stale miss on this unlocked fast-path read only falls through to the locked slow path, which re-checks
    ctx = _REGISTRY.get(key)
    if ctx is None:
        with _REGISTRY_LOCK:
            ctx = _REGISTRY.get(key)
            if ctx is None:
                ctx = NttContext(n, p)
                _REGISTRY[key] = ctx
    return ctx


def clear_ntt_registry() -> None:
    """Drop every cached context and table (cold-start benchmarks)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
    _primitive_root.cache_clear()
    _bit_reverse_permutation.cache_clear()


def negacyclic_convolve_reference(
    a: np.ndarray, b: np.ndarray, p: int
) -> np.ndarray:
    """Schoolbook negacyclic convolution, for testing the NTT against."""
    n = len(a)
    out = np.zeros(n, dtype=object)
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] += a[i] * b[j]
            else:
                out[k - n] -= a[i] * b[j]
    return np.array([int(x) % p for x in out], dtype=np.uint64)
