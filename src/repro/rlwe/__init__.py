"""Ring-LWE machinery for Tiptoe's "outer" encryption layer.

Tiptoe compresses the large evaluated ciphertexts of its inner Regev
layer by having the server run the linear part of inner decryption
under a second, compact, ring-LWE-based encryption scheme (SS6.2,
Appendix A.2).  This subpackage provides that scheme from scratch:

ntt
    Negacyclic number-theoretic transforms modulo NTT-friendly primes.
poly
    The ring Z_q[x] / (x^n + 1) in RNS (residue number system) form.
bfv
    A BFV-style secret-key linearly homomorphic scheme over that ring,
    with both coefficient encoding and slot batching (t = 65537).
"""

from repro.rlwe.bfv import BfvCiphertext, BfvParams, BfvScheme, BfvSecretKey
from repro.rlwe.ntt import NttContext, find_ntt_primes
from repro.rlwe.poly import RnsContext

__all__ = [
    "BfvCiphertext",
    "BfvParams",
    "BfvScheme",
    "BfvSecretKey",
    "NttContext",
    "RnsContext",
    "find_ntt_primes",
]
