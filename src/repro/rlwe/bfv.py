"""BFV-style secret-key linearly homomorphic encryption over RLWE.

This is the "outer" encryption scheme Enc2 of SS6.2 / Appendix A.2: it
is allowed to be computationally slower than the inner Regev layer,
but its ciphertexts stay compact after homomorphic evaluation, which
is exactly what the download-compression trick needs.

Supported homomorphic operations (all linear, per Appendix A):

* ciphertext addition / subtraction,
* multiplication by plaintext ring elements (NTT-domain pointwise),
* multiplication by scalars,
* addition of plaintext ring elements.

Encoding follows the scale-invariant convention: a message coefficient
``m`` is encoded as ``round(m * q / t)``, so the per-message encoding
error is at most 1/2 (instead of the ``m * (q/t - floor(q/t))`` error
of naive Delta-scaling, which matters here because our plaintext
modulus t is close to 2^32).

Slot batching (Appendix C uses t = 65537) is available whenever t is a
prime with t = 1 (mod 2n): ``encode_slots`` / ``decode_slots`` map
between slot values and plaintext polynomials, making plaintext
multiplication act componentwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lwe import sampling
from repro.rlwe.ntt import NttContext, find_ntt_primes, ntt_context
from repro.rlwe.poly import RnsContext


@dataclass(frozen=True)
class BfvParams:
    """Parameters for the outer RLWE scheme.

    Attributes
    ----------
    n:
        Ring dimension (power of two).
    t:
        Plaintext modulus.
    primes:
        NTT-friendly ciphertext primes; q is their product.
    sigma:
        Error standard deviation.
    """

    n: int
    t: int
    primes: tuple[int, ...]
    sigma: float = 3.2

    @staticmethod
    def create(
        n: int,
        t: int,
        prime_bits: int = 30,
        num_primes: int = 3,
        sigma: float = 3.2,
    ) -> "BfvParams":
        """Build a parameter set, searching for suitable NTT primes."""
        primes = find_ntt_primes(n, prime_bits, num_primes)
        return BfvParams(n=n, t=t, primes=primes, sigma=sigma)

    @property
    def q(self) -> int:
        q = 1
        for p in self.primes:
            q *= p
        return q

    @property
    def delta(self) -> float:
        """The (real-valued) plaintext scale q / t."""
        return self.q / self.t

    def ciphertext_bytes(self) -> int:
        """Wire size of one ciphertext (two RNS ring elements)."""
        return 2 * len(self.primes) * self.n * 8

    def supports_batching(self) -> bool:
        """Whether slot batching is available for this t."""
        from repro.rlwe.ntt import is_prime

        return is_prime(self.t) and (self.t - 1) % (2 * self.n) == 0


@dataclass(frozen=True)
class BfvSecretKey:
    """Ternary RLWE secret, cached in NTT form for fast products."""

    s_ntt: np.ndarray
    s_signed: np.ndarray


@dataclass
class BfvCiphertext:
    """An RLWE ciphertext ``(b, a)`` with ``b = a*s + e + encode(m)``.

    Both components are stored in NTT form, which makes homomorphic
    plaintext multiplication a pointwise product.
    """

    b: np.ndarray
    a: np.ndarray

    def wire_bytes(self) -> int:
        return (self.b.size + self.a.size) * 8


class BfvScheme:
    """The outer linearly homomorphic encryption scheme."""

    def __init__(self, params: BfvParams):
        self.params = params
        self.ring = RnsContext(params.n, params.primes)
        self._slot_ntt: NttContext | None = (
            ntt_context(params.n, params.t)
            if params.supports_batching()
            else None
        )

    # -- keys ---------------------------------------------------------------

    def gen_secret(self, rng: np.random.Generator | None = None) -> BfvSecretKey:
        rng = sampling.resolve_rng(rng)
        signed = sampling.ternary_secret_signed(rng, self.params.n)
        s_rns = self.ring.from_signed(signed)
        return BfvSecretKey(s_ntt=self.ring.to_ntt(s_rns), s_signed=signed)

    # -- encoding -----------------------------------------------------------

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Scale messages mod t into a coefficient-domain ring element."""
        q, t = self.params.q, self.params.t
        msg = [int(m) % t for m in np.asarray(message).ravel()]
        if len(msg) > self.params.n:
            raise ValueError("message longer than ring dimension")
        msg += [0] * (self.params.n - len(msg))
        scaled = [(m * q + t // 2) // t for m in msg]
        return self.ring.from_ints(scaled)

    def decode(self, phase: list[int], length: int | None = None) -> np.ndarray:
        """Recover messages mod t from centered decryption phases."""
        q, t = self.params.q, self.params.t
        out = [((y * t + q // 2) // q) % t for y in phase]
        if length is not None:
            out = out[:length]
        return np.array(out, dtype=np.int64)

    def encode_slots(self, values: np.ndarray) -> np.ndarray:
        """Pack per-slot values mod t into a plaintext polynomial."""
        if self._slot_ntt is None:
            raise ValueError(
                f"t={self.params.t} does not support slot batching"
            )
        vals = np.asarray(values, dtype=np.int64) % self.params.t
        if len(vals) > self.params.n:
            raise ValueError("too many slot values")
        padded = np.zeros(self.params.n, dtype=np.uint64)
        padded[: len(vals)] = vals.astype(np.uint64)
        return self._slot_ntt.inverse(padded).astype(np.int64)

    def decode_slots(self, plain_coeffs: np.ndarray) -> np.ndarray:
        """Unpack a plaintext polynomial into its slot values."""
        if self._slot_ntt is None:
            raise ValueError(
                f"t={self.params.t} does not support slot batching"
            )
        arr = np.asarray(plain_coeffs, dtype=np.int64) % self.params.t
        return self._slot_ntt.forward(arr.astype(np.uint64)).astype(np.int64)

    # -- encryption ---------------------------------------------------------

    def encrypt(
        self,
        sk: BfvSecretKey,
        message: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> BfvCiphertext:
        """Encrypt a vector of coefficients mod t."""
        return self.encrypt_encoded(sk, self.encode(message), rng)

    def encrypt_encoded(
        self,
        sk: BfvSecretKey,
        encoded: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> BfvCiphertext:
        """Encrypt an already-encoded coefficient-domain ring element."""
        rng = sampling.resolve_rng(rng)
        ring = self.ring
        a_ntt = ring.to_ntt(ring.sample_uniform(rng))
        e = ring.sample_gaussian(rng, self.params.sigma)
        payload = ring.to_ntt(ring.add(e, encoded))
        b_ntt = ring.add(ring.mul_pointwise(a_ntt, sk.s_ntt), payload)
        return BfvCiphertext(b=b_ntt, a=a_ntt)

    def decrypt_phase(self, sk: BfvSecretKey, ct: BfvCiphertext) -> list[int]:
        """The centered decryption phase ``b - a*s`` as Python ints."""
        ring = self.ring
        y_ntt = ring.sub(ct.b, ring.mul_pointwise(ct.a, sk.s_ntt))
        return ring.to_centered_ints(ring.from_ntt(y_ntt))

    def decrypt(
        self, sk: BfvSecretKey, ct: BfvCiphertext, length: int | None = None
    ) -> np.ndarray:
        """Decrypt to coefficient messages mod t."""
        return self.decode(self.decrypt_phase(sk, ct), length)

    def decrypt_slots(self, sk: BfvSecretKey, ct: BfvCiphertext) -> np.ndarray:
        """Decrypt to slot values mod t (batched plaintexts)."""
        coeffs = self.decrypt(sk, ct)
        return self.decode_slots(coeffs)

    # -- homomorphic operations ----------------------------------------------

    def add(self, c1: BfvCiphertext, c2: BfvCiphertext) -> BfvCiphertext:
        ring = self.ring
        return BfvCiphertext(b=ring.add(c1.b, c2.b), a=ring.add(c1.a, c2.a))

    def sub(self, c1: BfvCiphertext, c2: BfvCiphertext) -> BfvCiphertext:
        ring = self.ring
        return BfvCiphertext(b=ring.sub(c1.b, c2.b), a=ring.sub(c1.a, c2.a))

    def mul_plain_ntt(
        self, ct: BfvCiphertext, plain_ntt: np.ndarray
    ) -> BfvCiphertext:
        """Multiply by a plaintext ring element given in NTT form."""
        ring = self.ring
        return BfvCiphertext(
            b=ring.mul_pointwise(ct.b, plain_ntt),
            a=ring.mul_pointwise(ct.a, plain_ntt),
        )

    def mul_plain(self, ct: BfvCiphertext, coeffs: np.ndarray) -> BfvCiphertext:
        """Multiply by a plaintext polynomial with small signed coeffs."""
        plain_ntt = self.ring.to_ntt(self.ring.from_signed(coeffs))
        return self.mul_plain_ntt(ct, plain_ntt)

    def mul_scalar(self, ct: BfvCiphertext, c: int) -> BfvCiphertext:
        ring = self.ring
        return BfvCiphertext(
            b=ring.scalar_mul(ct.b, c), a=ring.scalar_mul(ct.a, c)
        )

    def add_plain_encoded(
        self, ct: BfvCiphertext, encoded: np.ndarray
    ) -> BfvCiphertext:
        """Add an encoded (coefficient-domain) plaintext to a ciphertext."""
        return BfvCiphertext(
            b=self.ring.add(ct.b, self.ring.to_ntt(encoded)), a=ct.a
        )

    def zero_ciphertext(self) -> BfvCiphertext:
        """An additive-identity ciphertext (trivially decryptable to 0)."""
        return BfvCiphertext(b=self.ring.zero(), a=self.ring.zero())

    # -- diagnostics ----------------------------------------------------------

    def noise_magnitude(
        self, sk: BfvSecretKey, ct: BfvCiphertext, message: np.ndarray
    ) -> int:
        """Max |phase - encode(message)| -- the invariant noise."""
        phase = self.decrypt_phase(sk, ct)
        expected = self.ring.to_centered_ints(self.encode(message))
        q = self.params.q
        worst = 0
        for got, want in zip(phase, expected):
            diff = (got - want) % q
            diff = diff - q if diff >= q // 2 else diff
            worst = max(worst, abs(diff))
        return worst

    def noise_budget_bits(
        self, sk: BfvSecretKey, ct: BfvCiphertext, message: np.ndarray
    ) -> float:
        """log2 of (decryption threshold / current noise)."""
        import math

        noise = max(1, self.noise_magnitude(sk, ct, message))
        return math.log2(self.params.q / (2.0 * self.params.t) / noise)
