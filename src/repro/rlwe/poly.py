"""The ring Z_q[x] / (x^n + 1) in residue-number-system form.

The outer scheme's ciphertext modulus q is a product of NTT-friendly
primes; ring elements are stored as a stack of per-prime residue
polynomials (shape ``(k, n)`` for k primes).  Because the CRT map is a
ring isomorphism, all arithmetic -- including uniform sampling -- is
done independently per prime, and full-width integers only appear at
encode/decode time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rlwe.ntt import ntt_context


class RnsContext:
    """Arithmetic for Z_q[x]/(x^n + 1) with q a product of NTT primes."""

    def __init__(self, n: int, primes: tuple[int, ...]):
        if len(set(primes)) != len(primes):
            raise ValueError("RNS primes must be distinct")
        self.n = n
        self.primes = tuple(int(p) for p in primes)
        self.q = math.prod(self.primes)
        # Shared per-(n, p) contexts: twiddle tables are built once per
        # process, not once per scheme instance (see rlwe.ntt).
        self.ntts = [ntt_context(n, p) for p in self.primes]
        self._primes_arr = np.array(self.primes, dtype=np.uint64).reshape(-1, 1)
        # CRT reconstruction constants: x = sum_i (r_i * y_i mod p_i) * qhat_i.
        self._qhat = [self.q // p for p in self.primes]
        self._qhat_inv = [
            pow(self.q // p, p - 2, p) for p in self.primes
        ]

    @property
    def k(self) -> int:
        """Number of RNS channels."""
        return len(self.primes)

    # -- representation ---------------------------------------------------

    def from_signed(self, coeffs: np.ndarray) -> np.ndarray:
        """Lift small signed integer coefficients into RNS form."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        residues = coeffs[None, :] % self._primes_arr.astype(np.int64)
        return residues.astype(np.uint64)

    def from_ints(self, coeffs: list[int] | np.ndarray) -> np.ndarray:
        """Lift arbitrary-precision integer coefficients into RNS form."""
        out = np.empty((self.k, len(coeffs)), dtype=np.uint64)
        for i, p in enumerate(self.primes):
            out[i] = np.array([int(c) % p for c in coeffs], dtype=np.uint64)
        return out

    def to_ints(self, rns: np.ndarray) -> list[int]:
        """CRT-reconstruct coefficients as Python ints in [0, q)."""
        n = rns.shape[-1]
        acc = [0] * n
        for i, p in enumerate(self.primes):
            scaled = [
                (int(r) * self._qhat_inv[i]) % p for r in rns[i]
            ]
            qhat = self._qhat[i]
            for j in range(n):
                acc[j] += scaled[j] * qhat
        return [a % self.q for a in acc]

    def to_centered_ints(self, rns: np.ndarray) -> list[int]:
        """CRT-reconstruct coefficients centered in [-q/2, q/2)."""
        half = self.q // 2
        return [x - self.q if x >= half else x for x in self.to_ints(rns)]

    # -- arithmetic (elementwise per prime; valid in NTT or coeff domain) --

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) % self._primes_arr

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + self._primes_arr - b) % self._primes_arr

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (self._primes_arr - a) % self._primes_arr

    def mul_pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pointwise product (= ring product when both are in NTT form)."""
        return a * b % self._primes_arr

    def scalar_mul(self, a: np.ndarray, c: int) -> np.ndarray:
        residues = np.array(
            [c % p for p in self.primes], dtype=np.uint64
        ).reshape(-1, 1)
        return a * residues % self._primes_arr

    # -- transforms --------------------------------------------------------

    def to_ntt(self, rns: np.ndarray) -> np.ndarray:
        return np.stack(
            [self.ntts[i].forward(rns[i]) for i in range(self.k)]
        )

    def from_ntt(self, rns: np.ndarray) -> np.ndarray:
        return np.stack(
            [self.ntts[i].inverse(rns[i]) for i in range(self.k)]
        )

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full ring product of two coefficient-domain elements."""
        return self.from_ntt(self.mul_pointwise(self.to_ntt(a), self.to_ntt(b)))

    # -- sampling -----------------------------------------------------------

    def sample_uniform(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform ring element (independent uniform residues, by CRT)."""
        out = np.empty((self.k, self.n), dtype=np.uint64)
        for i, p in enumerate(self.primes):
            out[i] = rng.integers(0, p, size=self.n, dtype=np.uint64)
        return out

    def sample_gaussian(
        self, rng: np.random.Generator, sigma: float
    ) -> np.ndarray:
        """A rounded-Gaussian error element, lifted into RNS."""
        raw = np.rint(rng.normal(0.0, sigma, size=self.n)).astype(np.int64)
        return self.from_signed(raw)

    def sample_ternary(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly ternary ring element, lifted into RNS."""
        raw = rng.integers(-1, 2, size=self.n, dtype=np.int64)
        return self.from_signed(raw)

    def zero(self) -> np.ndarray:
        return np.zeros((self.k, self.n), dtype=np.uint64)
