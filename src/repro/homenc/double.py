"""The double-layer ("augmented") LHE scheme of SS6.2 and Appendix A.

The inner Regev scheme makes homomorphic evaluation nearly as fast as
plaintext arithmetic, but decryption needs the hint matrix ``H = M A``
-- gigabytes of corpus-dependent data the client would otherwise have
to download.  Here the client instead uploads an outer encryption of
its inner secret key, and the server computes the hint-secret product
``H s`` *under the outer encryption*:

1. the client sends ``Enc2`` ciphertexts of each inner-secret
   component ``s_i`` (the ``z_i`` of Appendix A.2);
2. the server, per chunk of ``n_outer`` hint rows, evaluates
   ``sum_i C_i(x) * z_i`` where ``C_i`` is the plaintext polynomial
   whose r-th coefficient is ``H[r, i]`` -- because each ``z_i``
   encrypts a *constant*, coefficient r of the sum is exactly
   ``sum_i H[r, i] s_i``, row r of ``H s``;
3. the client decrypts the few compact outer ciphertexts instead of
   downloading ``H``.

Two paper optimizations are folded in:

* *modulus switching / dropping low-order hint bits* (Appendix A.3):
  the hint and the online answer are rescaled from the inner modulus
  q to an odd prime T < 2^32 before the outer layer sees them -- from
  q = 2^64 this literally drops the low 32 bits of each hint word;
* the outer evaluation is key-dependent but *query-independent*, so it
  runs ahead of time (the query tokens of :mod:`repro.homenc.token`).

Faithfulness note (DESIGN.md substitution 8): the paper instantiates
Enc2 with SEAL's BFV at t = 65537 plus encoding tricks the appendix
does not fully specify; we instantiate Enc2 with the same BFV-style
scheme but plaintext modulus T, which keeps the arithmetic exact and
preserves every systems-level property (offline evaluation, O(l)
evaluated ciphertexts, no hint download).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.lwe import modular, sampling
from repro.lwe.params import LweParams
from repro.lwe.regev import Ciphertext, RegevScheme, SecretKey
from repro.obs import runtime as _obs
from repro.rlwe.bfv import BfvCiphertext, BfvParams, BfvScheme, BfvSecretKey

#: Default modulus-switch target: the largest prime below 2^32.
DEFAULT_SWITCH_MODULUS = 4294967291


@dataclass(frozen=True)
class DoubleLheParams:
    """Parameters tying the two encryption layers together."""

    inner: LweParams
    outer_n: int = 2048
    outer_prime_bits: int = 30
    outer_num_primes: int = 3
    outer_sigma: float = 3.2
    switch_modulus: int = DEFAULT_SWITCH_MODULUS

    def __post_init__(self) -> None:
        if self.switch_modulus >= 1 << 32:
            raise ValueError("switch modulus must be below 2^32")
        if self.switch_modulus % 2 == 0:
            raise ValueError("switch modulus must be odd")

    def outer_params(self) -> BfvParams:
        return BfvParams.create(
            n=self.outer_n,
            t=self.switch_modulus,
            prime_bits=self.outer_prime_bits,
            num_primes=self.outer_num_primes,
            sigma=self.outer_sigma,
        )


@dataclass(frozen=True)
class ClientKeys:
    """Both layers' secret keys, held only by the client."""

    inner: SecretKey
    outer: BfvSecretKey


@dataclass(frozen=True)
class EncryptedKey:
    """The outer encryption of the inner secret (the ``z_i`` vectors).

    Stored as stacked NTT-domain arrays of shape ``(n_inner, k, n_outer)``
    so the server's evaluation is a batched pointwise product.  This is
    the large ahead-of-time client upload of SS6.3 (~32 MiB at paper
    scale); it is query-independent and reusable across services.
    """

    z_b: np.ndarray
    z_a: np.ndarray

    def wire_bytes(self) -> int:
        return (self.z_b.size + self.z_a.size) * 8


@dataclass(frozen=True)
class CompressedHint:
    """Outer ciphertexts encrypting ``H s``, one per n_outer hint rows."""

    chunks: tuple[BfvCiphertext, ...]
    rows: int

    def wire_bytes(self) -> int:
        return sum(c.wire_bytes() for c in self.chunks)


@dataclass(frozen=True)
class PreprocessedMatrix:
    """Server-side state for one plaintext matrix M: hint + switched hint.

    ``hint_ntt`` optionally carries the forward NTTs of every chunk's
    plaintext polynomials ``C_i`` (shape ``(n_chunks, k, n_inner,
    n_outer)``).  The table is client-independent, so computing it
    ahead of time -- or loading it from the precompute sidecar of
    ``repro.index/v2`` -- removes every forward NTT from token minting.
    """

    hint: np.ndarray
    switched_hint: np.ndarray
    rows: int
    hint_ntt: np.ndarray | None = None


def _mulsum_mod(
    lhs: np.ndarray, rhs: np.ndarray, modulus: int, block: int = 8
) -> np.ndarray:
    """``sum_i lhs[i] * rhs[i] mod modulus`` without uint64 overflow.

    Entries are < 2^30, so products are < 2^60; summing at most
    ``block`` of them stays under 2^64 before each reduction.
    """
    p = np.uint64(modulus)
    acc = np.zeros(lhs.shape[1:], dtype=np.uint64)
    for start in range(0, lhs.shape[0], block):
        part = lhs[start : start + block] * rhs[start : start + block]
        acc = (acc + part.sum(axis=0, dtype=np.uint64)) % p
    return acc


class DoubleLheScheme:
    """Linearly homomorphic encryption with preprocessing + compression.

    The public interface mirrors Appendix A.1's syntax: ``encrypt``
    (inner), ``preprocess`` (hint + switched hint), ``apply`` (inner,
    the online hot loop), ``evaluate_hint`` (outer, offline), and
    ``decrypt`` (client, from the compressed hint product).
    """

    def __init__(
        self, params: DoubleLheParams, a_seed: bytes | None = None
    ):
        self.params = params
        self.inner = RegevScheme(
            params=params.inner,
            a_seed=a_seed if a_seed is not None else sampling.random_seed(),
        )
        self.outer = BfvScheme(params.outer_params())

    # -- client key management -----------------------------------------------

    def gen_keys(self, rng: np.random.Generator | None = None) -> ClientKeys:
        rng = sampling.resolve_rng(rng)
        return ClientKeys(
            inner=self.inner.gen_secret(rng), outer=self.outer.gen_secret(rng)
        )

    def encrypt_key(
        self, keys: ClientKeys, rng: np.random.Generator | None = None
    ) -> EncryptedKey:
        """Encrypt each inner-secret component under the outer scheme."""
        rng = sampling.resolve_rng(rng)
        s_signed = keys.inner.signed()
        z_b = []
        z_a = []
        for s_i in s_signed:
            ct = self.outer.encrypt(keys.outer, np.array([int(s_i)]), rng)
            z_b.append(ct.b)
            z_a.append(ct.a)
        return EncryptedKey(z_b=np.stack(z_b), z_a=np.stack(z_a))

    # -- server-side preprocessing ---------------------------------------------

    def preprocess(self, matrix: np.ndarray) -> PreprocessedMatrix:
        """Compute the inner hint and its modulus-switched form."""
        hint = self.inner.preprocess(matrix)
        switched = modular.mod_switch(
            hint, self.params.inner.q_bits, self.params.switch_modulus
        )
        return PreprocessedMatrix(
            hint=hint, switched_hint=switched, rows=hint.shape[0]
        )

    def _chunk_c_ntts(
        self, prep: PreprocessedMatrix, chunk_idx: int, start: int
    ) -> np.ndarray:
        """Per-prime forward NTTs of chunk ``chunk_idx``'s polynomials.

        Served from ``prep.hint_ntt`` when the precompute table is
        present (bit-identical by construction); otherwise computed on
        the spot.  Shape ``(k, n_inner, n_outer)``.
        """
        if prep.hint_ntt is not None:
            return prep.hint_ntt[chunk_idx]
        n_outer = self.params.outer_n
        n_inner = self.params.inner.n
        ring = self.outer.ring
        block = prep.switched_hint[start : start + n_outer]
        # C has one polynomial per inner-secret index: column i of the
        # hint block becomes the coefficients of C_i.
        c_polys = np.zeros((n_inner, n_outer), dtype=np.uint64)
        c_polys[:, : block.shape[0]] = block.T
        return np.stack(
            [
                ntt.forward(c_polys % np.uint64(p))
                for p, ntt in zip(ring.primes, ring.ntts)
            ]
        )

    def hint_ntt_table(self, prep: PreprocessedMatrix) -> np.ndarray:
        """The full precompute table: every chunk's plaintext-side NTTs.

        Shape ``(n_chunks, k, n_inner, n_outer)``.  Depends only on the
        switched hint -- not on any client key -- so it can be built at
        index time and persisted in the ``precompute.npz`` sidecar.
        """
        n_outer = self.params.outer_n
        starts = list(range(0, prep.rows, n_outer))
        bare = PreprocessedMatrix(
            hint=prep.hint, switched_hint=prep.switched_hint, rows=prep.rows
        )
        return np.stack(
            [
                self._chunk_c_ntts(bare, idx, start)
                for idx, start in enumerate(starts)
            ]
        )

    def with_hint_ntt(self, prep: PreprocessedMatrix) -> PreprocessedMatrix:
        """A copy of ``prep`` carrying the precomputed NTT table."""
        if prep.hint_ntt is not None:
            return prep
        return PreprocessedMatrix(
            hint=prep.hint,
            switched_hint=prep.switched_hint,
            rows=prep.rows,
            hint_ntt=self.hint_ntt_table(prep),
        )

    def evaluate_hint(
        self, enc_key: EncryptedKey, prep: PreprocessedMatrix
    ) -> CompressedHint:
        """Compute ``Enc2(H' s)`` -- decryption outsourced to the server.

        Runs once per client key per matrix, entirely offline.  Each
        chunk of ``n_outer`` hint rows yields one outer ciphertext.
        """
        n_outer = self.params.outer_n
        ring = self.outer.ring
        chunks = []
        for idx, start in enumerate(range(0, prep.rows, n_outer)):
            # Kernel timer: the BFV homomorphic evaluation (one outer
            # ciphertext per chunk) is the token path's hot loop.
            with _obs.kernel_timer("bfv.apply"):
                c_ntts = self._chunk_c_ntts(prep, idx, start)
                b_acc = []
                a_acc = []
                for ch, p in enumerate(ring.primes):
                    b_acc.append(
                        _mulsum_mod(enc_key.z_b[:, ch, :], c_ntts[ch], p)
                    )
                    a_acc.append(
                        _mulsum_mod(enc_key.z_a[:, ch, :], c_ntts[ch], p)
                    )
                chunks.append(
                    BfvCiphertext(b=np.stack(b_acc), a=np.stack(a_acc))
                )
        return CompressedHint(chunks=tuple(chunks), rows=prep.rows)

    def evaluate_hint_batch(
        self,
        enc_keys: Sequence[EncryptedKey],
        prep: PreprocessedMatrix,
    ) -> list[CompressedHint]:
        """Evaluate the outer layer for several clients in one hint pass.

        The plaintext polynomials ``C_i`` -- and their forward NTTs,
        the dominant per-chunk cost -- depend only on the hint block,
        not on any client, so they are computed once per chunk and
        reused across the batch.  Each client's pointwise products run
        against that client's own encrypted key: per-client outer keys
        never mix, so element i of the result is bit-identical to
        ``evaluate_hint(enc_keys[i], prep)``.
        """
        if not enc_keys:
            return []
        n_outer = self.params.outer_n
        ring = self.outer.ring
        per_client: list[list[BfvCiphertext]] = [[] for _ in enc_keys]
        for idx, start in enumerate(range(0, prep.rows, n_outer)):
            with _obs.kernel_timer("bfv.apply_batch"):
                # Shared across the batch: one NTT per RNS prime --
                # precomputed when the sidecar table is loaded.
                c_ntts = self._chunk_c_ntts(prep, idx, start)
                for client, enc_key in enumerate(enc_keys):
                    b_acc = []
                    a_acc = []
                    for ch, p in enumerate(ring.primes):
                        b_acc.append(
                            _mulsum_mod(enc_key.z_b[:, ch, :], c_ntts[ch], p)
                        )
                        a_acc.append(
                            _mulsum_mod(enc_key.z_a[:, ch, :], c_ntts[ch], p)
                        )
                    per_client[client].append(
                        BfvCiphertext(b=np.stack(b_acc), a=np.stack(a_acc))
                    )
        return [
            CompressedHint(chunks=tuple(chunks), rows=prep.rows)
            for chunks in per_client
        ]

    # -- client-side recovery ---------------------------------------------------

    def decrypt_hint_product(
        self, keys: ClientKeys, compressed: CompressedHint
    ) -> np.ndarray:
        """Recover ``H' s mod T`` (one value per hint row)."""
        pieces = [
            self.outer.decrypt(keys.outer, chunk) for chunk in compressed.chunks
        ]
        flat = np.concatenate(pieces)[: compressed.rows]
        return flat.astype(np.uint64)

    # -- the online query path ----------------------------------------------------

    def encrypt(
        self,
        keys: ClientKeys,
        message: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> Ciphertext:
        """Inner encryption of the query vector (the online upload)."""
        return self.inner.encrypt(keys.inner, message, rng)

    def apply(self, matrix: np.ndarray, ct: Ciphertext) -> np.ndarray:
        """Inner homomorphic evaluation (the online server hot loop)."""
        return self.inner.apply(matrix, ct)

    def batch_plan(
        self, matrix: np.ndarray, *, backend: str | None = None, **plan_kwargs
    ):
        """Message-independent preprocessing for batched Apply calls.

        ``backend`` / ``plan_kwargs`` select and parameterize a kernel
        backend (see :mod:`repro.lwe.backends`).
        """
        return self.inner.batch_plan(matrix, backend=backend, **plan_kwargs)

    def apply_batch(
        self,
        matrix: np.ndarray | None,
        cts,
        plan=None,
    ) -> np.ndarray:
        """Batched inner evaluation: Q stacked queries, one GEMM.

        Column i of the (rows, Q) result is bit-identical to
        ``apply(matrix, cts[i])``.
        """
        return self.inner.apply_batch(matrix, cts, plan=plan)

    def decrypt(
        self,
        keys: ClientKeys,
        answer: np.ndarray,
        hint_product: np.ndarray,
    ) -> np.ndarray:
        """Recover ``M v mod p`` from the answer and the hint product.

        Mirrors SimplePIR decryption, but over the switched modulus T:
        scale the answer to T, subtract the (token-delivered) hint
        product, and round by the scaled plaintext step T / p.
        """
        t = self.params.switch_modulus
        p = self.params.inner.p
        a_switched = modular.mod_switch(
            np.asarray(answer), self.params.inner.q_bits, t
        )
        noisy = (
            # tiptoe-lint: disable=dtype-signed-cast -- values are reduced mod T < 2^32 so they fit int64 exactly; centering needs signed arithmetic
            a_switched.astype(np.int64)
            - np.asarray(hint_product, dtype=np.uint64).astype(np.int64)
        ) % t
        centered = np.where(noisy >= t // 2, noisy - t, noisy).astype(
            np.float64
        )
        return np.rint(centered * (p / t)).astype(np.int64) % p

    def decrypt_centered(
        self,
        keys: ClientKeys,
        answer: np.ndarray,
        hint_product: np.ndarray,
    ) -> np.ndarray:
        """Like :meth:`decrypt`, mapping into [-p/2, p/2)."""
        m = self.decrypt(keys, answer, hint_product)
        p = self.params.inner.p
        return np.where(m >= p // 2, m - p, m)

    # -- cost accounting -----------------------------------------------------------

    def compressed_hint_bytes(self, rows: int) -> int:
        """Wire size of the evaluated outer ciphertexts for l hint rows."""
        n_chunks = -(-rows // self.params.outer_n)
        return n_chunks * self.outer.params.ciphertext_bytes()

    def key_upload_bytes(self) -> int:
        """Wire size of the one-time encrypted-key upload."""
        per_ct = self.outer.params.ciphertext_bytes()
        return self.params.inner.n * per_ct
