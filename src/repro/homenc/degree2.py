"""Degree-two homomorphic encryption for encrypted-corpus search (SS9).

SS9 extends Tiptoe to corpora the *client* owns and has encrypted: the
server stores encrypted embeddings and must compute the inner product
of the client's *encrypted* query with each *encrypted* document
vector -- a degree-two computation on ciphertexts [17, Boneh-Goh-
Nissim].  We realize it with tensored Regev ciphertexts:

For ciphertexts ``(a_i, b_i)`` with phase ``phi_i = b_i - <a_i, s> =
Delta m_i + e_i``, the product of phases expands to

    phi * phi' = b b' - b <a', s> - b' <a, s> + s^T (a (x) a') s.

The server can aggregate the query-independent pieces over a whole
vector inner product *without knowing s*: it returns the scalar
``B = sum b b'``, the vector ``v = sum (b a' + b' a)``, and the matrix
``M = sum a (x) a'``.  The client computes ``B - <v, s> + s^T M s``
and rounds by Delta^2 to recover ``sum m_i m_i'`` -- the inner-product
score.

As the paper notes of such schemes, the costs are steep (the response
carries an n x n matrix and the plaintext scale squares), which is why
the public-corpus pipeline uses the linear-only scheme; this module
exists for the encrypted-data extension and runs at small scale.
Arithmetic is over Z_{2^128} via Python integers (object arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lwe import sampling

Q_BITS = 128
Q = 1 << Q_BITS


@dataclass(frozen=True)
class Degree2Params:
    """Parameters for the degree-two Regev scheme."""

    n: int = 64
    delta_bits: int = 40
    sigma: float = 3.2

    @property
    def delta(self) -> int:
        return 1 << self.delta_bits

    def max_result_magnitude(self) -> int:
        """Largest |sum m m'| recoverable after one multiplication."""
        return (Q // self.delta // self.delta) // 4


@dataclass
class Degree2Ciphertext:
    """A batch of ciphertexts, one per vector coordinate.

    ``a`` has shape (d, n) and ``b`` shape (d,), both object arrays of
    Python ints mod 2^128.
    """

    a: np.ndarray
    b: np.ndarray

    @property
    def dim(self) -> int:
        return len(self.b)

    def wire_bytes(self) -> int:
        return (self.a.size + self.b.size) * (Q_BITS // 8)


@dataclass
class Degree2Answer:
    """The server's aggregated degree-two response."""

    scalar: int
    vector: np.ndarray  # (n,)
    matrix: np.ndarray  # (n, n)

    def wire_bytes(self) -> int:
        return (1 + self.vector.size + self.matrix.size) * (Q_BITS // 8)


def _obj_mod(arr: np.ndarray) -> np.ndarray:
    return np.vectorize(lambda x: x % Q, otypes=[object])(arr)


class Degree2Scheme:
    """Secret-key Regev encryption supporting one multiplication."""

    def __init__(self, params: Degree2Params | None = None):
        self.params = params if params is not None else Degree2Params()

    def gen_secret(self, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = sampling.resolve_rng(rng)
        return np.array(
            [int(x) for x in rng.integers(-1, 2, self.params.n)], dtype=object
        )

    def encrypt_vector(
        self,
        secret: np.ndarray,
        values: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> Degree2Ciphertext:
        """Encrypt a small-integer vector, one ciphertext per entry."""
        rng = sampling.resolve_rng(rng)
        d = len(values)
        n = self.params.n
        a = np.empty((d, n), dtype=object)
        for i in range(d):
            for j in range(n):
                a[i, j] = int(rng.integers(0, 1 << 62)) | (
                    int(rng.integers(0, 1 << 62)) << 62
                )
        errors = np.rint(rng.normal(0, self.params.sigma, d)).astype(int)
        b = np.empty(d, dtype=object)
        delta = self.params.delta
        for i in range(d):
            mask = sum(int(a[i, j]) * int(secret[j]) for j in range(n))
            b[i] = (mask + int(errors[i]) + delta * int(values[i])) % Q
        return Degree2Ciphertext(a=a, b=b)

    # -- server side -----------------------------------------------------------

    @staticmethod
    def inner_product(
        query: Degree2Ciphertext, doc: Degree2Ciphertext
    ) -> Degree2Answer:
        """Aggregate the degree-two terms of <query, doc>."""
        if query.dim != doc.dim:
            raise ValueError("vector dimensions differ")
        scalar = int(sum(int(x) * int(y) for x, y in zip(query.b, doc.b)) % Q)
        vector = _obj_mod(query.b @ doc.a + doc.b @ query.a)
        matrix = _obj_mod(query.a.T @ doc.a)
        return Degree2Answer(scalar=scalar, vector=vector, matrix=matrix)

    @staticmethod
    def add_answers(a1: Degree2Answer, a2: Degree2Answer) -> Degree2Answer:
        """Answers are additively homomorphic (linear post-processing)."""
        return Degree2Answer(
            scalar=(a1.scalar + a2.scalar) % Q,
            vector=_obj_mod(a1.vector + a2.vector),
            matrix=_obj_mod(a1.matrix + a2.matrix),
        )

    # -- client side -------------------------------------------------------------

    def decrypt_score(self, secret: np.ndarray, answer: Degree2Answer) -> int:
        """Recover the signed inner product sum(m * m')."""
        s = answer.matrix @ secret
        quad = int(secret @ s)
        lin = int(secret @ answer.vector)
        # Branchless centering into [-Q/2, Q/2): even client-side,
        # control flow never depends on decrypted values (taint-branch).
        phase = (answer.scalar - lin + quad) % Q
        phase = ((phase + Q // 2) % Q) - Q // 2
        delta_sq = self.params.delta * self.params.delta
        return round(phase / delta_sq)
