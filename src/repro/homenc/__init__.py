"""Linearly homomorphic encryption with preprocessing and compression.

This subpackage composes the inner Regev layer (:mod:`repro.lwe`) and
the outer RLWE layer (:mod:`repro.rlwe`) into the augmented scheme of
Appendix A: the server evaluates the linear part of inner decryption
*under the outer encryption*, so the client never downloads the large
SimplePIR hint.  The query-token machinery of SS6.3 moves the outer
evaluation off the latency-critical path.
"""

from repro.homenc.double import (
    ClientKeys,
    CompressedHint,
    DoubleLheParams,
    DoubleLheScheme,
    EncryptedKey,
    PreprocessedMatrix,
)
from repro.homenc.token import QueryToken, TokenFactory, TokenReuseError

__all__ = [
    "ClientKeys",
    "CompressedHint",
    "DoubleLheParams",
    "DoubleLheScheme",
    "EncryptedKey",
    "PreprocessedMatrix",
    "QueryToken",
    "TokenFactory",
    "TokenReuseError",
]
