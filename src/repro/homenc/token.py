"""Query tokens: moving communication off the latency-critical path.

SS6.3 observes that the outer encryption of the client's inner secret
key, and the server's evaluation of the hint-secret product under it,
are both *query-independent*.  The client therefore uploads its
encrypted key ahead of time, and the server answers with the
compressed hint products -- a "query token".  The client may stockpile
tokens; each token authorizes exactly one query, because reusing the
inner secret key for two query vectors breaks semantic security.

Appendix A.3's shared-key optimization is also implemented here: the
ranking and URL services can share one inner ternary secret (and hence
one encrypted-key upload) when their inner lattice dimensions agree,
which halves the ahead-of-time upload.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.homenc.double import (
    ClientKeys,
    CompressedHint,
    DoubleLheScheme,
    EncryptedKey,
    PreprocessedMatrix,
)
from repro.lwe import modular, sampling
from repro.lwe.regev import SecretKey
from repro.obs import runtime as obs


class TokenReuseError(RuntimeError):
    """Raised when a single-use query token is consumed twice."""


@dataclass
class ServiceCrypto:
    """One service's double-layer scheme plus its preprocessed matrix."""

    scheme: DoubleLheScheme
    prep: PreprocessedMatrix


@dataclass
class TokenPayload:
    """What the server returns for one token request (wire format)."""

    hints: dict[str, CompressedHint]

    def wire_bytes(self) -> int:
        return sum(h.wire_bytes() for h in self.hints.values())


@dataclass
class QueryToken:
    """Client-side single-use search credential.

    Holds the per-service client keys and the decrypted hint products;
    ``consume`` hands them out exactly once.
    """

    keys: dict[str, ClientKeys]
    hint_products: dict[str, np.ndarray]
    upload_bytes: int = 0
    download_bytes: int = 0
    _used: bool = field(default=False, repr=False)  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def used(self) -> bool:
        with self._lock:
            return self._used

    def consume(self) -> tuple[dict[str, ClientKeys], dict[str, np.ndarray]]:
        """Return the key material for one query; single use enforced.

        Thread-safe: the used-flag check-and-set runs under a lock, so
        two threads racing on one token cannot both win (the prefetcher
        and ``search`` may touch tokens concurrently).
        """
        with self._lock:
            if self._used:
                raise TokenReuseError(
                    "query tokens are single-use: reusing the secret key for"
                    " a second query vector would break semantic security"
                    " (SS6.3)"
                )
            self._used = True
        return self.keys, self.hint_products


class TokenFactory:
    """Server-side token minting over a set of registered services."""

    def __init__(self) -> None:
        self._services: dict[str, ServiceCrypto] = {}

    def register(
        self, name: str, scheme: DoubleLheScheme, prep: PreprocessedMatrix
    ) -> None:
        if name in self._services:
            raise ValueError(f"service {name!r} already registered")
        self._services[name] = ServiceCrypto(scheme=scheme, prep=prep)

    @property
    def service_names(self) -> tuple[str, ...]:
        return tuple(self._services)

    def service(self, name: str) -> ServiceCrypto:
        return self._services[name]

    def mint(self, enc_keys: dict[str, EncryptedKey]) -> TokenPayload:
        """Evaluate every service's hint under the client's keys.

        ``enc_keys`` maps each service name to the encrypted key to use
        for it; with the shared-key optimization several names map to
        the same :class:`EncryptedKey` object, uploaded once.
        """
        missing = set(self._services) - set(enc_keys)
        if missing:
            raise ValueError(f"missing encrypted keys for services {missing}")
        hints = {}
        with obs.span("token.mint", services=len(self._services)):
            for name, svc in self._services.items():
                with obs.span(
                    "token.evaluate_hint", service=name, rows=svc.prep.rows
                ):
                    hints[name] = svc.scheme.evaluate_hint(
                        enc_keys[name], svc.prep
                    )
        return TokenPayload(hints=hints)

    def mint_many(
        self, enc_keys_list: Sequence[dict[str, EncryptedKey]]
    ) -> list[TokenPayload]:
        """Mint one token per client, amortizing the hint NTTs.

        Stacks K clients' encrypted keys through
        :meth:`DoubleLheScheme.evaluate_hint_batch`, so each service's
        plaintext-side forward NTTs run once per chunk for the whole
        batch instead of once per client.  Element i of the result is
        bit-identical to ``mint(enc_keys_list[i])``.
        """
        if not enc_keys_list:
            return []
        for i, enc_keys in enumerate(enc_keys_list):
            missing = set(self._services) - set(enc_keys)
            if missing:
                raise ValueError(
                    f"client {i}: missing encrypted keys for services"
                    f" {missing}"
                )
        per_client: list[dict[str, CompressedHint]] = [
            {} for _ in enc_keys_list
        ]
        with obs.span(
            "token.mint_many",
            clients=len(enc_keys_list),
            services=len(self._services),
        ):
            for name, svc in self._services.items():
                with obs.span(
                    "token.evaluate_hint_batch",
                    service=name,
                    rows=svc.prep.rows,
                    clients=len(enc_keys_list),
                ):
                    hints = svc.scheme.evaluate_hint_batch(
                        [ek[name] for ek in enc_keys_list], svc.prep
                    )
                for client, hint in enumerate(hints):
                    per_client[client][name] = hint
        return [TokenPayload(hints=hints) for hints in per_client]


def make_client_keys(
    schemes: dict[str, DoubleLheScheme],
    rng: np.random.Generator | None = None,
) -> tuple[dict[str, ClientKeys], dict[str, EncryptedKey], int]:
    """Generate per-service keys, sharing uploads where possible.

    Services whose inner lattice dimension and switch modulus agree
    share one inner ternary secret, one outer key, and hence one
    encrypted-key upload (Appendix A.3).  Returns the per-service keys,
    the per-service encrypted keys, and the total upload size in bytes
    counting each shared upload once.
    """
    rng = sampling.resolve_rng(rng)
    keys: dict[str, ClientKeys] = {}
    enc_keys: dict[str, EncryptedKey] = {}
    upload_bytes = 0
    groups: dict[tuple, list[str]] = {}
    for name, scheme in schemes.items():
        sig = (
            scheme.params.inner.n,
            scheme.params.switch_modulus,
            scheme.params.outer_n,
            scheme.params.outer_prime_bits,
            scheme.params.outer_num_primes,
        )
        groups.setdefault(sig, []).append(name)
    for (n_inner, *_), names in groups.items():
        shared_signed = sampling.ternary_secret_signed(rng, n_inner)
        leader = schemes[names[0]]
        outer_sk = leader.outer.gen_secret(rng)
        shared_keys = {}
        for name in names:
            scheme = schemes[name]
            inner_sk = SecretKey(
                s=modular.to_ring(shared_signed, scheme.params.inner.q_bits),
                params=scheme.params.inner,
            )
            shared_keys[name] = ClientKeys(inner=inner_sk, outer=outer_sk)
        # One encrypted-key upload serves the whole group: the inner
        # secret and outer key coincide, and z_i depends on nothing else.
        enc = leader.encrypt_key(shared_keys[names[0]], rng)
        upload_bytes += enc.wire_bytes()
        for name in names:
            keys[name] = shared_keys[name]
            enc_keys[name] = enc
    return keys, enc_keys, upload_bytes


def request_token(
    schemes: dict[str, DoubleLheScheme],
    factory: TokenFactory,
    rng: np.random.Generator | None = None,
) -> QueryToken:
    """Full client-side token acquisition: keygen, upload, decrypt.

    This is the ahead-of-time phase of SS6.3; nothing here depends on
    the eventual query string.
    """
    keys, enc_keys, upload_bytes = make_client_keys(schemes, rng)
    # tiptoe-lint: disable=itaint-raise -- mint()'s error path embeds only the *names* of missing services (dict keys), never the encrypted key material
    payload = factory.mint(enc_keys)
    hint_products = {
        name: schemes[name].decrypt_hint_product(keys[name], payload.hints[name])
        for name in schemes
    }
    return QueryToken(
        keys=keys,
        hint_products=hint_products,
        upload_bytes=upload_bytes,
        download_bytes=payload.wire_bytes(),
    )
