"""The data-loading batch jobs (SS3.2): embed, cluster, preprocess.

``TiptoeIndex.build`` converts a raw corpus (texts + URLs, or
precomputed embeddings for image search) into everything the two
client-facing services need:

1. *Embed*: run every document through the server-chosen embedding
   function (and PCA), then quantize to fixed precision.
2. *Cluster*: spherical k-means with balancing and boundary
   multi-assignment; the centroids become client metadata.
3. *Build matrices*: the ranking matrix of Fig. 3 (one column block
   per cluster, one row per within-cluster position) and the
   positional URL batches, laid out consistently so a ranking row
   maps to a URL batch by arithmetic alone.
4. *Preprocess cryptography*: the SimplePIR hints and their
   modulus-switched forms for both services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster import ClusterIndex
from repro.core.config import TiptoeConfig
from repro.core.costs import CostLedger
from repro.corpus.urls import UrlBatch, UrlBatcher
from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.quantize import auto_gain, quantize_gained
from repro.homenc.double import DoubleLheParams, DoubleLheScheme
from repro.homenc.token import TokenFactory
from repro.lwe import sampling
from repro.lwe.params import LweParams, SecurityLevel, select_params
from repro.pir.database import PackedDatabase

#: Outer (RLWE) ring dimension per security level.
_OUTER_N = {
    SecurityLevel.TOY: 64,
    SecurityLevel.LIGHT: 256,
    SecurityLevel.PAPER_128: 2048,
}


def ranking_scheme_for(
    config: TiptoeConfig, num_columns: int, a_seed: bytes | None = None
) -> DoubleLheScheme:
    """The ranking service's double-LHE scheme for an m-column matrix.

    ``a_seed`` pins the public LWE matrix A; a builder that wants
    reproducible (and delta-reusable) preprocessing derives it from its
    build RNG, otherwise a fresh random seed is drawn.
    """
    p_rank = config.ranking_plaintext_modulus()
    config.quantization().check_modulus(p_rank, config.effective_dim)
    rank_cfg = select_params(64, num_columns, config.security, p=p_rank)
    return DoubleLheScheme(
        DoubleLheParams(
            inner=LweParams(
                n=rank_cfg.n,
                q_bits=64,
                p=p_rank,
                sigma=rank_cfg.sigma,
                m=num_columns,
            ),
            outer_n=_OUTER_N[config.security],
        ),
        a_seed=a_seed if a_seed is not None else sampling.random_seed(),
    )


def url_side_for(
    url_batches: list[UrlBatch],
    config: TiptoeConfig,
    a_seed: bytes | None = None,
) -> tuple[PackedDatabase, DoubleLheScheme]:
    """Pack the URL batches and build the URL service's scheme."""
    records = [b.payload for b in url_batches]
    width = max(2, len(records))
    budget = select_params(32, width, config.security)
    p_url = max(16, min(budget.p, 1 << 16))
    db = PackedDatabase.from_records(records, p_url)
    scheme = DoubleLheScheme(
        DoubleLheParams(
            inner=LweParams(
                n=budget.n,
                q_bits=32,
                p=p_url,
                sigma=budget.sigma,
                m=db.num_cols,
            ),
            outer_n=_OUTER_N[config.security],
        ),
        a_seed=a_seed if a_seed is not None else sampling.random_seed(),
    )
    return db, scheme


def layout_from_cluster_streams(
    streams, dim: int, sizes: np.ndarray
) -> RankingLayout:
    """Assemble the Fig. 3 ranking matrix from per-cluster streams.

    ``streams`` yields one ``(doc_ids, rows)`` pair per cluster in
    cluster order, where ``rows`` is the ``(len(doc_ids), dim)`` int64
    quantized block; ``sizes`` is the per-cluster size vector (known
    from the assignment stage before any block is materialized).  Only
    one cluster's block is in flight at a time on top of the output
    matrix itself -- the streaming counterpart of ``_build_layout``'s
    whole-corpus ``quantized[docs]`` gather, producing bit-identical
    layouts.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    num_clusters = sizes.shape[0]
    max_size = int(sizes.max()) if num_clusters else 0
    matrix = np.zeros((max_size, dim * num_clusters), dtype=np.int64)
    cluster_doc_ids: list[list[int]] = []
    for c, (doc_ids, rows) in enumerate(streams):
        if len(doc_ids) != int(sizes[c]) or rows.shape != (len(doc_ids), dim):
            raise ValueError(
                f"cluster {c}: stream shape {rows.shape} does not match"
                f" declared size {int(sizes[c])}"
            )
        matrix[: len(doc_ids), c * dim : (c + 1) * dim] = rows
        cluster_doc_ids.append([int(d) for d in doc_ids])
    if len(cluster_doc_ids) != num_clusters:
        raise ValueError(
            f"stream yielded {len(cluster_doc_ids)} clusters, expected"
            f" {num_clusters}"
        )
    offsets = np.zeros(num_clusters, dtype=np.int64)
    if num_clusters > 1:
        offsets[1:] = np.cumsum(sizes)[:-1]
    return RankingLayout(
        matrix=matrix,
        cluster_doc_ids=cluster_doc_ids,
        cluster_sizes=sizes,
        cluster_offsets=offsets,
        dim=dim,
    )


@dataclass
class RankingLayout:
    """The Fig. 3 matrix plus the bookkeeping to interpret its rows."""

    matrix: np.ndarray  # (max_cluster_size, dim * num_clusters), int64
    cluster_doc_ids: list[list[int]]
    cluster_sizes: np.ndarray
    cluster_offsets: np.ndarray  # start of each cluster in URL layout
    dim: int

    @property
    def num_clusters(self) -> int:
        return len(self.cluster_doc_ids)

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    def position_of(self, cluster: int, row: int) -> int:
        """Global URL-layout position of a (cluster, row) pair."""
        if row >= self.cluster_sizes[cluster]:
            raise IndexError("row beyond the cluster's real size")
        return int(self.cluster_offsets[cluster]) + row

    def doc_id_of(self, cluster: int, row: int) -> int:
        """Ground-truth document id (evaluation only; not client data)."""
        return self.cluster_doc_ids[cluster][row]


@dataclass(frozen=True)
class ClientMetadata:
    """What a client downloads before its first query (SS3.2).

    At paper scale this is the 68 MiB "cluster centroids and associated
    metadata"; its byte size here is counted the same way.
    """

    centroids: np.ndarray
    cluster_sizes: np.ndarray
    cluster_offsets: np.ndarray
    dim: int
    url_batch_size: int
    num_url_batches: int
    results_per_query: int
    quantization_gain: float = 1.0

    def download_bytes(self, compressed: bool = False) -> int:
        per_value = 1 if compressed else 4
        return int(
            self.centroids.size * per_value + self.cluster_sizes.size * 4
        )


@dataclass
class TiptoeIndex:
    """Everything the batch jobs produce for one corpus snapshot."""

    config: TiptoeConfig
    embedder: object
    pca: PcaReducer | None
    clusters: ClusterIndex
    layout: RankingLayout
    url_batches: list[UrlBatch]
    url_db: PackedDatabase
    ranking_scheme: DoubleLheScheme
    url_scheme: DoubleLheScheme
    ranking_prep: object
    url_prep: object
    token_factory: TokenFactory
    build_ledger: CostLedger
    embeddings: np.ndarray = field(repr=False, default=None)
    url_position_map: np.ndarray | None = field(repr=False, default=None)
    quantization_gain: float = 1.0
    #: Sidecar metadata (plan parameters keyed by service) when this
    #: index was loaded from a ``repro.index/v2`` artifact with a
    #: validated ``precompute.npz``; None otherwise.
    precompute: dict | None = field(repr=False, default=None)
    #: Margin threshold of the streaming boundary rule (ingest-built
    #: indexes).  None for the one-shot batch build, whose boundary
    #: duplication uses the corpus-global budget rule instead.
    boundary_threshold: float | None = None
    #: Per-document SHA-256 content digests, shape (num_docs, 32)
    #: uint8 (ingest-built indexes).  The delta reindex diffs a new
    #: corpus snapshot against these to find changed documents.
    doc_digests: np.ndarray | None = field(repr=False, default=None)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        texts: list[str],
        urls: list[str],
        config: TiptoeConfig,
        embedder=None,
        embeddings: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeIndex":
        """Run the full data-loading pipeline over a corpus."""
        if len(texts) != len(urls):
            raise ValueError("need exactly one URL per document")
        if not texts:
            raise ValueError("cannot index an empty corpus")
        rng = sampling.resolve_rng(rng, fallback_seed=0)
        ledger = CostLedger()

        # 1. Embed.
        if embeddings is None:
            if embedder is None:
                embedder = LsaEmbedder.fit(texts, dim=config.embedding_dim)
            embeddings = embedder.embed_batch(texts)
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.shape != (len(texts), config.embedding_dim):
            raise ValueError(
                f"embeddings have shape {embeddings.shape}, expected"
                f" ({len(texts)}, {config.embedding_dim})"
            )
        ledger.add("embed", embeddings.size)
        pca = None
        if config.pca_dim is not None and config.pca_dim < config.embedding_dim:
            pca = PcaReducer.fit(embeddings, config.pca_dim)
            embeddings = pca.transform(embeddings)
            ledger.add("pca", embeddings.size * config.embedding_dim)

        # 2. Cluster.
        target = config.cluster_size_for(len(texts))
        clusters = ClusterIndex.build(
            embeddings,
            target_cluster_size=target,
            rng=rng,
            boundary_fraction=config.boundary_fraction,
            sample_size=config.cluster_sample_size,
        )
        ledger.add(
            "cluster", len(texts) * clusters.num_clusters * embeddings.shape[1]
        )

        # 3. Ranking matrix + URL layout.  A server-chosen gain
        # spreads the embedding entries over the fixed-precision range
        # (published to clients with the metadata).  Quantization runs
        # per row-chunk through one bounded scratch buffer instead of
        # materializing a gained float64 copy of the whole corpus next
        # to the int64 result.
        gain = auto_gain(embeddings)
        quantized = quantize_gained(embeddings, gain, config.quantization())
        layout = cls._build_layout(quantized, clusters)
        batcher = UrlBatcher(batch_size=config.url_batch_size)
        layout_urls = [
            urls[doc]
            for members in layout.cluster_doc_ids
            for doc in members
        ]
        url_position_map = None
        if not config.group_urls_by_content:
            # Fig. 9 step-3-only ablation: scatter URLs across batches
            # so a fetched batch shares no topical structure with the
            # top result.  The permutation becomes (bulky) client
            # metadata; that bulk is exactly why the paper groups by
            # content instead.
            perm = rng.permutation(len(layout_urls))
            scattered = [""] * len(layout_urls)
            for i, target in enumerate(perm):
                scattered[target] = layout_urls[i]
            layout_urls = scattered
            url_position_map = perm
        url_batches = batcher.build_positional_batches(layout_urls)

        # 4. Cryptographic preprocessing.  Both A-seeds derive from the
        # build RNG (ranking first, then URL), so a seeded build is
        # fully deterministic end to end -- which is also what lets a
        # delta rebuild reuse per-cluster hint contributions.
        ranking_scheme = ranking_scheme_for(
            config, layout.matrix.shape[1], a_seed=rng.bytes(32)
        )
        url_db, url_scheme = url_side_for(
            url_batches, config, a_seed=rng.bytes(32)
        )
        ranking_prep = ranking_scheme.preprocess(layout.matrix)
        url_prep = url_scheme.preprocess(url_db.matrix)
        ledger.add(
            "crypto",
            ranking_scheme.inner.preprocess_word_ops(layout.rows)
            + url_scheme.inner.preprocess_word_ops(url_db.num_rows),
        )
        token_factory = TokenFactory()
        token_factory.register("ranking", ranking_scheme, ranking_prep)
        token_factory.register("url", url_scheme, url_prep)
        return cls(
            config=config,
            embedder=embedder,
            pca=pca,
            clusters=clusters,
            layout=layout,
            url_batches=url_batches,
            url_db=url_db,
            ranking_scheme=ranking_scheme,
            url_scheme=url_scheme,
            ranking_prep=ranking_prep,
            url_prep=url_prep,
            token_factory=token_factory,
            build_ledger=ledger,
            embeddings=embeddings,
            url_position_map=url_position_map,
            quantization_gain=gain,
        )

    @staticmethod
    def _build_layout(
        quantized: np.ndarray, clusters: ClusterIndex
    ) -> RankingLayout:
        dim = quantized.shape[1]
        members = clusters.assignments
        sizes = np.array([len(m) for m in members], dtype=np.int64)
        max_size = int(sizes.max())
        matrix = np.zeros((max_size, dim * len(members)), dtype=np.int64)
        for c, docs in enumerate(members):
            block = slice(c * dim, (c + 1) * dim)
            matrix[: len(docs), block] = quantized[docs]
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        return RankingLayout(
            matrix=matrix,
            cluster_doc_ids=[list(m) for m in members],
            cluster_sizes=sizes,
            cluster_offsets=offsets,
            dim=dim,
        )

    @staticmethod
    def _build_url_side(
        url_batches: list[UrlBatch],
        config: TiptoeConfig,
        a_seed: bytes | None = None,
    ) -> tuple[PackedDatabase, DoubleLheScheme]:
        return url_side_for(url_batches, config, a_seed=a_seed)

    # -- persistence ---------------------------------------------------------

    def save(self, path, *, precompute: bool | None = None) -> None:
        """Persist the build outputs (see :mod:`repro.core.artifacts`).

        A later ``TiptoeIndex.load(path)`` -- typically in a
        ``python -m repro serve`` process -- reconstructs an index
        whose searches are bit-identical to this one's.  With
        ``precompute=True`` (default: the config's
        ``precompute_sidecar`` knob) the artifact also gets the
        ``precompute.npz`` sidecar, which removes the hint NTTs and
        plan scans from serve cold-start.
        """
        from repro.core.artifacts import save_index

        if precompute is None:
            precompute = self.config.precompute_sidecar
        save_index(self, path, precompute=precompute)

    @classmethod
    def load(cls, path) -> "TiptoeIndex":
        """Load an index previously written by :meth:`save`."""
        from repro.core.artifacts import load_index

        return load_index(path)

    # -- accessors -----------------------------------------------------------

    @property
    def num_docs(self) -> int:
        return len(self.clusters.doc_to_clusters)

    def client_metadata(self) -> ClientMetadata:
        return ClientMetadata(
            centroids=self.clusters.centroids,
            cluster_sizes=self.layout.cluster_sizes,
            cluster_offsets=self.layout.cluster_offsets,
            dim=self.layout.dim,
            url_batch_size=self.config.url_batch_size,
            num_url_batches=len(self.url_batches),
            results_per_query=self.config.results_per_query,
            quantization_gain=self.quantization_gain,
        )

    def model_bytes(self) -> int:
        """Client download size of the embedding model + PCA map."""
        total = 0
        if hasattr(self.embedder, "model_bytes"):
            total += self.embedder.model_bytes()
        if self.pca is not None:
            total += self.pca.projection_bytes()
        return total

    def index_storage_bytes(self) -> int:
        """Server-side index size (embeddings + URL database)."""
        # 4-bit entries: two per byte, as the paper stores them.
        ranking = self.layout.matrix.size // 2
        return int(ranking + self.url_db.storage_bytes())
