"""The private nearest-neighbor ranking protocol (SS4, Fig. 10).

Client side: build the augmented query vector q-tilde -- zero
everywhere except the chosen cluster's block, which holds the
quantized query embedding -- and encrypt it.  Server side: one big
matrix-vector product over the Fig. 3 matrix.  The server touches
every cluster (privacy demands the full linear scan); the layout makes
the answer contain exactly the chosen cluster's inner-product scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.costs import CostLedger
from repro.homenc.double import DoubleLheScheme
from repro.lwe.params import LweParams
from repro.lwe.regev import Ciphertext, stack_ciphertexts


@dataclass
class RankingQuery:
    """One ranking query: a single fixed-size inner ciphertext."""

    ciphertext: Ciphertext

    def wire_bytes(self) -> int:
        return self.ciphertext.upload_bytes


@dataclass
class RankingAnswer:
    """Encrypted inner-product scores for the (hidden) chosen cluster."""

    values: np.ndarray
    bytes_per_element: int

    def wire_bytes(self) -> int:
        return len(self.values) * self.bytes_per_element


@dataclass
class RankingBatch:
    """Q stacked ranking queries: one ciphertext per column.

    This is the unit the batch plane moves end to end: the scheduler
    coalesces queries into one batch, the coordinator slices it by
    shard, and each worker runs a single matrix-matrix product against
    its column block.  Column order is the fan-out order, so answer
    column i always belongs to query i.
    """

    stacked: np.ndarray  # (m, Q), one query ciphertext per column
    params: LweParams

    def __post_init__(self) -> None:
        if self.stacked.ndim != 2:
            raise ValueError("a ranking batch must be a (m, Q) matrix")
        if self.stacked.shape[0] != self.params.m:
            raise ValueError(
                f"batch has {self.stacked.shape[0]} ciphertext rows,"
                f" expected {self.params.m}"
            )
        if self.stacked.shape[1] == 0:
            raise ValueError("a ranking batch must hold at least one query")

    @classmethod
    def from_queries(
        cls, queries: Sequence[RankingQuery]
    ) -> "RankingBatch":
        """Stack Q individual queries into one batch (column i = query i)."""
        if not queries:
            raise ValueError("cannot build a batch from zero queries")
        stacked = stack_ciphertexts([q.ciphertext for q in queries])
        return cls(stacked=stacked, params=queries[0].ciphertext.params)

    @property
    def size(self) -> int:
        return self.stacked.shape[1]

    def wire_bytes(self) -> int:
        return self.stacked.size * self.params.bytes_per_element


@dataclass
class RankingBatchAnswer:
    """The stacked evaluated ciphertexts for one batch (column i =
    query i's answer, bit-identical to the sequential path)."""

    stacked: np.ndarray  # (rows, Q)
    bytes_per_element: int

    def __post_init__(self) -> None:
        if self.stacked.ndim != 2:
            raise ValueError("a batch answer must be a (rows, Q) matrix")

    @property
    def size(self) -> int:
        return self.stacked.shape[1]

    def split(self) -> list[RankingAnswer]:
        """Fan the columns back out into per-query answers."""
        return [
            RankingAnswer(
                values=self.stacked[:, i],
                bytes_per_element=self.bytes_per_element,
            )
            for i in range(self.stacked.shape[1])
        ]

    def wire_bytes(self) -> int:
        return self.stacked.size * self.bytes_per_element


def build_query_vector(
    query_embedding: np.ndarray, cluster_index: int, num_clusters: int
) -> np.ndarray:
    """The augmented vector q-tilde of Fig. 10 (step 1).

    ``query_embedding`` is the quantized (integer) query vector.
    """
    dim = len(query_embedding)
    if not 0 <= cluster_index < num_clusters:
        raise IndexError(f"cluster index {cluster_index} out of range")
    q_tilde = np.zeros(dim * num_clusters, dtype=np.int64)
    block = slice(cluster_index * dim, (cluster_index + 1) * dim)
    q_tilde[block] = query_embedding
    return q_tilde


class RankingClient:
    """Client-side query construction and score recovery."""

    def __init__(self, scheme: DoubleLheScheme, dim: int, num_clusters: int):
        self.scheme = scheme
        self.dim = dim
        self.num_clusters = num_clusters
        if scheme.params.inner.m != dim * num_clusters:
            raise ValueError(
                "scheme upload dimension does not match dim * clusters"
            )

    def build_query(
        self,
        keys,
        query_embedding: np.ndarray,
        cluster_index: int,
        rng: np.random.Generator | None = None,
    ) -> RankingQuery:
        q_tilde = build_query_vector(
            query_embedding, cluster_index, self.num_clusters
        )
        return RankingQuery(ciphertext=self.scheme.encrypt(keys, q_tilde, rng))

    def decode_scores(
        self, keys, answer: RankingAnswer, hint_product: np.ndarray
    ) -> np.ndarray:
        """Centered inner-product scores, one per cluster row."""
        return self.scheme.decrypt_centered(keys, answer.values, hint_product)


class RankingService:
    """Single-node reference ranking server.

    The sharded deployment of SS4.3 lives in
    :mod:`repro.core.cluster_runtime`; this reference implementation
    answers the same queries on one node and is what the sharded
    version is tested against.
    """

    def __init__(self, scheme: DoubleLheScheme, matrix: np.ndarray):
        self.scheme = scheme
        self.matrix = matrix
        self.ledger = CostLedger()

    def answer(self, query: RankingQuery) -> RankingAnswer:
        values = self.scheme.apply(self.matrix, query.ciphertext)
        self.ledger.add(
            "ranking", self.scheme.inner.apply_word_ops(self.matrix.shape[0])
        )
        return RankingAnswer(
            values=values,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )
