"""The private nearest-neighbor ranking protocol (SS4, Fig. 10).

Client side: build the augmented query vector q-tilde -- zero
everywhere except the chosen cluster's block, which holds the
quantized query embedding -- and encrypt it.  Server side: one big
matrix-vector product over the Fig. 3 matrix.  The server touches
every cluster (privacy demands the full linear scan); the layout makes
the answer contain exactly the chosen cluster's inner-product scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostLedger
from repro.homenc.double import DoubleLheScheme
from repro.lwe.regev import Ciphertext


@dataclass
class RankingQuery:
    """One ranking query: a single fixed-size inner ciphertext."""

    ciphertext: Ciphertext

    def wire_bytes(self) -> int:
        return self.ciphertext.upload_bytes


@dataclass
class RankingAnswer:
    """Encrypted inner-product scores for the (hidden) chosen cluster."""

    values: np.ndarray
    bytes_per_element: int

    def wire_bytes(self) -> int:
        return len(self.values) * self.bytes_per_element


def build_query_vector(
    query_embedding: np.ndarray, cluster_index: int, num_clusters: int
) -> np.ndarray:
    """The augmented vector q-tilde of Fig. 10 (step 1).

    ``query_embedding`` is the quantized (integer) query vector.
    """
    dim = len(query_embedding)
    if not 0 <= cluster_index < num_clusters:
        raise IndexError(f"cluster index {cluster_index} out of range")
    q_tilde = np.zeros(dim * num_clusters, dtype=np.int64)
    block = slice(cluster_index * dim, (cluster_index + 1) * dim)
    q_tilde[block] = query_embedding
    return q_tilde


class RankingClient:
    """Client-side query construction and score recovery."""

    def __init__(self, scheme: DoubleLheScheme, dim: int, num_clusters: int):
        self.scheme = scheme
        self.dim = dim
        self.num_clusters = num_clusters
        if scheme.params.inner.m != dim * num_clusters:
            raise ValueError(
                "scheme upload dimension does not match dim * clusters"
            )

    def build_query(
        self,
        keys,
        query_embedding: np.ndarray,
        cluster_index: int,
        rng: np.random.Generator | None = None,
    ) -> RankingQuery:
        q_tilde = build_query_vector(
            query_embedding, cluster_index, self.num_clusters
        )
        return RankingQuery(ciphertext=self.scheme.encrypt(keys, q_tilde, rng))

    def decode_scores(
        self, keys, answer: RankingAnswer, hint_product: np.ndarray
    ) -> np.ndarray:
        """Centered inner-product scores, one per cluster row."""
        return self.scheme.decrypt_centered(keys, answer.values, hint_product)


class RankingService:
    """Single-node reference ranking server.

    The sharded deployment of SS4.3 lives in
    :mod:`repro.core.cluster_runtime`; this reference implementation
    answers the same queries on one node and is what the sharded
    version is tested against.
    """

    def __init__(self, scheme: DoubleLheScheme, matrix: np.ndarray):
        self.scheme = scheme
        self.matrix = matrix
        self.ledger = CostLedger()

    def answer(self, query: RankingQuery) -> RankingAnswer:
        values = self.scheme.apply(self.matrix, query.ciphertext)
        self.ledger.add(
            "ranking", self.scheme.inner.apply_word_ops(self.matrix.shape[0])
        )
        return RankingAnswer(
            values=values,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )
