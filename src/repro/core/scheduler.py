"""The cross-query batch scheduler: an admission queue for ranking.

Tiptoe's server cost is one linear scan per query; the paper's
throughput numbers assume that scan is amortized across many
concurrent clients (SS6, Table 7 reports core-seconds per query at
full load).  This module supplies the serving-side half of that
amortization: requests arriving on concurrent transport threads are
parked in an admission queue, a single dispatcher coalesces up to
``max_batch_size`` of them into one
:class:`~repro.core.ranking.RankingBatch`, the coordinator answers the
whole batch with one GEMM per shard, and the answers fan back out to
the waiting threads.

Batching changes *when* work happens, never *what* is computed: column
i of the stacked product is the exact mod-2^k ring product the
sequential path computes, so a batched answer is bit-identical to an
unbatched one (asserted in tests).  A failure while scanning --
e.g. a dead worker shard -- fails only the queries in that batch;
the dispatcher keeps serving subsequent batches.

Latency policy: a batch is dispatched as soon as it is full, or once
``max_batch_wait_s`` has elapsed since its *first* query was enqueued,
whichever comes first.  An idle scheduler dispatches a lone query
after at most the wait bound, so the worst-case added latency is one
hold window.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.ranking import RankingAnswer, RankingBatch, RankingQuery
from repro.obs import runtime as obs


class SchedulerClosed(RuntimeError):
    """The scheduler is not running; the query was not executed."""


class _Slot:
    """One waiting query: its parking event and eventual outcome."""

    __slots__ = ("query", "event", "answer", "error", "enqueued_at")

    def __init__(self, query: RankingQuery, now: float):
        self.query = query
        self.event = threading.Event()
        self.answer: RankingAnswer | None = None
        self.error: BaseException | None = None
        self.enqueued_at = now

    def resolve(self, answer: RankingAnswer) -> None:
        self.answer = answer
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


@dataclass
class SchedulerStats:
    """Always-on counters (metrics histograms need obs enabled)."""

    batches: int = 0
    queries: int = 0
    failed_queries: int = 0
    max_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0


class BatchScheduler:
    """Coalesces concurrent ranking queries into stacked batches.

    ``submit`` blocks the calling (transport) thread until its query's
    batch has been answered and returns that query's own answer; the
    dispatcher thread is the only caller of the coordinator's
    ``answer_stacked``.  Lifecycle is ``start`` / ``stop`` (idempotent,
    also usable as a context manager); the owning
    ``ShardedRankingService`` drives both from its ``open`` / ``close``.
    """

    def __init__(
        self,
        service,
        max_batch_size: int,
        max_batch_wait_ms: float = 2.0,
        clock=time.perf_counter,
    ):
        if max_batch_size < 1:
            raise ValueError("max batch size must be at least 1")
        if max_batch_wait_ms < 0:
            raise ValueError("max batch wait must be non-negative")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_batch_wait_s = max_batch_wait_ms / 1000.0
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: list[_Slot] = []  # guarded-by: _lock
        self._running = False  # guarded-by: _lock
        self._thread: threading.Thread | None = None
        self.stats = SchedulerStats()

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        with self._lock:
            return self._running

    def start(self) -> None:
        """Start the dispatcher thread.  Idempotent."""
        with self._lock:
            if self._running:
                return
            self._running = True
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="ranking-batcher", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Drain the queue, stop the dispatcher, join it.  Idempotent.

        Queries already enqueued are still answered; queries submitted
        after stop begins raise :class:`SchedulerClosed`.
        """
        with self._wakeup:
            if not self._running:
                return
            self._running = False
            self._wakeup.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        # The dispatcher drains before exiting; anything still queued
        # means it died abnormally -- never strand a waiting thread.
        with self._lock:
            leftover, self._queue = self._queue, []
        for slot in leftover:
            slot.fail(SchedulerClosed("scheduler stopped before dispatch"))

    def __enter__(self) -> "BatchScheduler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- the submission path -------------------------------------------------

    def submit(self, query: RankingQuery) -> RankingAnswer:
        """Enqueue one query and block until its answer is ready.

        Raises whatever the batch execution raised (e.g.
        ``WorkerFailure``) -- scoped to this batch only -- or
        :class:`SchedulerClosed` if the scheduler is not running.
        """
        slot = _Slot(query, self._clock())
        with self._wakeup:
            if not self._running:
                raise SchedulerClosed("scheduler is not running")
            self._queue.append(slot)
            self._wakeup.notify_all()
        slot.event.wait()
        if slot.error is not None:
            raise slot.error
        return slot.answer

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    def health(self) -> dict:
        return {
            "running": self.running,
            "max_batch_size": self.max_batch_size,
            "max_batch_wait_ms": self.max_batch_wait_s * 1000.0,
            "queued": self.queued,
            "batches": self.stats.batches,
            "queries": self.stats.queries,
            "failed_queries": self.stats.failed_queries,
            "mean_batch_size": self.stats.mean_batch_size,
            # Which kernel backend the batches it dispatches execute on
            # (the coordinator owns the plans; reference when unset).
            "kernel_backend": getattr(self.service, "kernel_backend", None)
            or "reference",
        }

    # -- the dispatcher ------------------------------------------------------

    def _take_batch(self) -> list[_Slot] | None:
        """Block until a batch is ready; None once stopped and drained.

        The hold window opens when the oldest queued query arrived: the
        batch ships as soon as it is full or that query has waited
        ``max_batch_wait_s``, so added latency is bounded per query,
        not reset by late arrivals.
        """
        with self._wakeup:
            while self._running and not self._queue:
                self._wakeup.wait()
            if not self._queue:
                return None  # stopped and fully drained
            deadline = self._queue[0].enqueued_at + self.max_batch_wait_s
            while self._running and len(self._queue) < self.max_batch_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            batch = self._queue[: self.max_batch_size]
            del self._queue[: self.max_batch_size]
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            slots = self._take_batch()
            if slots is None:
                return
            self._run_batch(slots)

    def _run_batch(self, slots: list[_Slot]) -> None:
        now = self._clock()
        for slot in slots:
            obs.observe("scheduler.queue_wait_seconds", now - slot.enqueued_at)
        obs.observe("scheduler.batch_size", len(slots))
        self.stats.batches += 1
        self.stats.queries += len(slots)
        self.stats.max_batch = max(self.stats.max_batch, len(slots))
        try:
            batch = RankingBatch.from_queries([slot.query for slot in slots])
            answers = self.service.answer_stacked(batch).split()
        except BaseException as exc:  # fail this batch, keep serving
            self.stats.failed_queries += len(slots)
            for slot in slots:
                slot.fail(exc)
            return
        for slot, answer in zip(slots, answers):
            slot.resolve(answer)
