"""Exact keyword-search backends (SS9).

Embedding search handles "knee pain" well but "123 Main Street, New
York" poorly.  SS9's remedy is a suite of typed backends: for each
common exact-string query type (phone numbers, addresses, ...), a
private key-value store maps each canonicalized string in the corpus
to the documents containing it.  The client software extracts a string
of each supported type from the query, canonicalizes it, and performs
a keyword-PIR lookup against the matching backend -- revealing neither
the string nor even which backend had a hit.

This module provides the extractors/canonicalizers, the backend
builder, and the router that merges exact hits with semantic results.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.lwe.params import SecurityLevel
from repro.pir.keyword import KeywordPir

#: Recognizers for the supported entity types.  Patterns cover both
#: the synthetic corpus's canonical forms and common free-text forms.
_PHONE_FREETEXT = re.compile(r"\b(?:\+?\d[\s().-]{0,2}){10,13}\b")
_PHONE_CANONICAL = re.compile(r"\bph(\d{10})\b")
_ADDRESS_CANONICAL = re.compile(r"\b(\d{1,3}mainst\d{5})\b")
_ADDRESS_FREETEXT = re.compile(
    r"\b(\d{1,4})\s+main\s+st(?:reet)?\.?\s*#?\s*(\d{4,6})\b", re.IGNORECASE
)


def canonicalize_phone(text: str) -> str | None:
    """Extract and canonicalize a phone number, if one is present."""
    match = _PHONE_CANONICAL.search(text)
    if match:
        return f"ph{match.group(1)}"
    match = _PHONE_FREETEXT.search(text)
    if match:
        digits = re.sub(r"\D", "", match.group(0))
        if len(digits) >= 10:
            return f"ph{digits[-10:]}"
    return None


def canonicalize_address(text: str) -> str | None:
    """Extract and canonicalize a street address, if one is present."""
    match = _ADDRESS_CANONICAL.search(text)
    if match:
        return match.group(1)
    match = _ADDRESS_FREETEXT.search(text)
    if match:
        return f"{int(match.group(1))}mainst{match.group(2)}"
    return None


EXTRACTORS = {
    "phone": canonicalize_phone,
    "address": canonicalize_address,
}


def classify_entity(entity: str) -> str | None:
    """Which backend an already-canonical entity string belongs to."""
    if _PHONE_CANONICAL.fullmatch(entity):
        return "phone"
    if _ADDRESS_CANONICAL.fullmatch(entity):
        return "address"
    return None


def _encode_doc_ids(doc_ids: list[int]) -> bytes:
    return b"".join(d.to_bytes(4, "little") for d in sorted(set(doc_ids)))


def _decode_doc_ids(blob: bytes) -> list[int]:
    return [
        int.from_bytes(blob[i : i + 4], "little")
        for i in range(0, len(blob), 4)
    ]


@dataclass
class ExactBackend:
    """One typed backend: a keyword-PIR store of entity -> doc ids."""

    entity_type: str
    store: KeywordPir
    num_keys: int

    def lookup(
        self, entity: str, rng: np.random.Generator | None = None
    ) -> list[int]:
        blob = self.store.lookup_with_hint(entity, rng)
        return _decode_doc_ids(blob) if blob else []


@dataclass
class ExactSearchSuite:
    """The full suite: one backend per supported entity type."""

    backends: dict[str, ExactBackend] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        documents,
        level: SecurityLevel = SecurityLevel.TOY,
    ) -> "ExactSearchSuite":
        """Index every recognized entity from a document collection.

        ``documents`` is any iterable of objects with ``doc_id`` and
        ``text`` attributes (e.g. :class:`repro.corpus.Document`).
        """
        tables: dict[str, dict[str, list[int]]] = {
            name: {} for name in EXTRACTORS
        }
        for doc in documents:
            for name, extractor in EXTRACTORS.items():
                entity = extractor(doc.text)
                if entity is not None:
                    tables[name].setdefault(entity, []).append(doc.doc_id)
        backends = {}
        for name, table in tables.items():
            if not table:
                continue
            encoded = {k: _encode_doc_ids(v) for k, v in table.items()}
            backends[name] = ExactBackend(
                entity_type=name,
                store=KeywordPir.build(encoded, level=level),
                num_keys=len(table),
            )
        return cls(backends=backends)

    def supported_types(self) -> list[str]:
        return sorted(self.backends)

    def route(
        self, query: str, rng: np.random.Generator | None = None
    ) -> dict[str, list[int]]:
        """Extract entities from the query and look each up privately.

        Returns entity-type -> matching doc ids (possibly empty).  The
        traffic pattern depends only on which entity *types* the query
        syntactically contains, never on the strings themselves.
        """
        hits: dict[str, list[int]] = {}
        for name, backend in self.backends.items():
            entity = EXTRACTORS[name](query)
            if entity is not None:
                hits[name] = backend.lookup(entity, rng)
        return hits

    def merge_results(
        self,
        query: str,
        semantic_doc_ids: list[int],
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """Exact hits first (they are definitionally best), then the
        semantic ranking, deduplicated."""
        exact: list[int] = []
        for doc_ids in self.route(query, rng).values():
            exact.extend(doc_ids)
        seen = set()
        merged = []
        for doc in exact + list(semantic_doc_ids):
            if doc not in seen:
                seen.add(doc)
                merged.append(doc)
        return merged
