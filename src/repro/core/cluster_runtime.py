"""Coordinator and sharded workers (SS4.3).

The ranking matrix is vertically partitioned by cluster across W
workers: worker i holds the column blocks of its clusters.  The
coordinator splits the client's ciphertext -- the ciphertext is a
vector over the same columns, so the split is a plain slice -- ships
chunk i to worker i, and sums the partial answers mod q.  If any
worker fails mid-query the coordinator cannot reply (the paper notes
the same limitation and the replication remedy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostLedger
from repro.core.ranking import RankingAnswer, RankingQuery
from repro.homenc.double import DoubleLheScheme
from repro.lwe import modular
from repro.net import wire
from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service
from repro.obs import runtime as obs


class WorkerFailure(RuntimeError):
    """A worker shard did not answer; the query cannot complete."""


@dataclass
class RankingWorker:
    """One shard: a contiguous range of cluster column-blocks."""

    worker_id: int
    matrix_slice: np.ndarray  # (rows, cols of this shard)
    col_start: int
    q_bits: int
    alive: bool = True
    ledger: CostLedger = field(default_factory=CostLedger)

    def answer_chunk(self, ct_chunk: np.ndarray) -> np.ndarray:
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is down")
        if len(ct_chunk) != self.matrix_slice.shape[1]:
            raise ValueError("ciphertext chunk does not match shard width")
        self.ledger.add(
            "ranking", 2 * self.matrix_slice.shape[0] * self.matrix_slice.shape[1]
        )
        return modular.matmul(self.matrix_slice, ct_chunk, self.q_bits)

    def storage_bytes(self) -> int:
        """Shard size at 4-bit entries (what bounds RAM per machine)."""
        return self.matrix_slice.size // 2


@dataclass
class ShardedRankingService(Service):
    """The coordinator plus its worker fleet.

    With ``parallel=True`` the coordinator fans chunks out to a thread
    pool -- NumPy's integer matmul releases the GIL, so shards really
    do run concurrently, mirroring the paper's parallel workers.

    As a :class:`~repro.net.service.Service` its wire interface is one
    ``answer`` method carrying a serialized ciphertext.
    """

    workers: list[RankingWorker]
    scheme: DoubleLheScheme
    ledger: CostLedger = field(default_factory=CostLedger)
    parallel: bool = False
    _pool: object = field(default=None, repr=False)

    service_name = "ranking"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("answer", self._handle_answer)

    def _handle_answer(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(payload, self.scheme.params.inner)
        answer = self.answer(RankingQuery(ciphertext=ct))
        return wire.encode_answer(
            answer.values, self.scheme.params.inner.q_bits
        )

    def health(self) -> dict:
        alive = sum(1 for w in self.workers if w.alive)
        return {
            "service": self.service_name,
            "status": "ok" if alive == len(self.workers) else "degraded",
            "workers": len(self.workers),
            "alive": alive,
        }

    @classmethod
    def build(
        cls,
        scheme: DoubleLheScheme,
        matrix: np.ndarray,
        dim: int,
        num_workers: int,
    ) -> "ShardedRankingService":
        """Partition the matrix by cluster across workers."""
        num_clusters = matrix.shape[1] // dim
        num_workers = min(num_workers, num_clusters)
        bounds = np.linspace(0, num_clusters, num_workers + 1).astype(int)
        workers = []
        q_bits = scheme.params.inner.q_bits
        for w in range(num_workers):
            col_start = bounds[w] * dim
            col_end = bounds[w + 1] * dim
            # Shards are stored pre-lifted into the ring so the online
            # hot loop is a bare integer matmul.
            workers.append(
                RankingWorker(
                    worker_id=w,
                    matrix_slice=modular.to_ring(
                        matrix[:, col_start:col_end], q_bits
                    ),
                    col_start=col_start,
                    q_bits=q_bits,
                )
            )
        return cls(workers=workers, scheme=scheme)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=len(self.workers))
        return self._pool

    def close(self) -> None:
        """Shut down the worker thread pool (idempotent).

        Without this the executor's non-daemon threads outlive the
        service and interpreter exit blocks joining them.  The service
        remains usable after close -- the pool is lazily recreated.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedRankingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def answer(self, query: RankingQuery) -> RankingAnswer:
        """Fan out the ciphertext, sum the partial answers."""
        q_bits = self.scheme.params.inner.q_bits
        ct = query.ciphertext.c
        with obs.span(
            "ranking.answer",
            workers=len(self.workers),
            parallel=self.parallel,
        ) as coord_span:

            def run(worker: RankingWorker) -> np.ndarray:
                width = worker.matrix_slice.shape[1]
                with obs.span(
                    "ranking.worker",
                    parent=coord_span,
                    worker=worker.worker_id,
                    rows=worker.matrix_slice.shape[0],
                    cols=width,
                ):
                    chunk = ct[worker.col_start : worker.col_start + width]
                    return worker.answer_chunk(chunk)

            if self.parallel and len(self.workers) > 1:
                partials = list(self._ensure_pool().map(run, self.workers))
            else:
                partials = [run(w) for w in self.workers]
            total = partials[0]
            for partial in partials[1:]:
                total = modular.add(total, partial, q_bits)
        for worker in self.workers:
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
        return RankingAnswer(
            values=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_batch(self, queries: list[RankingQuery]) -> list[RankingAnswer]:
        """Answer several queries in one pass over the index.

        Stacking the ciphertexts into a matrix turns B matrix-vector
        products into one matrix-matrix product -- the standard
        server-side batching that lifts sustained throughput (the
        index is streamed from memory once per batch instead of once
        per query).  With ``parallel=True`` shards run concurrently on
        the same thread pool as :meth:`answer`.  Answers are
        bit-identical to individual calls either way: each worker's
        partial is an exact ring product, and the mod-2^k accumulation
        is summed in worker order.
        """
        if not queries:
            return []
        q_bits = self.scheme.params.inner.q_bits
        stacked = np.stack([q.ciphertext.c for q in queries], axis=1)
        with obs.span(
            "ranking.answer_batch",
            workers=len(self.workers),
            batch=len(queries),
            parallel=self.parallel,
        ) as coord_span:

            def run(worker: RankingWorker) -> np.ndarray:
                if not worker.alive:
                    raise WorkerFailure(f"worker {worker.worker_id} is down")
                width = worker.matrix_slice.shape[1]
                with obs.span(
                    "ranking.worker",
                    parent=coord_span,
                    worker=worker.worker_id,
                    rows=worker.matrix_slice.shape[0],
                    cols=width,
                    batch=len(queries),
                ):
                    chunk = stacked[
                        worker.col_start : worker.col_start + width
                    ]
                    partial = modular.matmul(
                        worker.matrix_slice, chunk, q_bits
                    )
                worker.ledger.add(
                    "ranking", 2 * worker.matrix_slice.size * len(queries)
                )
                return partial

            if self.parallel and len(self.workers) > 1:
                partials = list(self._ensure_pool().map(run, self.workers))
            else:
                partials = [run(w) for w in self.workers]
            total = partials[0]
            for partial in partials[1:]:
                total = modular.add(total, partial, q_bits)
        for worker in self.workers:
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
        per_element = self.scheme.params.inner.bytes_per_element
        return [
            RankingAnswer(values=total[:, i], bytes_per_element=per_element)
            for i in range(len(queries))
        ]

    def fail_worker(self, worker_id: int) -> None:
        """Failure injection for tests/benchmarks."""
        self.workers[worker_id].alive = False

    def revive_worker(self, worker_id: int) -> None:
        self.workers[worker_id].alive = True

    def max_shard_bytes(self) -> int:
        return max(w.storage_bytes() for w in self.workers)


@dataclass
class ReplicatedRankingService:
    """Sharded ranking with per-shard replication (SS4.3).

    "To improve latency and fault-tolerance at some operating cost,
    the coordinator could farm out each task to multiple machines."
    Each shard is served by ``replicas`` identical workers; a query
    survives any failure pattern that leaves one live replica per
    shard.  Storage cost is ``replicas`` times the base deployment.
    """

    replica_groups: list[list[RankingWorker]]
    scheme: DoubleLheScheme
    ledger: CostLedger = field(default_factory=CostLedger)

    @classmethod
    def build(
        cls,
        scheme: DoubleLheScheme,
        matrix: np.ndarray,
        dim: int,
        num_workers: int,
        replicas: int = 2,
    ) -> "ReplicatedRankingService":
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        base = ShardedRankingService.build(scheme, matrix, dim, num_workers)
        groups = []
        for worker in base.workers:
            groups.append(
                [
                    RankingWorker(
                        worker_id=worker.worker_id * replicas + r,
                        matrix_slice=worker.matrix_slice,
                        col_start=worker.col_start,
                        q_bits=worker.q_bits,
                    )
                    for r in range(replicas)
                ]
            )
        return cls(replica_groups=groups, scheme=scheme)

    @property
    def replicas(self) -> int:
        return len(self.replica_groups[0])

    def answer(self, query: RankingQuery) -> RankingAnswer:
        """Fan out each chunk to the first live replica of its shard."""
        q_bits = self.scheme.params.inner.q_bits
        ct = query.ciphertext.c
        total = None
        for group in self.replica_groups:
            partial = None
            for worker in group:
                if not worker.alive:
                    continue
                width = worker.matrix_slice.shape[1]
                chunk = ct[worker.col_start : worker.col_start + width]
                partial = worker.answer_chunk(chunk)
                self.ledger.merge(worker.ledger)
                worker.ledger = CostLedger()
                break
            if partial is None:
                raise WorkerFailure(
                    f"all replicas of shard at column {group[0].col_start}"
                    " are down"
                )
            total = partial if total is None else modular.add(
                total, partial, q_bits
            )
        return RankingAnswer(
            values=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def fail_worker(self, shard: int, replica: int) -> None:
        self.replica_groups[shard][replica].alive = False

    def storage_bytes(self) -> int:
        """Total fleet storage -- ``replicas`` times the base index."""
        return sum(
            w.storage_bytes() for group in self.replica_groups for w in group
        )
