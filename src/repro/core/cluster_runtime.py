"""Coordinator and sharded workers (SS4.3), batch-first.

The ranking matrix is vertically partitioned by cluster across W
workers: worker i holds the column blocks of its clusters.  The
coordinator splits the client ciphertexts -- stacked into a
:class:`~repro.core.ranking.RankingBatch`, one query per column, so
the split is a plain row-slice of the stack -- ships chunk i to worker
i, and sums the partial answers mod q.  Each worker answers its chunk
with a single matrix-matrix product over a cached
:class:`~repro.lwe.modular.StackedPlan`, so a batch of Q queries
streams the shard from memory once instead of Q times.  If any worker
fails mid-batch the coordinator cannot reply for that batch (the paper
notes the same limitation and the replication remedy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostLedger
from repro.core.ranking import (
    RankingAnswer,
    RankingBatch,
    RankingBatchAnswer,
    RankingQuery,
)
from repro.homenc.double import DoubleLheScheme
from repro.lwe import modular
from repro.net import wire
from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service
from repro.obs import runtime as obs


class WorkerFailure(RuntimeError):
    """A worker shard did not answer; the query cannot complete."""


@dataclass
class RankingWorker:
    """One shard: a contiguous range of cluster column-blocks."""

    worker_id: int
    matrix_slice: np.ndarray  # (rows, cols of this shard)
    col_start: int
    q_bits: int
    alive: bool = True
    ledger: CostLedger = field(default_factory=CostLedger)
    #: Optional precomputed bound on the shard's centered entries
    #: (from the index sidecar); skips the plan's full-shard scan.  The
    #: full-matrix bound is exact-safe for any column slice of it.
    entry_bound: int | None = None
    #: Kernel backend executing this shard's products (None ->
    #: reference) plus tuned plan options; see repro.lwe.backends.
    kernel_backend: str | None = None
    kernel_opts: dict = field(default_factory=dict)
    _plan: object = field(default=None, repr=False)

    def batch_plan(self):
        """The shard's kernel-backend plan, built once and reused.

        Like the SimplePIR hint, the plan is message-independent: it
        depends only on the shard contents, never on any query.
        """
        if self._plan is None:
            from repro.lwe import backends as kernel_backends

            self._plan = kernel_backends.get_backend(self.kernel_backend).plan(
                self.matrix_slice,
                self.q_bits,
                entry_bound=self.entry_bound,
                **self.kernel_opts,
            )
        return self._plan

    @property
    def effective_backend(self) -> str | None:
        """The backend actually executing -- after availability
        fallback -- or None while the plan is still unbuilt."""
        plan = self._plan
        return getattr(plan, "backend_name", None) if plan is not None else None

    def drop_plan(self) -> None:
        """Release the plan (float staging, worker pools, segments)."""
        plan, self._plan = self._plan, None
        if plan is not None:
            plan.close()

    def answer_chunk(self, ct_chunk: np.ndarray) -> np.ndarray:
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is down")
        if len(ct_chunk) != self.matrix_slice.shape[1]:
            raise ValueError("ciphertext chunk does not match shard width")
        self.ledger.add(
            "ranking", 2 * self.matrix_slice.shape[0] * self.matrix_slice.shape[1]
        )
        return self.batch_plan().matvec(ct_chunk)

    def answer_stacked(self, chunk: np.ndarray) -> np.ndarray:
        """Answer a (width, Q) stacked chunk with one GEMM.

        Column i is bit-identical to ``answer_chunk(chunk[:, i])`` --
        both are the exact mod-2^k ring product of the same operands.
        """
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is down")
        if chunk.ndim != 2 or chunk.shape[0] != self.matrix_slice.shape[1]:
            raise ValueError("stacked chunk does not match shard width")
        self.ledger.add("ranking", 2 * self.matrix_slice.size * chunk.shape[1])
        return self.batch_plan().matmul(chunk)

    def storage_bytes(self) -> int:
        """Shard size at 4-bit entries (what bounds RAM per machine)."""
        return self.matrix_slice.size // 2


@dataclass
class ShardedRankingService(Service):
    """The coordinator plus its worker fleet.

    With ``parallel=True`` the coordinator fans chunks out to a thread
    pool -- NumPy's integer matmul and BLAS both release the GIL, so
    shards really do run concurrently, mirroring the paper's parallel
    workers.

    As a :class:`~repro.net.service.Service` its wire interface is an
    ``answer`` method carrying one serialized ciphertext and an
    ``answer_batch`` method carrying a stacked query batch.  When a
    :class:`~repro.core.scheduler.BatchScheduler` is attached,
    single-query wire requests from concurrent transport threads are
    routed through it so they coalesce into stacked batches.
    """

    workers: list[RankingWorker]
    scheme: DoubleLheScheme
    ledger: CostLedger = field(default_factory=CostLedger)
    parallel: bool = False
    #: Set when this service holds one fleet shard (see
    #: :meth:`build_shard`): its workers cover only that shard's
    #: cluster columns and ``answer`` returns a *partial* sum the
    #: fleet router folds together.  None for the full-matrix service.
    shard: int | None = None
    num_shards: int | None = None
    #: Kernel backend the shard workers execute on (None -> reference).
    kernel_backend: str | None = None
    _pool: object = field(default=None, repr=False)
    _scheduler: object = field(default=None, repr=False)

    service_name = "ranking"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("answer", self._handle_answer)
        endpoint.register("answer_batch", self._handle_answer_batch)

    def _handle_answer(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(payload, self.scheme.params.inner)
        query = RankingQuery(ciphertext=ct)
        scheduler = self._scheduler
        if scheduler is not None and scheduler.running:
            answer = scheduler.submit(query)
        else:
            answer = self.answer(query)
        return wire.encode_answer(
            answer.values, self.scheme.params.inner.q_bits
        )

    def _handle_answer_batch(self, payload: bytes) -> bytes:
        batch = wire.decode_batch(payload, self.scheme.params.inner)
        answer = self.answer_stacked(batch)
        return wire.encode_batch_answer(
            answer, self.scheme.params.inner.q_bits
        )

    def attach_scheduler(self, scheduler) -> None:
        """Install the admission queue used by `_handle_answer`.

        The scheduler's lifecycle follows this service's ``open`` /
        ``close`` once attached.
        """
        self._scheduler = scheduler

    @property
    def scheduler(self):
        return self._scheduler

    def health(self) -> dict:
        alive = sum(1 for w in self.workers if w.alive)
        report = {
            "service": self.service_name,
            "status": "ok" if alive == len(self.workers) else "degraded",
            "workers": len(self.workers),
            "alive": alive,
            "kernel_backend": self.kernel_backend or "reference",
        }
        # What is *actually* running may differ from what was asked
        # for: an unavailable backend (say cnative on a host with no C
        # compiler) silently serves on reference.  Report it so
        # operators can see the downgrade; None until a plan is built.
        effective = next(
            (
                w.effective_backend
                for w in self.workers
                if w.effective_backend is not None
            ),
            None,
        )
        report["kernel_effective"] = effective
        if self.shard is not None:
            report["shard"] = self.shard
            report["num_shards"] = self.num_shards
        if self._scheduler is not None:
            report["scheduler"] = self._scheduler.health()
        return report

    @classmethod
    def build(
        cls,
        scheme: DoubleLheScheme,
        matrix: np.ndarray,
        dim: int,
        num_workers: int,
        entry_bound: int | None = None,
        kernel_backend: str | None = None,
        kernel_opts: dict | None = None,
    ) -> "ShardedRankingService":
        """Partition the matrix by cluster across workers.

        ``entry_bound`` (from the precompute sidecar) is a bound on the
        full matrix's centered entries; each shard inherits it so its
        batch plan skips the entry scan.  ``kernel_backend`` /
        ``kernel_opts`` select and parameterize the kernel backend every
        shard executes on (see :mod:`repro.lwe.backends`).
        """
        num_clusters = matrix.shape[1] // dim
        num_workers = min(num_workers, num_clusters)
        bounds = np.linspace(0, num_clusters, num_workers + 1).astype(int)
        workers = []
        q_bits = scheme.params.inner.q_bits
        for w in range(num_workers):
            col_start = bounds[w] * dim
            col_end = bounds[w + 1] * dim
            # Shards are stored pre-lifted into the ring so the online
            # hot loop is a bare integer matmul.
            workers.append(
                RankingWorker(
                    worker_id=w,
                    matrix_slice=modular.to_ring(
                        matrix[:, col_start:col_end], q_bits
                    ),
                    col_start=col_start,
                    q_bits=q_bits,
                    entry_bound=entry_bound,
                    kernel_backend=kernel_backend,
                    kernel_opts=dict(kernel_opts or {}),
                )
            )
        return cls(
            workers=workers, scheme=scheme, kernel_backend=kernel_backend
        )

    @classmethod
    def build_shard(
        cls,
        scheme: DoubleLheScheme,
        matrix: np.ndarray,
        dim: int,
        shard: int,
        num_shards: int,
        num_workers: int = 1,
        entry_bound: int | None = None,
        kernel_backend: str | None = None,
        kernel_opts: dict | None = None,
    ) -> "ShardedRankingService":
        """One fleet shard: the cluster-column slice ``shard`` of
        ``num_shards``, itself worker-partitioned via :meth:`build`.

        The shard's workers keep *absolute* column offsets into the
        full matrix, so ``answer`` accepts the same full-length
        ciphertext as the single-process service and returns the
        partial sum over this shard's columns.  Because answers add
        with wraparound (mod ``2**q_bits``) arithmetic -- associative
        and commutative -- a router summing the ``num_shards`` partial
        answers reproduces the single-process result bit for bit.
        """
        if not 0 <= shard < num_shards:
            raise ValueError(f"shard {shard} outside [0, {num_shards})")
        num_clusters = matrix.shape[1] // dim
        if num_shards > num_clusters:
            raise ValueError(
                f"cannot cut {num_clusters} clusters into {num_shards} shards"
            )
        bounds = np.linspace(0, num_clusters, num_shards + 1).astype(int)
        lo = int(bounds[shard]) * dim
        hi = int(bounds[shard + 1]) * dim
        service = cls.build(
            scheme,
            matrix[:, lo:hi],
            dim,
            num_workers,
            entry_bound=entry_bound,
            kernel_backend=kernel_backend,
            kernel_opts=kernel_opts,
        )
        for worker in service.workers:
            worker.col_start += lo
        service.shard = shard
        service.num_shards = num_shards
        return service

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=len(self.workers))
        return self._pool

    def open(self) -> None:
        """Start the attached scheduler (if any).  Idempotent."""
        if self._scheduler is not None:
            self._scheduler.start()

    def close(self) -> None:
        """Shut down the scheduler and worker thread pool (idempotent).

        Without this the executor's non-daemon threads outlive the
        service and interpreter exit blocks joining them.  The service
        remains usable after close -- the pool is lazily recreated.
        """
        if self._scheduler is not None:
            self._scheduler.stop()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for worker in self.workers:
            worker.drop_plan()

    def __enter__(self) -> "ShardedRankingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def answer(self, query: RankingQuery) -> RankingAnswer:
        """Fan out the ciphertext, sum the partial answers."""
        q_bits = self.scheme.params.inner.q_bits
        ct = query.ciphertext.c
        with obs.span(
            "ranking.answer",
            workers=len(self.workers),
            parallel=self.parallel,
        ) as coord_span:

            def run(worker: RankingWorker) -> np.ndarray:
                width = worker.matrix_slice.shape[1]
                with obs.span(
                    "ranking.worker",
                    parent=coord_span,
                    worker=worker.worker_id,
                    rows=worker.matrix_slice.shape[0],
                    cols=width,
                ):
                    chunk = ct[worker.col_start : worker.col_start + width]
                    return worker.answer_chunk(chunk)

            if self.parallel and len(self.workers) > 1:
                partials = list(self._ensure_pool().map(run, self.workers))
            else:
                partials = [run(w) for w in self.workers]
            total = partials[0]
            for partial in partials[1:]:
                total = modular.add(total, partial, q_bits)
        for worker in self.workers:
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
        return RankingAnswer(
            values=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_stacked(self, batch: RankingBatch) -> RankingBatchAnswer:
        """Answer a stacked batch: one GEMM per shard, summed mod q.

        Column i of the result is bit-identical to ``answer`` on query
        i alone: each worker partial is the exact ring product of the
        same operands, and mod-2^k accumulation is column-wise.  The
        parallel/serial mode check is hoisted out of the per-worker
        path, and the serial fallback accumulates in place (no
        per-worker allocations beyond the partials themselves).
        """
        q_bits = self.scheme.params.inner.q_bits
        stacked = batch.stacked
        with obs.span(
            "ranking.answer_batch",
            workers=len(self.workers),
            batch=batch.size,
            parallel=self.parallel,
        ) as coord_span:

            def run(worker: RankingWorker) -> np.ndarray:
                width = worker.matrix_slice.shape[1]
                with obs.span(
                    "ranking.worker",
                    parent=coord_span,
                    worker=worker.worker_id,
                    rows=worker.matrix_slice.shape[0],
                    cols=width,
                    batch=batch.size,
                ):
                    chunk = stacked[
                        worker.col_start : worker.col_start + width
                    ]
                    return worker.answer_stacked(chunk)

            use_pool = self.parallel and len(self.workers) > 1
            if use_pool:
                partials = list(self._ensure_pool().map(run, self.workers))
                total = partials[0]
                for partial in partials[1:]:
                    np.add(total, partial, out=total)
            else:
                total = None
                for worker in self.workers:
                    partial = run(worker)
                    if total is None:
                        total = partial
                    else:
                        # Unsigned in-place add wraps mod 2^k exactly.
                        np.add(total, partial, out=total)
        for worker in self.workers:
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
        return RankingBatchAnswer(
            stacked=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_batch(self, queries: list[RankingQuery]) -> list[RankingAnswer]:
        """Answer several queries in one pass over the index.

        Stacking the ciphertexts into a matrix turns Q matrix-vector
        products into one matrix-matrix product per shard -- the index
        streams from memory once per batch instead of once per query.
        Answers are bit-identical to individual :meth:`answer` calls.
        """
        if not queries:
            return []
        batch = RankingBatch.from_queries(queries)
        return self.answer_stacked(batch).split()

    def fail_worker(self, worker_id: int) -> None:
        """Failure injection for tests/benchmarks."""
        self.workers[worker_id].alive = False

    def revive_worker(self, worker_id: int) -> None:
        self.workers[worker_id].alive = True

    def max_shard_bytes(self) -> int:
        return max(w.storage_bytes() for w in self.workers)


@dataclass
class ReplicatedRankingService(Service):
    """Sharded ranking with per-shard replication (SS4.3).

    "To improve latency and fault-tolerance at some operating cost,
    the coordinator could farm out each task to multiple machines."
    Each shard is served by ``replicas`` identical workers; a query
    survives any failure pattern that leaves one live replica per
    shard.  Storage cost is ``replicas`` times the base deployment.

    Carries the same :class:`~repro.net.service.Service` lifecycle as
    the sharded coordinator, so a ``ServerRunner`` can host, health-
    check, and close it: ``close`` releases every replica's cached
    batch plan (the float staging copy of its shard) instead of
    leaking them for the life of the process.
    """

    replica_groups: list[list[RankingWorker]]
    scheme: DoubleLheScheme
    ledger: CostLedger = field(default_factory=CostLedger)

    service_name = "ranking"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("answer", self._handle_answer)
        endpoint.register("answer_batch", self._handle_answer_batch)

    def _handle_answer(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(payload, self.scheme.params.inner)
        answer = self.answer(RankingQuery(ciphertext=ct))
        return wire.encode_answer(
            answer.values, self.scheme.params.inner.q_bits
        )

    def _handle_answer_batch(self, payload: bytes) -> bytes:
        batch = wire.decode_batch(payload, self.scheme.params.inner)
        answer = self.answer_stacked(batch)
        return wire.encode_batch_answer(
            answer, self.scheme.params.inner.q_bits
        )

    def health(self) -> dict:
        """Degraded while any shard is below full replication; failed
        once some shard has no live replica at all."""
        live_per_shard = [
            sum(1 for w in group if w.alive) for group in self.replica_groups
        ]
        if any(live == 0 for live in live_per_shard):
            status = "failed"
        elif any(
            live < len(group)
            for live, group in zip(live_per_shard, self.replica_groups)
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "service": self.service_name,
            "status": status,
            "shards": len(self.replica_groups),
            "replicas": self.replicas,
            "live_replicas": live_per_shard,
        }

    def close(self) -> None:
        """Release every replica's cached batch plan.  Idempotent."""
        for group in self.replica_groups:
            for worker in group:
                worker.drop_plan()

    @classmethod
    def build(
        cls,
        scheme: DoubleLheScheme,
        matrix: np.ndarray,
        dim: int,
        num_workers: int,
        replicas: int = 2,
    ) -> "ReplicatedRankingService":
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        base = ShardedRankingService.build(scheme, matrix, dim, num_workers)
        groups = []
        for worker in base.workers:
            groups.append(
                [
                    RankingWorker(
                        worker_id=worker.worker_id * replicas + r,
                        matrix_slice=worker.matrix_slice,
                        col_start=worker.col_start,
                        q_bits=worker.q_bits,
                    )
                    for r in range(replicas)
                ]
            )
        return cls(replica_groups=groups, scheme=scheme)

    @property
    def replicas(self) -> int:
        return len(self.replica_groups[0])

    def _first_live(self, group: list[RankingWorker]) -> RankingWorker:
        for worker in group:
            if worker.alive:
                return worker
        raise WorkerFailure(
            f"all replicas of shard at column {group[0].col_start} are down"
        )

    def answer(self, query: RankingQuery) -> RankingAnswer:
        """Fan out each chunk to the first live replica of its shard."""
        q_bits = self.scheme.params.inner.q_bits
        ct = query.ciphertext.c
        total = None
        for group in self.replica_groups:
            worker = self._first_live(group)
            width = worker.matrix_slice.shape[1]
            chunk = ct[worker.col_start : worker.col_start + width]
            partial = worker.answer_chunk(chunk)
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
            total = partial if total is None else modular.add(
                total, partial, q_bits
            )
        return RankingAnswer(
            values=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_stacked(self, batch: RankingBatch) -> RankingBatchAnswer:
        """Batched fan-out: one GEMM on the first live replica per shard."""
        total = None
        for group in self.replica_groups:
            worker = self._first_live(group)
            width = worker.matrix_slice.shape[1]
            chunk = batch.stacked[
                worker.col_start : worker.col_start + width
            ]
            partial = worker.answer_stacked(chunk)
            self.ledger.merge(worker.ledger)
            worker.ledger = CostLedger()
            if total is None:
                total = partial
            else:
                np.add(total, partial, out=total)
        return RankingBatchAnswer(
            stacked=total,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_batch(self, queries: list[RankingQuery]) -> list[RankingAnswer]:
        if not queries:
            return []
        return self.answer_stacked(RankingBatch.from_queries(queries)).split()

    def fail_worker(self, shard: int, replica: int) -> None:
        self.replica_groups[shard][replica].alive = False

    def storage_bytes(self) -> int:
        """Total fleet storage -- ``replicas`` times the base index."""
        return sum(
            w.storage_bytes() for group in self.replica_groups for w in group
        )
