"""A complete two-server (non-colluding) Tiptoe deployment (SS9).

API parity with :class:`repro.core.engine.TiptoeEngine`: build over a
corpus, create clients, run searches with per-phase traffic accounting
-- but the cryptography is replaced by DPF secret sharing between two
services that must not collude.  There is no token phase (no
encryption keys to pre-share), no hint, and ~50x less traffic; the
price is the stronger trust assumption.

Both servers are instantiated from the same index; the client sends
each its DPF key share and sums the answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TiptoeConfig
from repro.core.indexer import TiptoeIndex
from repro.corpus.urls import UrlBatch
from repro.dpf.dpf import DpfKey, gen_keys
from repro.dpf.twoserver import TwoServerPir, TwoServerRankingService
from repro.embeddings.quantize import quantize
from repro.lwe import sampling
from repro.net.transport import LinkModel, TrafficLog


@dataclass
class TwoServerSearchResult:
    """One two-server search: ranked results plus traffic."""

    query: str
    cluster: int
    doc_scores: list[tuple[int, int]]  # (position, score), best first
    urls: dict[int, str]  # position -> URL for the fetched batch
    traffic: TrafficLog
    perceived_latency: float

    def top_urls(self, k: int = 10) -> list[str]:
        out = []
        for position, _ in self.doc_scores:
            url = self.urls.get(position)
            if url:
                out.append(url)
            if len(out) == k:
                break
        return out


class TwoServerEngine:
    """Two replicas of the plaintext index behind a DPF front door."""

    def __init__(self, index: TiptoeIndex, link: LinkModel | None = None):
        self.index = index
        self.link = link if link is not None else LinkModel()
        layout = index.layout
        # Server A and server B each hold the full plaintext structures.
        self.ranking_servers = [
            TwoServerRankingService(layout.matrix, layout.dim)
            for _ in range(2)
        ]
        payloads = [b.payload for b in index.url_batches]
        self.url_servers = [TwoServerPir(payloads) for _ in range(2)]

    @classmethod
    def build(
        cls,
        texts: list[str],
        urls: list[str],
        config: TiptoeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TwoServerEngine":
        config = config if config is not None else TiptoeConfig()
        index = TiptoeIndex.build(texts, urls, config, rng=rng)
        return cls(index=index)

    @classmethod
    def from_index(cls, index: TiptoeIndex) -> "TwoServerEngine":
        """Reuse an index built for the single-server deployment."""
        return cls(index=index)

    def search(
        self, text: str, rng: np.random.Generator | None = None
    ) -> TwoServerSearchResult:
        """One private two-server search, with byte accounting."""
        rng = sampling.resolve_rng(rng)
        index = self.index
        traffic = TrafficLog()

        # Embed locally; pick the cluster from cached centroids.
        embedder = index.embedder
        vec = embedder.embed(text)
        if index.pca is not None:
            vec = index.pca.transform(vec)
        q = quantize(vec * index.quantization_gain, index.config.quantization())
        cluster = index.clusters.nearest_cluster(vec)

        # Ranking: one DPF key per server, shares summed mod 2^64.
        layout = index.layout
        k0, k1 = gen_keys(cluster, q, layout.num_clusters, rng)
        partials = []
        for server, key in zip(self.ranking_servers, (k0, k1)):
            traffic.record("ranking", "up", key.wire_bytes())
            answer = server.answer(key)
            traffic.record("ranking", "down", answer.wire_bytes())
            partials.append(answer.share)
        with np.errstate(over="ignore"):
            scores = (partials[0] + partials[1]).astype(np.int64)
        real = int(layout.cluster_sizes[cluster])
        order = np.argsort(-scores[:real], kind="stable")
        offset = int(layout.cluster_offsets[cluster])
        doc_scores = [
            (offset + int(r), int(scores[int(r)])) for r in order
        ][: index.config.results_per_query]

        # URL fetch: two-server PIR for the best match's batch.
        batch_index = doc_scores[0][0] // index.config.url_batch_size
        kb0, kb1 = gen_keys(
            batch_index, np.array([1]), len(index.url_batches), rng
        )
        shares = []
        for server, key in zip(self.url_servers, (kb0, kb1)):
            traffic.record("url", "up", key.wire_bytes())
            answer = server.answer(key)
            traffic.record("url", "down", answer.wire_bytes())
            shares.append(answer.share)
        with np.errstate(over="ignore"):
            payload_words = (shares[0] + shares[1]).astype(np.uint8)
        length = self.url_servers[0].record_lengths[batch_index]
        payload = payload_words[:length].tobytes()
        urls = UrlBatch(payload=payload, doc_ids=()).decompress()

        return TwoServerSearchResult(
            query=text,
            cluster=cluster,
            doc_scores=doc_scores,
            urls=urls,
            traffic=traffic,
            perceived_latency=traffic.simulated_latency(
                self.link, ["ranking", "url"]
            ),
        )

    def doc_id_of_position(self, position: int) -> int:
        layout = self.index.layout
        cluster = int(
            np.searchsorted(layout.cluster_offsets, position, side="right") - 1
        )
        return layout.doc_id_of(
            cluster, position - int(layout.cluster_offsets[cluster])
        )
