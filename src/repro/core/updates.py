"""Continuous corpus updates (SS3.2).

"To support continuous updates to the search corpus, the Tiptoe
servers can run the new or changed documents through the embedding
function, assign them to a cluster, and publish the updated cluster
centroids and metadata to the clients."

:func:`apply_update` does exactly that: new documents keep the
*existing* embedder, PCA map, and centroids (so clients' cached model
stays valid), are assigned to their nearest clusters, and the ranking
matrix, URL layout, and cryptographic preprocessing are rebuilt.  The
client-facing delta is the refreshed centroid/metadata download, whose
compressed size the paper bounds at 18.7 MiB for the full C4 corpus;
:func:`metadata_refresh_bytes` reports the analogous size here.

Changed documents are handled as remove + add; a changed corpus always
invalidates outstanding query tokens (the hint changes), exactly as in
the paper ("these tokens are usable until the document corpus
changes").

The fleet swap protocol (:func:`publish_snapshot` + the
:class:`~repro.core.fleet.FleetRouter` swap endpoint) turns an updated
index into a zero-downtime deployment: publish the updated index as a
``repro.index/v2`` artifact with its precompute sidecar, then ask the
router to warm the new generation one replica at a time and cut over
by digest.  In-flight sessions stay pinned to the generation their
token was minted against; only new sessions see the new corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.indexer import TiptoeIndex
from repro.corpus.urls import UrlBatcher
from repro.embeddings.quantize import quantize_gained
from repro.homenc.token import TokenFactory
from repro.lwe import sampling


@dataclass(frozen=True)
class UpdateReport:
    """What one update batch changed and what clients must re-fetch."""

    added_docs: int
    new_num_docs: int
    changed_clusters: tuple[int, ...]
    metadata_refresh_bytes: int


def assign_new_documents(
    index: TiptoeIndex, new_embeddings: np.ndarray
) -> list[int]:
    """Nearest-centroid assignment for a batch of new documents."""
    sims = new_embeddings @ index.clusters.centroids.T
    return [int(c) for c in np.argmax(sims, axis=1)]


def metadata_refresh_bytes(index: TiptoeIndex) -> int:
    """Worst-case client refresh: all centroids + sizes, compressed."""
    meta = index.client_metadata()
    return meta.download_bytes(compressed=True)


def publish_snapshot(index: TiptoeIndex, out_dir: str | Path) -> str:
    """Publish an index as a swap-ready generation artifact.

    Saves the ``repro.index/v2`` artifact *and* its precompute sidecar
    (so fleet workers skip the entry scan on load) and returns the
    8-hex generation tag that identifies the snapshot to the fleet
    router's swap protocol.
    """
    from repro.core import artifacts

    out_dir = Path(out_dir)
    artifacts.save_index(index, out_dir, precompute=True)
    return artifacts.generation_tag(out_dir)


def apply_update(
    index: TiptoeIndex,
    new_texts: list[str],
    new_urls: list[str],
    all_texts: list[str],
    all_urls: list[str],
    rng: np.random.Generator | None = None,
) -> tuple[TiptoeIndex, UpdateReport]:
    """Fold a batch of new documents into an existing index.

    ``all_texts`` / ``all_urls`` are the pre-update corpus (the new
    documents get ids following it).  Returns the updated index and a
    report; the updated index has fresh preprocessing, so previously
    minted tokens no longer apply.
    """
    if len(new_texts) != len(new_urls):
        raise ValueError("need one URL per new document")
    if not new_texts:
        raise ValueError("update batch is empty")
    rng = sampling.resolve_rng(rng, fallback_seed=0)
    config = index.config

    # 1. Embed with the *existing* model + PCA (client caches stay valid).
    new_raw = index.embedder.embed_batch(new_texts)
    new_embeddings = (
        index.pca.transform(new_raw) if index.pca is not None else new_raw
    )
    new_embeddings = np.atleast_2d(new_embeddings)

    # 2. Assign to existing clusters (on a copy -- the old index keeps
    # serving until the swap).
    from repro.cluster import ClusterIndex

    assignments = assign_new_documents(index, new_embeddings)
    base = index.num_docs
    clusters = ClusterIndex(
        centroids=index.clusters.centroids,
        assignments=[list(m) for m in index.clusters.assignments],
        doc_to_clusters=[list(c) for c in index.clusters.doc_to_clusters],
    )
    for offset, cluster in enumerate(assignments):
        doc_id = base + offset
        clusters.assignments[cluster].append(doc_id)
        clusters.doc_to_clusters.append([cluster])

    # 3. Rebuild layout, URL batches, and crypto over the merged corpus.
    embeddings = np.vstack([index.embeddings, new_embeddings])
    quantized = quantize_gained(
        embeddings, index.quantization_gain, config.quantization()
    )
    layout = TiptoeIndex._build_layout(quantized, clusters)
    merged_urls = list(all_urls) + list(new_urls)
    batcher = UrlBatcher(batch_size=config.url_batch_size)
    layout_urls = [
        merged_urls[doc]
        for members in layout.cluster_doc_ids
        for doc in members
    ]
    url_batches = batcher.build_positional_batches(layout_urls)
    # Seeds are drawn ranking-then-url from the caller's rng, mirroring
    # build() so a seeded update is reproducible end to end.
    ranking_a_seed = rng.bytes(32)
    url_a_seed = rng.bytes(32)
    url_db, url_scheme = TiptoeIndex._build_url_side(
        url_batches, config, a_seed=url_a_seed
    )

    from repro.homenc.double import DoubleLheParams, DoubleLheScheme
    from repro.lwe.params import LweParams

    old_inner = index.ranking_scheme.params.inner
    ranking_scheme = DoubleLheScheme(
        DoubleLheParams(
            inner=LweParams(
                n=old_inner.n,
                q_bits=old_inner.q_bits,
                p=old_inner.p,
                sigma=old_inner.sigma,
                m=layout.matrix.shape[1],
            ),
            outer_n=index.ranking_scheme.params.outer_n,
        ),
        a_seed=ranking_a_seed,
    )
    ranking_prep = ranking_scheme.preprocess(layout.matrix)
    url_prep = url_scheme.preprocess(url_db.matrix)
    token_factory = TokenFactory()
    token_factory.register("ranking", ranking_scheme, ranking_prep)
    token_factory.register("url", url_scheme, url_prep)

    updated = TiptoeIndex(
        config=config,
        embedder=index.embedder,
        pca=index.pca,
        clusters=clusters,
        layout=layout,
        url_batches=url_batches,
        url_db=url_db,
        ranking_scheme=ranking_scheme,
        url_scheme=url_scheme,
        ranking_prep=ranking_prep,
        url_prep=url_prep,
        token_factory=token_factory,
        build_ledger=index.build_ledger,
        embeddings=embeddings,
        url_position_map=None,
        quantization_gain=index.quantization_gain,
    )
    report = UpdateReport(
        added_docs=len(new_texts),
        new_num_docs=updated.num_docs,
        changed_clusters=tuple(sorted(set(assignments))),
        metadata_refresh_bytes=metadata_refresh_bytes(updated),
    )
    return updated, report


@dataclass(frozen=True)
class ReindexReport:
    """What one delta (or forced-full) reindex produced and recomputed."""

    generation_tag: str
    out_dir: Path
    full: bool
    num_docs: int
    num_clusters: int
    docs_embedded: int
    docs_reused: int
    clusters_encrypted: int
    clusters_reused: int


def reindex(
    prev_artifacts: str | Path,
    source,
    out_dir: str | Path,
    *,
    spool_dir: str | Path,
    ingest=None,
    full: bool = False,
    precompute: bool = True,
) -> ReindexReport:
    """Rebuild an index against a new corpus snapshot, incrementally.

    Loads the previous ``repro.index/v2`` artifact, pins its embedding
    model, centroids, boundary threshold, and A-seeds, and streams the
    new snapshot through the ingestion plane.  With ``full=False`` the
    previous snapshot's per-document digests and embeddings seed the
    delta path: unchanged documents skip re-embedding and clusters whose
    quantized content is unchanged reuse their cached hint contribution,
    so only affected clusters are re-encrypted.  ``full=True`` rebuilds
    from scratch under the same pinned models (in a sibling spool, so no
    cache crosses over) -- the delta and full artifacts of the same
    snapshot are bit-identical, which is how the delta path is verified.

    The delta run must share the *base build's* spool directory: that is
    where the content-addressed hint cache lives.
    """
    from repro.core import artifacts
    from repro.ingest import IngestConfig, PinnedModels, PrevSnapshot, run_ingest

    prev_index = artifacts.load_index(prev_artifacts)
    pinned = PinnedModels.from_index(prev_index)
    spool_dir = Path(spool_dir)
    if full:
        spool_dir = spool_dir / "full"
        prev = None
    else:
        prev = PrevSnapshot.from_index(prev_index)
    report = run_ingest(
        source,
        prev_index.config,
        out_dir,
        spool_dir=spool_dir,
        ingest=ingest if ingest is not None else IngestConfig(),
        pinned=pinned,
        prev=prev,
        precompute=precompute,
    )
    embed = report.counters("embed")
    encrypt = report.counters("encrypt")
    return ReindexReport(
        generation_tag=report.generation_tag,
        out_dir=Path(out_dir),
        full=full,
        num_docs=report.num_docs,
        num_clusters=report.num_clusters,
        docs_embedded=int(embed.get("docs_embedded", 0)),
        docs_reused=int(embed.get("docs_reused", 0)),
        clusters_encrypted=int(encrypt.get("clusters_encrypted", 0)),
        clusters_reused=int(encrypt.get("clusters_reused", 0)),
    )
