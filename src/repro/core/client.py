"""The Tiptoe client (SS3.2).

One search runs the three numbered steps of the architecture figure:
embed the query locally, rank privately within the nearest cluster,
and fetch the winning URL batch privately.  Every byte that crosses
the (simulated) network is logged with its phase, and each search
consumes exactly one query token.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import RankingAnswer, RankingClient
from repro.core.url_service import UrlServiceClient
from repro.embeddings.quantize import quantize
from repro.homenc.token import QueryToken
from repro.lwe import sampling
from repro.net import wire
from repro.net.rpc import RpcChannel
from repro.net.transport import LinkModel, TrafficLog
from repro.obs import runtime as obs
from repro.pir.simplepir import PirAnswer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScoredResult:
    """One ranked search result."""

    position: int  # global layout position (what the URL service keys on)
    cluster: int
    row: int
    score: int  # quantized inner-product score
    url: str | None  # None if outside the fetched batch


@dataclass
class SearchResult:
    """Everything one private search produced."""

    query: str
    cluster: int
    results: list[ScoredResult]
    traffic: TrafficLog
    perceived_latency: float
    token_latency: float

    def urls(self) -> list[str]:
        return [r.url for r in self.results if r.url]

    def top_positions(self) -> list[int]:
        return [r.position for r in self.results]


class TiptoeClient:
    """A stateful client bound to one Tiptoe deployment."""

    def __init__(
        self,
        engine,
        rng: np.random.Generator | None = None,
    ):
        self.engine = engine
        self.rng = sampling.resolve_rng(rng)
        meta = engine.index.client_metadata()
        self.metadata = meta
        self.ranking = RankingClient(
            engine.index.ranking_scheme,
            dim=meta.dim,
            num_clusters=len(meta.cluster_sizes),
        )
        self.url_client = UrlServiceClient(
            scheme=engine.index.url_scheme,
            db_meta=engine.index.url_db,
            batch_size=meta.url_batch_size,
        )
        self._tokens: deque[QueryToken] = deque()  # guarded-by: _token_lock
        self._token_lock = threading.Lock()
        # Wakes the prefetcher whenever a token is taken.
        self._token_need = threading.Condition(self._token_lock)
        self._prefetch_depth = int(
            getattr(engine.index.config, "token_prefetch_depth", 0)
        )
        self._prefetching = False  # guarded-by: _token_lock
        self._prefetch_thread: threading.Thread | None = None
        if self._prefetch_depth > 0:
            self._start_prefetcher()

    # -- token management (the ahead-of-time phase, SS6.3) -------------------

    def fetch_tokens(self, count: int = 1) -> None:
        """Stockpile query tokens before deciding on any query."""
        if count < 1:
            return
        if count == 1:
            minted = [self.engine.mint_token(self.rng)]
        else:
            minted = self.engine.mint_tokens(count, self.rng)
        with self._token_lock:
            self._tokens.extend(minted)

    def tokens_available(self) -> int:
        with self._token_lock:
            return len(self._tokens)

    def _take_token(self) -> QueryToken:
        """Pop a stockpiled token, or mint inline when none is ready.

        Popping wakes the prefetcher (if running) so the stockpile is
        topped back up off the query path.
        """
        with self._token_lock:
            if self._tokens:
                token = self._tokens.popleft()
                self._token_need.notify()
                return token
        return self.engine.mint_token(self.rng)

    # -- the token prefetcher -------------------------------------------------

    def _start_prefetcher(self) -> None:
        with self._token_lock:
            if self._prefetching:
                return
            self._prefetching = True
        self._prefetch_thread = threading.Thread(
            target=self._prefetch_loop, name="token-prefetch", daemon=True
        )
        self._prefetch_thread.start()

    def _prefetch_loop(self) -> None:
        # The prefetcher never touches ``self.rng`` -- numpy Generators
        # are not thread-safe, and search() draws from it concurrently.
        # Key material comes from fresh OS entropy instead; answers are
        # unaffected because LHE decryption is exact.
        while True:
            with self._token_lock:
                while (
                    self._prefetching
                    and len(self._tokens) >= self._prefetch_depth
                ):
                    self._token_need.wait()
                if not self._prefetching:
                    return
                want = self._prefetch_depth - len(self._tokens)
            try:
                if want == 1:
                    minted = [self.engine.mint_token()]
                else:
                    minted = self.engine.mint_tokens(want)
            except Exception:
                logger.exception(
                    "token prefetch failed; prefetcher stopping"
                )
                with self._token_lock:
                    self._prefetching = False
                return
            with self._token_lock:
                if not self._prefetching:
                    # Closed mid-mint: drop the batch, mirroring the
                    # server pool's drain-on-close.
                    return
                self._tokens.extend(minted)
                obs.gauge("client.tokens_available", len(self._tokens))

    def close(self) -> None:
        """Stop the prefetcher and discard stockpiled tokens.

        Tokens hold client secret keys, so they never outlive the
        client.  Idempotent; also usable as a context manager.
        """
        with self._token_lock:
            self._prefetching = False
            self._token_need.notify_all()
        thread, self._prefetch_thread = self._prefetch_thread, None
        if thread is not None:
            thread.join()
        with self._token_lock:
            self._tokens.clear()

    def __enter__(self) -> "TiptoeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the query path -------------------------------------------------------

    def embed_query(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Local query embedding: model, PCA, quantization."""
        vec = self.engine.embed_query(text)
        gain = self.metadata.quantization_gain
        quantized = quantize(vec * gain, self.engine.index.config.quantization())
        return vec, quantized

    def search(self, text: str) -> SearchResult:
        """One full private search; consumes one token (fetched lazily).

        When observability is enabled (:mod:`repro.obs.runtime`) the
        search produces one trace: a ``client.search`` root span with
        ``token`` / ``embed`` / ``ranking`` / ``url`` children, plus a
        sample in the ``client.search.seconds`` histogram.  Span
        attributes are sizes and times only; the query text, cluster
        choice, and scores are never recorded.
        """
        with obs.span("client.search") as root_span:
            with obs.span("token"):
                token = self._take_token()
                traffic = TrafficLog()
                traffic.record("token", "up", token.upload_bytes)
                traffic.record("token", "down", token.download_bytes)
                keys, hint_products = token.consume()

            # Step 1: embed locally; pick the nearest cached centroid.
            with obs.span("embed"):
                vec, quantized = self.embed_query(text)
                cluster = int(np.argmax(self.metadata.centroids @ vec))

            # Step 2: private ranking within that cluster.  Queries
            # travel as serialized RPC messages; the channel logs real
            # wire sizes.
            channel = RpcChannel(traffic, self.engine.transport)
            with obs.span("ranking"):
                rank_query = self.ranking.build_query(
                    keys["ranking"], quantized, cluster, self.rng
                )
                body = channel.call(
                    "ranking",
                    "ranking",
                    "answer",
                    wire.encode_ciphertext(rank_query.ciphertext),
                )
                values, q_bits = wire.decode_answer(body)
                rank_answer = RankingAnswer(
                    values=values, bytes_per_element=q_bits // 8
                )
                scores = self.ranking.decode_scores(
                    keys["ranking"], rank_answer, hint_products["ranking"]
                )
            real_rows = int(self.metadata.cluster_sizes[cluster])
            scores = scores[:real_rows]
            order = np.argsort(-scores, kind="stable")
            k = self.metadata.results_per_query
            top_rows = [int(r) for r in order[:k]]

            # Step 3: private URL fetch for the batch of the best match.
            with obs.span("url"):
                offset = int(self.metadata.cluster_offsets[cluster])
                best_storage = self.engine.storage_position(
                    offset + top_rows[0]
                )
                batch_index = self.url_client.batch_of_position(best_storage)
                url_query = self.url_client.build_query(
                    keys["url"], batch_index, self.rng
                )
                body = channel.call(
                    "url",
                    "url",
                    "answer",
                    # tiptoe-lint: disable=itaint-wire -- the ciphertext IS the wire format; semantic security (decision-LWE) covers what it reveals
                    wire.encode_ciphertext(url_query.ciphertext),
                )
                values, q_bits = wire.decode_answer(body)
                url_answer = PirAnswer(
                    values=values, bytes_per_element=q_bits // 8
                )
                batch_urls = self.url_client.recover_batch(
                    keys["url"], url_answer, hint_products["url"]
                )
        if root_span is not None and root_span.duration is not None:
            obs.observe("client.search.seconds", root_span.duration)
            obs.count("client.searches")

        results = []
        for row in top_rows:
            position = offset + row
            storage = self.engine.storage_position(position)
            url = batch_urls.get(storage) or None
            results.append(
                ScoredResult(
                    position=position,
                    cluster=cluster,
                    row=row,
                    score=int(scores[row]),
                    url=url,
                )
            )
        link = self.engine.link
        return SearchResult(
            query=text,
            cluster=cluster,
            results=results,
            traffic=traffic,
            perceived_latency=traffic.simulated_latency(
                link, ["ranking", "url"]
            ),
            token_latency=traffic.simulated_latency(link, ["token"]),
        )

    def search_hybrid(self, text: str) -> tuple[SearchResult, list[int]]:
        """Semantic search plus the SS9 exact-keyword backends.

        Returns the normal semantic result and the merged doc-id
        ranking (exact hits first).  Requires the engine to have an
        attached :class:`~repro.core.exact_backend.ExactSearchSuite`;
        without one this is identical to :meth:`search`.
        """
        result = self.search(text)
        semantic_ids = self.engine.result_doc_ids(result)
        suite = getattr(self.engine, "exact_suite", None)
        if suite is None:
            return result, semantic_ids
        return result, suite.merge_results(text, semantic_ids, self.rng)
