"""The URL service (SS5): SimplePIR over compressed URL batches.

After ranking, the client knows the (cluster, row) positions of its
best matches.  Positions map arithmetically to URL batches (the
layouts agree), so the client issues one PIR query for the batch
containing its best result and reads the top-k URLs out of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostLedger
from repro.corpus.urls import UrlBatch
from repro.homenc.double import DoubleLheScheme
from repro.net import wire
from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service
from repro.obs import runtime as obs
from repro.pir.database import PackedDatabase
from repro.pir.simplepir import PirAnswer, PirQuery


class UrlService(Service):
    """Server side: a PIR server over the packed batch database.

    As a :class:`~repro.net.service.Service` its wire interface is one
    ``answer`` method carrying a serialized ciphertext.
    """

    service_name = "url"

    def __init__(
        self,
        db: PackedDatabase,
        scheme: DoubleLheScheme,
        plan_meta: dict | None = None,
        *,
        kernel_backend: str | None = None,
        kernel_opts: dict | None = None,
    ):
        self.db = db
        self.scheme = scheme
        self.ledger = CostLedger()
        self._plan = None  # lazy kernel-backend plan for batched answers
        #: Sidecar-provided plan parameters; skips the entry scan when
        #: the lazy plan is first built.
        self._plan_meta = plan_meta
        #: Kernel-backend name (None -> reference) and tuned plan
        #: options for the batched scan; see repro.lwe.backends.
        self.kernel_backend = kernel_backend
        self.kernel_opts = dict(kernel_opts or {})

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("answer", self._handle_answer)

    def _handle_answer(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(payload, self.scheme.params.inner)
        answer = self.answer(PirQuery(ciphertext=ct))
        return wire.encode_answer(
            answer.values, self.scheme.params.inner.q_bits
        )

    def health(self) -> dict:
        # kernel_effective is the backend actually executing after any
        # availability fallback; None until the lazy plan first builds.
        return {
            "service": self.service_name,
            "status": "ok",
            "rows": self.db.num_rows,
            "kernel_backend": self.kernel_backend or "reference",
            "kernel_effective": getattr(self._plan, "backend_name", None),
        }

    def close(self) -> None:
        """Release the batch plan (worker pools, shared segments)."""
        if self._plan is not None:
            self._plan.close()
            self._plan = None

    def answer(self, query: PirQuery) -> PirAnswer:
        with obs.span("url.answer", rows=self.db.num_rows):
            values = self.scheme.apply(self.db.matrix, query.ciphertext)
        self.ledger.add("url", self.scheme.inner.apply_word_ops(self.db.num_rows))
        return PirAnswer(
            values=values,
            bytes_per_element=self.scheme.params.inner.bytes_per_element,
        )

    def answer_batch(self, queries: list[PirQuery]) -> list[PirAnswer]:
        """Answer several PIR queries in one pass over the database.

        One matrix-matrix product instead of B matrix-vector products;
        answers are bit-identical to individual calls.
        """
        if not queries:
            return []
        from repro.lwe.regev import stack_ciphertexts

        if self._plan is None:
            self._plan = self.scheme.batch_plan(
                self.db.matrix,
                backend=self.kernel_backend,
                metadata=self._plan_meta,
                **self.kernel_opts,
            )
        with obs.span(
            "url.answer_batch", rows=self.db.num_rows, batch=len(queries)
        ):
            stacked = stack_ciphertexts([q.ciphertext for q in queries])
            out = self.scheme.apply_batch(None, stacked, plan=self._plan)
        self.ledger.add(
            "url",
            self.scheme.inner.apply_word_ops(self.db.num_rows) * len(queries),
        )
        per_element = self.scheme.params.inner.bytes_per_element
        return [
            PirAnswer(values=out[:, i], bytes_per_element=per_element)
            for i in range(len(queries))
        ]


@dataclass
class UrlServiceClient:
    """Client side: batch selection, PIR query, decompression."""

    scheme: DoubleLheScheme
    db_meta: PackedDatabase
    batch_size: int

    def batch_of_position(self, position: int) -> int:
        return position // self.batch_size

    def build_query(
        self,
        keys,
        batch_index: int,
        rng: np.random.Generator | None = None,
    ) -> PirQuery:
        sel = self.db_meta.selection_vector(batch_index)
        return PirQuery(ciphertext=self.scheme.encrypt(keys, sel, rng))

    def recover_batch(
        self, keys, answer: PirAnswer, hint_product: np.ndarray
    ) -> dict[int, str]:
        """Decrypt, decompress, and parse one batch of URLs.

        Returns position -> URL for every entry in the batch.
        """
        digits = self.scheme.decrypt(keys, answer.values, hint_product)
        payload = self.db_meta.decode_column(digits)
        return UrlBatch(payload=payload, doc_ids=()).decompress()
