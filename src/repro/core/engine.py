"""Top-level assembly: index + services + clients (the public API).

    from repro import TiptoeEngine, TiptoeConfig
    engine = TiptoeEngine.build(texts, urls, TiptoeConfig())
    client = engine.new_client()
    result = client.search("knee pain")
    top_urls = result.urls()[:10]

The engine owns the two client-facing services (sharded ranking + URL
PIR), the token factory, and the simulated client link.  For
text-to-image search, pass precomputed image embeddings and a query
embedder (see :func:`TiptoeEngine.build_from_embeddings`).

Diagnostics go through ``logging.getLogger("repro.core.engine")`` --
never ``print`` (enforced by the ``api-print`` lint rule).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.client import TiptoeClient
from repro.core.cluster_runtime import ShardedRankingService
from repro.core.config import TiptoeConfig
from repro.core.indexer import TiptoeIndex
from repro.core.ranking import RankingQuery
from repro.core.url_service import UrlService
from repro.homenc.token import QueryToken
from repro.homenc.token import make_client_keys
from repro.lwe import sampling
from repro.lwe.regev import Ciphertext
from repro.net import wire
from repro.net.rpc import RpcChannel, ServiceEndpoint
from repro.net.transport import LinkModel, TrafficLog
from repro.obs import runtime as obs
from repro.pir.simplepir import PirQuery

logger = logging.getLogger(__name__)


class TiptoeEngine:
    """One Tiptoe deployment: batch-job output plus running services."""

    def __init__(
        self,
        index: TiptoeIndex,
        link: LinkModel | None = None,
        query_embedder=None,
    ):
        self.index = index
        self.link = link if link is not None else LinkModel()
        self.ranking_service = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=index.config.num_workers,
        )
        self.url_service = UrlService(index.url_db, index.url_scheme)
        self._query_embedder = query_embedder
        self._build_endpoints()
        logger.info(
            "engine up: %d clusters, %d ranking workers",
            len(index.layout.cluster_offsets),
            index.config.num_workers,
        )

    def close(self) -> None:
        """Tear down service resources (the ranking worker pool).

        Idempotent; also available as a context manager::

            with TiptoeEngine.build(...) as engine:
                ...
        """
        self.ranking_service.close()

    def __enter__(self) -> "TiptoeEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _build_endpoints(self) -> None:
        """Serialized service interfaces -- what the network carries."""
        self.ranking_endpoint = ServiceEndpoint("ranking")
        self.ranking_endpoint.register("answer", self._handle_ranking)
        self.url_endpoint = ServiceEndpoint("url")
        self.url_endpoint.register("answer", self._handle_url)
        self.token_endpoint = ServiceEndpoint("token")
        self.token_endpoint.register("mint", self._handle_mint)
        self.hint_endpoint = ServiceEndpoint("hint")
        self.hint_endpoint.register("ranking", self._handle_ranking_hint)
        self.hint_endpoint.register("url", self._handle_url_hint)

    def _handle_ranking_hint(self, payload: bytes) -> bytes:
        return wire.encode_matrix(
            self.index.ranking_prep.hint,
            self.index.ranking_scheme.params.inner.q_bits,
        )

    def _handle_url_hint(self, payload: bytes) -> bytes:
        return wire.encode_matrix(
            self.index.url_prep.hint,
            self.index.url_scheme.params.inner.q_bits,
        )

    def _handle_ranking(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(
            payload, self.index.ranking_scheme.params.inner
        )
        answer = self.ranking_service.answer(RankingQuery(ciphertext=ct))
        return wire.encode_answer(
            answer.values, self.index.ranking_scheme.params.inner.q_bits
        )

    def _handle_url(self, payload: bytes) -> bytes:
        ct = wire.decode_ciphertext(payload, self.index.url_scheme.params.inner)
        answer = self.url_service.answer(PirQuery(ciphertext=ct))
        return wire.encode_answer(
            answer.values, self.index.url_scheme.params.inner.q_bits
        )

    def _handle_mint(self, payload: bytes) -> bytes:
        enc_keys = wire.decode_mint_request(payload)
        minted = self.index.token_factory.mint(enc_keys)
        return wire.encode_token_payload(minted)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        texts: list[str],
        urls: list[str],
        config: TiptoeConfig | None = None,
        embedder=None,
        link: LinkModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeEngine":
        """Index a text corpus and stand up the services."""
        config = config if config is not None else TiptoeConfig()
        index = TiptoeIndex.build(
            texts, urls, config, embedder=embedder, rng=rng
        )
        return cls(index=index, link=link)

    @classmethod
    def build_from_embeddings(
        cls,
        embeddings: np.ndarray,
        urls: list[str],
        query_embedder,
        config: TiptoeConfig | None = None,
        link: LinkModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeEngine":
        """Index precomputed embeddings (the text-to-image path, SS8.3).

        ``query_embedder`` must expose ``embed(text) -> vector`` in the
        same space as ``embeddings``.
        """
        config = config if config is not None else TiptoeConfig()
        placeholder_texts = [""] * len(urls)
        index = TiptoeIndex.build(
            placeholder_texts,
            urls,
            config,
            embedder=query_embedder,
            embeddings=embeddings,
            rng=rng,
        )
        return cls(index=index, link=link, query_embedder=query_embedder)

    # -- service dispatch (what the network would carry) -------------------------

    def ranking_answer(self, query):
        return self.ranking_service.answer(query)

    def url_answer(self, query):
        return self.url_service.answer(query)

    def mint_token(self, rng: np.random.Generator | None = None) -> QueryToken:
        """Client-side token acquisition over the serialized RPC path.

        This is the ahead-of-time phase of SS6.3: nothing here depends
        on the eventual query string, and the recorded byte counts are
        lengths of real message encodings.
        """
        schemes = {
            "ranking": self.index.ranking_scheme,
            "url": self.index.url_scheme,
        }
        with obs.span("token.acquire", services=len(schemes)):
            keys, enc_keys, _ = make_client_keys(schemes, rng)
            log = TrafficLog()
            channel = RpcChannel(log)
            body = channel.call(
                self.token_endpoint,
                "token",
                "mint",
                # tiptoe-lint: disable=taint-wire -- enc_keys is the outer *encryption* of the inner secret; uploading it is the SS6.3 protocol
                wire.encode_mint_request(enc_keys),
            )
            payload = wire.decode_token_payload(body)
            hint_products = {
                name: schemes[name].decrypt_hint_product(
                    keys[name], payload.hints[name]
                )
                for name in schemes
            }
        return QueryToken(
            keys=keys,
            hint_products=hint_products,
            upload_bytes=log.bytes_up("token"),
            download_bytes=log.bytes_down("token"),
        )

    # -- optional exact-keyword backends (SS9) ------------------------------------

    exact_suite = None

    def attach_exact_backends(self, documents) -> None:
        """Build and attach the SS9 typed keyword backends.

        ``documents`` is an iterable with ``doc_id`` / ``text``
        attributes (usually the corpus the index was built from).
        Clients then use :meth:`TiptoeClient.search_hybrid`.
        """
        from repro.core.exact_backend import ExactSearchSuite

        self.exact_suite = ExactSearchSuite.build(documents)

    # -- client-side helpers -------------------------------------------------------

    def embed_query(self, text: str) -> np.ndarray:
        embedder = self._query_embedder or self.index.embedder
        if hasattr(embedder, "embed_text"):
            vec = embedder.embed_text(text)
        else:
            vec = embedder.embed(text)
        if self.index.pca is not None:
            vec = self.index.pca.transform(vec)
        return np.asarray(vec, dtype=np.float64)

    def storage_position(self, layout_position: int) -> int:
        """Map a layout position to its URL storage position."""
        if self.index.url_position_map is None:
            return layout_position
        return int(self.index.url_position_map[layout_position])

    def new_client(
        self, rng: np.random.Generator | None = None
    ) -> TiptoeClient:
        return TiptoeClient(engine=self, rng=rng)

    def search(
        self, text: str, rng: np.random.Generator | None = None
    ):
        """One-shot convenience: new client, one token, one search."""
        return self.new_client(rng).search(text)

    # -- evaluation helpers (server-side ground truth; not client data) -----------

    def doc_id_of_position(self, position: int) -> int:
        layout = self.index.layout
        cluster = int(
            np.searchsorted(layout.cluster_offsets, position, side="right") - 1
        )
        row = position - int(layout.cluster_offsets[cluster])
        return layout.doc_id_of(cluster, row)

    def result_doc_ids(self, result) -> list[int]:
        """Map a SearchResult's positions back to corpus doc ids."""
        return [self.doc_id_of_position(r.position) for r in result.results]
