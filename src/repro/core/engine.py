"""Top-level assembly: index + services + clients (the public API).

    from repro import TiptoeEngine, TiptoeConfig
    engine = TiptoeEngine.build(texts, urls, TiptoeConfig())
    client = engine.new_client()
    result = client.search("knee pain")
    top_urls = result.urls()[:10]

The engine owns the two client-facing services (sharded ranking + URL
PIR), the token factory, and the simulated client link.  For
text-to-image search, pass precomputed image embeddings and a query
embedder (see :func:`TiptoeEngine.build_from_embeddings`).

Diagnostics go through ``logging.getLogger("repro.core.engine")`` --
never ``print`` (enforced by the ``api-print`` lint rule).
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.core.client import TiptoeClient
from repro.core.config import TiptoeConfig
from repro.core.indexer import TiptoeIndex
from repro.core.services import build_services
from repro.homenc.token import QueryToken
from repro.homenc.token import make_client_keys
from repro.net import wire
from repro.net.rpc import RpcChannel, ServiceEndpoint, frame
from repro.net.transport import LinkModel, LoopbackTransport, TrafficLog
from repro.net.transport import Transport
from repro.obs import runtime as obs

logger = logging.getLogger(__name__)


class TiptoeEngine:
    """One Tiptoe deployment: batch-job output plus running services.

    By default the engine stands up the full service roster in-process
    and binds them behind a :class:`LoopbackTransport` -- bit-identical
    to direct dispatch.  Pass ``transport`` to run *remote*: the engine
    then keeps only the client-side state (schemes, layout, client
    metadata) and sends every request over the given transport, e.g. a
    socket transport pointed at ``python -m repro serve``.
    """

    def __init__(
        self,
        index: TiptoeIndex,
        link: LinkModel | None = None,
        query_embedder=None,
        transport: Transport | None = None,
    ):
        start = time.perf_counter()
        self.index = index
        self.link = link if link is not None else LinkModel()
        self._query_embedder = query_embedder
        self.token_pool = None
        if transport is None:
            self.services = build_services(index)
            config = index.config
            if config.token_pool_depth > 0:
                from repro.core.precompute import TokenPool

                # The pool must attach before services open: the mint
                # service's open() starts the refill worker.
                self.token_pool = TokenPool(
                    lambda count: self.mint_tokens(count),
                    depth=config.token_pool_depth,
                    batch=config.token_pool_batch,
                )
                self.services["token"].attach_pool(self.token_pool)
            self.transport: Transport = LoopbackTransport(
                {
                    name: service.endpoint
                    for name, service in self.services.items()
                }
            )
            for service in self.services.values():
                service.open()
        else:
            self.services = {}
            self.transport = transport
        self.ranking_service = self.services.get("ranking")
        self.url_service = self.services.get("url")
        # Cold-start accounting: how long standing up this engine took
        # (services, pool attach, transport).  The precompute sidecar
        # exists to shrink this number plus the first mint's NTT work.
        obs.observe("engine.cold_start_seconds", time.perf_counter() - start)
        logger.info(
            "engine up (%s): %d clusters, %d ranking workers",
            "loopback" if self.services else "remote",
            len(index.layout.cluster_offsets),
            index.config.num_workers,
        )

    @classmethod
    def connect(
        cls,
        index: TiptoeIndex,
        host: str,
        port: int,
        link: LinkModel | None = None,
        query_embedder=None,
        generation: str | None = None,
    ) -> "TiptoeEngine":
        """A remote engine: client state from ``index``, requests over
        TCP to a running ``python -m repro serve`` (or ``serve-fleet``
        front door) with retry/deadline policy taken from the index's
        config.

        ``generation`` pins every request of this engine's session to
        one index generation by wire name (``ranking@<tag>``): during a
        fleet rolling swap the router then never answers this session
        from a different index than the one ``index`` was loaded from.
        """
        from repro.net.tcp import connect_transport
        from repro.net.transport import TaggedTransport

        config = index.config
        transport: Transport = connect_transport(
            host,
            port,
            timeout=config.rpc_timeout_s,
            policy=config.retry_policy(),
        )
        if generation is not None:
            transport = TaggedTransport(transport, generation)
        return cls(
            index=index,
            link=link,
            query_embedder=query_embedder,
            transport=transport,
        )

    def close(self) -> None:
        """Tear down services (worker pools) and the transport.

        Idempotent; also available as a context manager::

            with TiptoeEngine.build(...) as engine:
                ...
        """
        for service in self.services.values():
            service.close()
        self.transport.close()

    def __enter__(self) -> "TiptoeEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- back-compat endpoint access (in-process tests poke these) -------------

    @property
    def ranking_endpoint(self) -> ServiceEndpoint:
        return self.services["ranking"].endpoint

    @property
    def url_endpoint(self) -> ServiceEndpoint:
        return self.services["url"].endpoint

    @property
    def token_endpoint(self) -> ServiceEndpoint:
        return self.services["token"].endpoint

    @property
    def hint_endpoint(self) -> ServiceEndpoint:
        return self.services["hint"].endpoint

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        texts: list[str],
        urls: list[str],
        config: TiptoeConfig | None = None,
        embedder=None,
        link: LinkModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeEngine":
        """Index a text corpus and stand up the services."""
        config = config if config is not None else TiptoeConfig()
        index = TiptoeIndex.build(
            texts, urls, config, embedder=embedder, rng=rng
        )
        return cls(index=index, link=link)

    @classmethod
    def build_from_embeddings(
        cls,
        embeddings: np.ndarray,
        urls: list[str],
        query_embedder,
        config: TiptoeConfig | None = None,
        link: LinkModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "TiptoeEngine":
        """Index precomputed embeddings (the text-to-image path, SS8.3).

        ``query_embedder`` must expose ``embed(text) -> vector`` in the
        same space as ``embeddings``.
        """
        config = config if config is not None else TiptoeConfig()
        placeholder_texts = [""] * len(urls)
        index = TiptoeIndex.build(
            placeholder_texts,
            urls,
            config,
            embedder=query_embedder,
            embeddings=embeddings,
            rng=rng,
        )
        return cls(index=index, link=link, query_embedder=query_embedder)

    # -- service dispatch (what the network would carry) -------------------------

    def ranking_answer(self, query):
        return self.ranking_service.answer(query)

    def url_answer(self, query):
        return self.url_service.answer(query)

    def mint_token(self, rng: np.random.Generator | None = None) -> QueryToken:
        """Client-side token acquisition over the serialized RPC path.

        This is the ahead-of-time phase of SS6.3: nothing here depends
        on the eventual query string, and the recorded byte counts are
        lengths of real message encodings.

        When the engine runs a pre-mint :class:`TokenPool` and the
        caller does not pin an RNG, a pooled token is returned when one
        is ready (O(1), no crypto inline); otherwise this falls through
        to the lazy mint below.
        """
        if self.token_pool is not None and rng is None:
            token = self.token_pool.take_nowait()
            if token is not None:
                return token
        schemes = {
            "ranking": self.index.ranking_scheme,
            "url": self.index.url_scheme,
        }
        with obs.span("token.acquire", services=len(schemes)):
            keys, enc_keys, _ = make_client_keys(schemes, rng)
            log = TrafficLog()
            channel = RpcChannel(log, self.transport)
            body = channel.call(
                "token",
                "token",
                "mint",
                # tiptoe-lint: disable=taint-wire -- enc_keys is the outer *encryption* of the inner secret; uploading it is the SS6.3 protocol
                wire.encode_mint_request(enc_keys),
            )
            payload = wire.decode_token_payload(body)
            hint_products = {
                name: schemes[name].decrypt_hint_product(
                    keys[name], payload.hints[name]
                )
                for name in schemes
            }
        return QueryToken(
            keys=keys,
            hint_products=hint_products,
            upload_bytes=log.bytes_up("token"),
            download_bytes=log.bytes_down("token"),
        )

    def mint_tokens(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[QueryToken]:
        """Batched token acquisition: K clients through one ``mint_many``.

        Key generation draws from ``rng`` in the same order as ``count``
        sequential :meth:`mint_token` calls, and token i's contents are
        bit-identical to what the i-th sequential mint would return --
        the server merely amortizes its hint NTTs across the batch.
        Per-token byte accounting records the single-mint encodings, so
        a pooled token reports the same upload/download as a lazy one.
        """
        if count < 1:
            raise ValueError("must mint at least one token")
        schemes = {
            "ranking": self.index.ranking_scheme,
            "url": self.index.url_scheme,
        }
        with obs.span("token.acquire_many", clients=count):
            keysets = [make_client_keys(schemes, rng) for _ in range(count)]
            log = TrafficLog()
            channel = RpcChannel(log, self.transport)
            body = channel.call(
                "token",
                "token",
                "mint_many",
                # tiptoe-lint: disable=taint-wire -- each element is the outer *encryption* of an inner secret; uploading it is the SS6.3 protocol
                wire.encode_mint_many_request([ek for _, ek, _ in keysets]),
            )
            payloads = wire.decode_mint_many_payload(body)
            if len(payloads) != count:
                raise ValueError(
                    f"mint_many returned {len(payloads)} tokens for"
                    f" {count} clients"
                )
            tokens = []
            for (keys, enc_keys, _), payload in zip(keysets, payloads):
                hint_products = {
                    name: schemes[name].decrypt_hint_product(
                        keys[name], payload.hints[name]
                    )
                    for name in schemes
                }
                tokens.append(
                    QueryToken(
                        keys=keys,
                        hint_products=hint_products,
                        # Framed single-mint encodings: a batched token
                        # reports the same bytes as a lazy one would.
                        # tiptoe-lint: disable=taint-wire -- length of the encrypted-key encoding only; the bytes never leave this process twice
                        upload_bytes=len(
                            frame("mint", wire.encode_mint_request(enc_keys))
                        ),
                        download_bytes=len(
                            frame("mint", wire.encode_token_payload(payload))
                        ),
                    )
                )
        return tokens

    # -- optional exact-keyword backends (SS9) ------------------------------------

    exact_suite = None

    def attach_exact_backends(self, documents) -> None:
        """Build and attach the SS9 typed keyword backends.

        ``documents`` is an iterable with ``doc_id`` / ``text``
        attributes (usually the corpus the index was built from).
        Clients then use :meth:`TiptoeClient.search_hybrid`.
        """
        from repro.core.exact_backend import ExactSearchSuite

        self.exact_suite = ExactSearchSuite.build(documents)

    # -- client-side helpers -------------------------------------------------------

    def embed_query(self, text: str) -> np.ndarray:
        embedder = self._query_embedder or self.index.embedder
        if hasattr(embedder, "embed_text"):
            vec = embedder.embed_text(text)
        else:
            vec = embedder.embed(text)
        if self.index.pca is not None:
            vec = self.index.pca.transform(vec)
        return np.asarray(vec, dtype=np.float64)

    def storage_position(self, layout_position: int) -> int:
        """Map a layout position to its URL storage position."""
        if self.index.url_position_map is None:
            return layout_position
        return int(self.index.url_position_map[layout_position])

    def new_client(
        self, rng: np.random.Generator | None = None
    ) -> TiptoeClient:
        return TiptoeClient(engine=self, rng=rng)

    def search(
        self, text: str, rng: np.random.Generator | None = None
    ):
        """One-shot convenience: new client, one token, one search."""
        return self.new_client(rng).search(text)

    # -- evaluation helpers (server-side ground truth; not client data) -----------

    def doc_id_of_position(self, position: int) -> int:
        layout = self.index.layout
        cluster = int(
            np.searchsorted(layout.cluster_offsets, position, side="right") - 1
        )
        row = position - int(layout.cluster_offsets[cluster])
        return layout.doc_id_of(cluster, row)

    def result_doc_ids(self, result) -> list[int]:
        """Map a SearchResult's positions back to corpus doc ids."""
        return [self.doc_id_of_position(r.position) for r in result.results]
