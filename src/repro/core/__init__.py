"""Tiptoe's core: the private search engine itself.

Modules, bottom-up:

* :mod:`costs` -- word-op and core-second accounting;
* :mod:`config` -- the deployment configuration;
* :mod:`indexer` -- the data-loading batch jobs (SS3.2): embed,
  cluster, build matrices, preprocess cryptography;
* :mod:`ranking` -- the private nearest-neighbor protocol (SS4);
* :mod:`url_service` -- PIR URL retrieval (SS5);
* :mod:`cluster_runtime` -- coordinator + sharded workers (SS4.3);
* :mod:`client` -- the Tiptoe client;
* :mod:`engine` -- top-level assembly and public API.
"""

from repro.core.client import SearchResult, TiptoeClient
from repro.core.config import TiptoeConfig
from repro.core.engine import TiptoeEngine
from repro.core.indexer import TiptoeIndex

__all__ = [
    "SearchResult",
    "TiptoeClient",
    "TiptoeConfig",
    "TiptoeEngine",
    "TiptoeIndex",
]
