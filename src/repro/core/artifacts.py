"""Versioned persistence for TiptoeIndex build outputs.

The batch jobs (SS3.2) are expensive -- embedding, clustering, and the
cryptographic preprocessing all scale with the corpus -- so a
deployment runs them once and serves from the result.  This module
writes everything :class:`~repro.core.indexer.TiptoeIndex` produced
into a directory, and loads it back *bit-identically*: searches
against a loaded index return exactly the bytes the original index
would have (the regression suite asserts this).

Layout of an artifact directory (schema ``repro.index/v2``)::

    manifest.json   -- schema tag, config, scheme parameters (with the
                       public A-seeds), database scalars, build ledger
    vocab.json      -- the LSA embedder's term dictionary
    arrays.npz      -- every numpy array: ranking layout, centroids,
                       hints (raw + modulus-switched), the packed URL
                       database, embeddings, PCA/LSA projections
    blobs.bin       -- the compressed URL batches, u32-length-prefixed
    precompute.npz  -- OPTIONAL sidecar: the plaintext-side hint NTT
                       tables of both services plus serialized
                       StackedPlan metadata, keyed to arrays.npz by
                       SHA-256 digest (see below)

Ragged structures (cluster membership lists, per-batch doc ids) are
stored flattened next to an offsets array.  Floats ride through JSON
losslessly (``repr`` round-trips IEEE doubles exactly), and the LWE
``A`` matrices are regenerated from their stored seeds, which is why
bit-identical reloads are possible at all.

``v2`` extends ``v1`` with the optional precompute sidecar; a ``v2``
build still loads ``v1`` directories (the sidecar is simply absent).
The sidecar is pure derived data -- every array in it is a
deterministic function of arrays.npz -- so loading it changes no
answer bytes, only cold-start time.  Its members are written
uncompressed and load memory-mapped read-only; a digest mismatch
(sidecar from a different arrays.npz) is rejected with
:class:`ArtifactError` rather than silently serving stale tables.

Both versions persist indexes whose embedder is the in-repo
:class:`~repro.embeddings.lsa.LsaEmbedder` (or none, for the
precomputed-embeddings path); foreign embedder objects are rejected
with a clear error rather than pickled.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.cluster import ClusterIndex
from repro.core.config import TiptoeConfig
from repro.core.costs import CostLedger
from repro.corpus.urls import UrlBatch
from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.vocab import Vocabulary
from repro.homenc.double import (
    DoubleLheParams,
    DoubleLheScheme,
    PreprocessedMatrix,
)
from repro.homenc.token import TokenFactory
from repro.lwe.params import LweParams, SecurityLevel
from repro.obs import runtime as obs
from repro.pir.database import PackedDatabase

SCHEMA = "repro.index/v2"
#: Schemas this build can load; v1 directories simply lack the sidecar.
COMPATIBLE_SCHEMAS = ("repro.index/v1", SCHEMA)
#: Schema tag of the precompute sidecar itself.
PRECOMPUTE_SCHEMA = "repro.precompute/v1"

_MANIFEST = "manifest.json"
_VOCAB = "vocab.json"
_ARRAYS = "arrays.npz"
_BLOBS = "blobs.bin"
_PRECOMPUTE = "precompute.npz"

_BLOB_LEN = struct.Struct("<I")


class ArtifactError(RuntimeError):
    """The directory does not hold a loadable index artifact."""


# -- ragged helpers -----------------------------------------------------------


def _flatten(lists) -> tuple[np.ndarray, np.ndarray]:
    """(flat values, offsets) for a list of int lists; offsets has one
    entry per list plus a final sentinel, so list i is
    ``flat[offsets[i]:offsets[i + 1]]``."""
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    for i, members in enumerate(lists):
        offsets[i + 1] = offsets[i] + len(members)
    flat = np.fromiter(
        (x for members in lists for x in members),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return flat, offsets


def _unflatten(flat: np.ndarray, offsets: np.ndarray) -> list[list[int]]:
    return [
        [int(x) for x in flat[offsets[i] : offsets[i + 1]]]
        for i in range(len(offsets) - 1)
    ]


# -- scheme (de)serialization -------------------------------------------------


def _scheme_manifest(scheme: DoubleLheScheme) -> dict:
    params = scheme.params
    inner = params.inner
    return {
        "inner": {
            "n": inner.n,
            "q_bits": inner.q_bits,
            "p": inner.p,
            "sigma": inner.sigma,
            "m": inner.m,
        },
        "outer_n": params.outer_n,
        "outer_prime_bits": params.outer_prime_bits,
        "outer_num_primes": params.outer_num_primes,
        "outer_sigma": params.outer_sigma,
        "switch_modulus": params.switch_modulus,
        "a_seed": scheme.inner.a_seed.hex(),
    }


def _scheme_from_manifest(entry: dict) -> DoubleLheScheme:
    return DoubleLheScheme(
        DoubleLheParams(
            inner=LweParams(**entry["inner"]),
            outer_n=entry["outer_n"],
            outer_prime_bits=entry["outer_prime_bits"],
            outer_num_primes=entry["outer_num_primes"],
            outer_sigma=entry["outer_sigma"],
            switch_modulus=entry["switch_modulus"],
        ),
        a_seed=bytes.fromhex(entry["a_seed"]),
    )


def _config_manifest(config: TiptoeConfig) -> dict:
    from dataclasses import fields

    out = {}
    for f in fields(config):
        value = getattr(config, f.name)
        out[f.name] = value.value if f.name == "security" else value
    return out


def _config_from_manifest(entry: dict) -> TiptoeConfig:
    entry = dict(entry)
    entry["security"] = SecurityLevel(entry["security"])
    return TiptoeConfig(**entry)


# -- the precompute sidecar ---------------------------------------------------


def _file_digest(path: Path) -> str:
    """SHA-256 of a file's bytes (what keys the sidecar to arrays.npz)."""
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


#: Length of a generation tag: the tagged wire name ``ranking@<tag>``
#: must fit the 16-byte service field of the socket frame, and
#: ``ranking@`` is 8 bytes already.
GENERATION_TAG_LEN = 8


def artifact_digest(path: str | Path) -> str:
    """SHA-256 of an artifact directory's ``arrays.npz``.

    This is the identity of an index generation: two artifacts with the
    same digest serve bit-identical answers.
    """
    arrays_path = Path(path) / _ARRAYS
    if not arrays_path.is_file():
        raise ArtifactError(f"no {_ARRAYS} in {path}; not an index artifact")
    return _file_digest(arrays_path)


def generation_tag(path: str | Path) -> str:
    """The short generation tag for an artifact (8-hex digest prefix).

    Used to pin a client session to one index generation across a
    rolling fleet swap (see :mod:`repro.core.fleet`).
    """
    return artifact_digest(path)[:GENERATION_TAG_LEN]


def write_precompute_sidecar(
    index, path: str | Path, *, kernel_plan: dict | None = None
) -> Path:
    """Write ``precompute.npz`` next to an already-saved artifact.

    The sidecar holds each service's plaintext-side hint NTT table
    (shape ``(n_chunks, k, n_inner, n_outer)``), the serialized
    stacked-plan metadata for the ranking and URL matrices, and
    (optionally) the autotuned ``kernel_plan`` record -- all keyed to
    the exact ``arrays.npz`` it was derived from by SHA-256 digest.
    Everything in it is derived data: a ``serve`` without the sidecar
    computes the same values lazily (and untuned).

    ``kernel_plan`` is a ``{"ranking": ..., "url": ...}`` record from
    :func:`repro.lwe.backends.tune_index`; when None and the index
    config sets ``kernel_autotune``, the tuner runs here.
    """
    from repro.lwe import backends as kernel_backends

    path = Path(path)
    arrays_path = path / _ARRAYS
    if not arrays_path.is_file():
        raise ArtifactError(
            f"no {_ARRAYS} in {path}; save the index before its sidecar"
        )
    reference = kernel_backends.get_backend("reference")
    ranking_plan = reference.plan(
        index.layout.matrix, index.ranking_scheme.params.inner.q_bits
    )
    url_plan = reference.plan(
        index.url_db.matrix, index.url_scheme.params.inner.q_bits
    )
    if kernel_plan is None and getattr(index.config, "kernel_autotune", False):
        kernel_plan = kernel_backends.tune_index(index)
    meta = {
        "schema": PRECOMPUTE_SCHEMA,
        "arrays_digest": _file_digest(arrays_path),
        "plans": {
            "ranking": ranking_plan.metadata(),
            "url": url_plan.metadata(),
        },
    }
    if kernel_plan is not None:
        meta["kernel_plan"] = kernel_plan
    arrays = {
        "ranking_hint_ntt": index.ranking_scheme.hint_ntt_table(
            index.ranking_prep
        ),
        "url_hint_ntt": index.url_scheme.hint_ntt_table(index.url_prep),
        "meta_json": np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
    }
    # np.savez (not _compressed): ZIP_STORED members are what the
    # memory-mapped loader requires.
    with (path / _PRECOMPUTE).open("wb") as fh:
        np.savez(fh, **arrays)
    return path / _PRECOMPUTE


def _mmap_npz(npz_path: Path) -> dict[str, np.ndarray]:
    """Memory-map every member of an uncompressed ``.npz`` read-only.

    ``np.load(mmap_mode=...)`` cannot map zip members, so this walks
    the zip directory itself: each member of an ``np.savez`` archive is
    a stored (uncompressed) ``.npy`` file at a knowable offset, which
    ``np.memmap`` can map directly.  Arrays come back read-only.
    """
    out: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(npz_path) as zf:
        infos = list(zf.infolist())
    with npz_path.open("rb") as fh:
        for info in infos:
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            if info.compress_type != zipfile.ZIP_STORED:
                raise ArtifactError(
                    f"{npz_path.name}: member {name!r} is compressed and"
                    " cannot be memory-mapped"
                )
            # Local file header: fixed 30 bytes, then name and extra
            # fields, then the member's data (the .npy stream).
            fh.seek(info.header_offset)
            local = fh.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ArtifactError(
                    f"{npz_path.name}: corrupt local header for {name!r}"
                )
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            fh.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                raise ArtifactError(
                    f"{npz_path.name}: unsupported npy version {version}"
                    f" for member {name!r}"
                )
            out[name] = np.memmap(
                npz_path,
                dtype=dtype,
                mode="r",
                offset=fh.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return out


def load_precompute_sidecar(path: str | Path) -> tuple[dict, dict] | None:
    """Load and validate ``precompute.npz`` if present.

    Returns ``(meta, arrays)`` with the big NTT tables memory-mapped
    read-only, or ``None`` when the directory has no sidecar.  Raises
    :class:`ArtifactError` when the sidecar exists but was derived from
    a different ``arrays.npz`` (digest mismatch) or carries an unknown
    schema.
    """
    path = Path(path)
    sidecar_path = path / _PRECOMPUTE
    if not sidecar_path.is_file():
        return None
    arrays = _mmap_npz(sidecar_path)
    if "meta_json" not in arrays:
        raise ArtifactError(f"{_PRECOMPUTE}: missing meta_json member")
    meta = json.loads(bytes(np.asarray(arrays.pop("meta_json"))).decode("utf-8"))
    if meta.get("schema") != PRECOMPUTE_SCHEMA:
        raise ArtifactError(
            f"{_PRECOMPUTE}: schema is {meta.get('schema')!r}, this build"
            f" reads {PRECOMPUTE_SCHEMA!r}"
        )
    actual = _file_digest(path / _ARRAYS)
    if meta.get("arrays_digest") != actual:
        raise ArtifactError(
            f"{_PRECOMPUTE}: derived from a different {_ARRAYS}"
            f" (sidecar digest {meta.get('arrays_digest')}, actual"
            f" {actual}); rebuild the sidecar"
        )
    return meta, arrays


# -- save ---------------------------------------------------------------------


def save_index(index, path: str | Path, *, precompute: bool = False) -> Path:
    """Write one index into ``path`` (created if needed)."""
    from repro.core.indexer import TiptoeIndex  # noqa: F401 (docs anchor)

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    embedder = index.embedder
    if embedder is not None and not isinstance(embedder, LsaEmbedder):
        raise ArtifactError(
            f"schema {SCHEMA} persists LsaEmbedder-based indexes only;"
            f" got embedder of type {type(embedder).__name__}"
            " (rebuild from embeddings, or keep the embedder external)"
        )

    arrays: dict[str, np.ndarray] = {
        "layout_matrix": index.layout.matrix,
        "cluster_sizes": index.layout.cluster_sizes,
        "cluster_offsets": index.layout.cluster_offsets,
        "centroids": index.clusters.centroids,
        "url_db_matrix": index.url_db.matrix,
        "ranking_hint": index.ranking_prep.hint,
        "ranking_switched_hint": index.ranking_prep.switched_hint,
        "url_hint": index.url_prep.hint,
        "url_switched_hint": index.url_prep.switched_hint,
        "embeddings": index.embeddings,
    }
    (
        arrays["cluster_docs_flat"],
        arrays["cluster_docs_offsets"],
    ) = _flatten(index.clusters.assignments)
    (
        arrays["doc_clusters_flat"],
        arrays["doc_clusters_offsets"],
    ) = _flatten(index.clusters.doc_to_clusters)
    (
        arrays["batch_doc_ids_flat"],
        arrays["batch_doc_ids_offsets"],
    ) = _flatten([b.doc_ids for b in index.url_batches])
    if index.url_position_map is not None:
        arrays["url_position_map"] = index.url_position_map
    if index.doc_digests is not None:
        arrays["doc_digests"] = index.doc_digests
    if index.pca is not None:
        arrays["pca_mean"] = index.pca.mean
        arrays["pca_components"] = index.pca.components
        arrays["pca_evr"] = index.pca.explained_variance_ratio
    if embedder is not None:
        arrays["lsa_projection"] = embedder.projection

    manifest = {
        "schema": SCHEMA,
        "config": _config_manifest(index.config),
        "quantization_gain": index.quantization_gain,
        "build_ledger": index.build_ledger.word_ops,
        "schemes": {
            "ranking": _scheme_manifest(index.ranking_scheme),
            "url": _scheme_manifest(index.url_scheme),
        },
        "url_db": {
            "p": index.url_db.p,
            "bits_per_digit": index.url_db.bits_per_digit,
            "num_records": index.url_db.num_records,
            "record_bytes": index.url_db.record_bytes,
            "records_per_column": index.url_db.records_per_column,
            "slot_digits": index.url_db.slot_digits,
        },
        "layout_dim": index.layout.dim,
        # Streaming-ingest metadata (None for one-shot builds): the
        # per-document boundary-rule threshold the delta reindex pins.
        "boundary_threshold": index.boundary_threshold,
        "embedder": None
        if embedder is None
        else {"kind": "lsa", "dim": embedder.dim},
        "prep_rows": {
            "ranking": index.ranking_prep.rows,
            "url": index.url_prep.rows,
        },
    }

    with (path / _ARRAYS).open("wb") as fh:
        np.savez(fh, **arrays)
    with (path / _BLOBS).open("wb") as fh:
        for batch in index.url_batches:
            fh.write(_BLOB_LEN.pack(len(batch.payload)))
            fh.write(batch.payload)
    if embedder is not None:
        vocab = embedder.vocab
        (path / _VOCAB).write_text(
            json.dumps(
                {
                    "term_to_id": vocab.term_to_id,
                    "doc_freq": vocab.doc_freq,
                    "num_docs": vocab.num_docs,
                }
            )
        )
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    if precompute:
        write_precompute_sidecar(index, path)
    return path


# -- load ---------------------------------------------------------------------


def _read_blobs(path: Path) -> list[bytes]:
    data = path.read_bytes()
    blobs = []
    cursor = 0
    while cursor < len(data):
        if cursor + _BLOB_LEN.size > len(data):
            raise ArtifactError(f"{path.name}: truncated blob length prefix")
        (length,) = _BLOB_LEN.unpack_from(data, cursor)
        cursor += _BLOB_LEN.size
        if cursor + length > len(data):
            raise ArtifactError(
                f"{path.name}: blob declares {length} bytes but only"
                f" {len(data) - cursor} remain"
            )
        blobs.append(data[cursor : cursor + length])
        cursor += length
    return blobs


def load_index(path: str | Path):
    """Load an index saved by :func:`save_index`."""
    import time

    from repro.core.indexer import RankingLayout, TiptoeIndex

    start = time.perf_counter()
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no {_MANIFEST} in {path}")
    manifest = json.loads(manifest_path.read_text())
    schema = manifest.get("schema")
    if schema not in COMPATIBLE_SCHEMAS:
        raise ArtifactError(
            f"artifact schema is {schema!r}, this build reads {SCHEMA!r}"
            f" (compatible: {', '.join(COMPATIBLE_SCHEMAS)})"
        )

    with np.load(path / _ARRAYS) as npz:
        arrays = {name: npz[name] for name in npz.files}

    config = _config_from_manifest(manifest["config"])

    cluster_docs = _unflatten(
        arrays["cluster_docs_flat"], arrays["cluster_docs_offsets"]
    )
    clusters = ClusterIndex(
        centroids=arrays["centroids"],
        assignments=cluster_docs,
        doc_to_clusters=_unflatten(
            arrays["doc_clusters_flat"], arrays["doc_clusters_offsets"]
        ),
    )
    layout = RankingLayout(
        matrix=arrays["layout_matrix"],
        cluster_doc_ids=[list(m) for m in cluster_docs],
        cluster_sizes=arrays["cluster_sizes"],
        cluster_offsets=arrays["cluster_offsets"],
        dim=int(manifest["layout_dim"]),
    )

    payloads = _read_blobs(path / _BLOBS)
    batch_ids = _unflatten(
        arrays["batch_doc_ids_flat"], arrays["batch_doc_ids_offsets"]
    )
    if len(payloads) != len(batch_ids):
        raise ArtifactError(
            f"{len(payloads)} URL payloads but {len(batch_ids)} id lists"
        )
    url_batches = [
        UrlBatch(payload=payload, doc_ids=tuple(ids))
        for payload, ids in zip(payloads, batch_ids)
    ]

    db_meta = manifest["url_db"]
    url_db = PackedDatabase(
        matrix=arrays["url_db_matrix"],
        p=db_meta["p"],
        bits_per_digit=db_meta["bits_per_digit"],
        num_records=db_meta["num_records"],
        record_bytes=db_meta["record_bytes"],
    )
    url_db.records_per_column = db_meta["records_per_column"]
    url_db.slot_digits = db_meta["slot_digits"]

    ranking_scheme = _scheme_from_manifest(manifest["schemes"]["ranking"])
    url_scheme = _scheme_from_manifest(manifest["schemes"]["url"])

    sidecar = load_precompute_sidecar(path)
    precompute_meta = None
    ranking_hint_ntt = None
    url_hint_ntt = None
    if sidecar is not None:
        precompute_meta, side_arrays = sidecar
        ranking_hint_ntt = side_arrays["ranking_hint_ntt"]
        url_hint_ntt = side_arrays["url_hint_ntt"]

    ranking_prep = PreprocessedMatrix(
        hint=arrays["ranking_hint"],
        switched_hint=arrays["ranking_switched_hint"],
        rows=int(manifest["prep_rows"]["ranking"]),
        hint_ntt=ranking_hint_ntt,
    )
    url_prep = PreprocessedMatrix(
        hint=arrays["url_hint"],
        switched_hint=arrays["url_switched_hint"],
        rows=int(manifest["prep_rows"]["url"]),
        hint_ntt=url_hint_ntt,
    )
    token_factory = TokenFactory()
    token_factory.register("ranking", ranking_scheme, ranking_prep)
    token_factory.register("url", url_scheme, url_prep)

    embedder = None
    if manifest["embedder"] is not None:
        if manifest["embedder"]["kind"] != "lsa":
            raise ArtifactError(
                f"unknown embedder kind {manifest['embedder']['kind']!r}"
            )
        vocab_meta = json.loads((path / _VOCAB).read_text())
        embedder = LsaEmbedder(
            dim=int(manifest["embedder"]["dim"]),
            vocab=Vocabulary(
                term_to_id=vocab_meta["term_to_id"],
                doc_freq=vocab_meta["doc_freq"],
                num_docs=vocab_meta["num_docs"],
            ),
            projection=arrays["lsa_projection"],
        )

    pca = None
    if "pca_components" in arrays:
        pca = PcaReducer(
            mean=arrays["pca_mean"],
            components=arrays["pca_components"],
            explained_variance_ratio=arrays["pca_evr"],
        )

    ledger = CostLedger()
    for component, ops in manifest["build_ledger"].items():
        ledger.add(component, ops)

    index = TiptoeIndex(
        config=config,
        embedder=embedder,
        pca=pca,
        clusters=clusters,
        layout=layout,
        url_batches=url_batches,
        url_db=url_db,
        ranking_scheme=ranking_scheme,
        url_scheme=url_scheme,
        ranking_prep=ranking_prep,
        url_prep=url_prep,
        token_factory=token_factory,
        build_ledger=ledger,
        embeddings=arrays["embeddings"],
        url_position_map=arrays.get("url_position_map"),
        quantization_gain=float(manifest["quantization_gain"]),
        precompute=precompute_meta,
        boundary_threshold=manifest.get("boundary_threshold"),
        doc_digests=arrays.get("doc_digests"),
    )
    obs.observe("artifacts.load_seconds", time.perf_counter() - start)
    return index
