"""Versioned persistence for TiptoeIndex build outputs.

The batch jobs (SS3.2) are expensive -- embedding, clustering, and the
cryptographic preprocessing all scale with the corpus -- so a
deployment runs them once and serves from the result.  This module
writes everything :class:`~repro.core.indexer.TiptoeIndex` produced
into a directory, and loads it back *bit-identically*: searches
against a loaded index return exactly the bytes the original index
would have (the regression suite asserts this).

Layout of an artifact directory (schema ``repro.index/v1``)::

    manifest.json   -- schema tag, config, scheme parameters (with the
                       public A-seeds), database scalars, build ledger
    vocab.json      -- the LSA embedder's term dictionary
    arrays.npz      -- every numpy array: ranking layout, centroids,
                       hints (raw + modulus-switched), the packed URL
                       database, embeddings, PCA/LSA projections
    blobs.bin       -- the compressed URL batches, u32-length-prefixed

Ragged structures (cluster membership lists, per-batch doc ids) are
stored flattened next to an offsets array.  Floats ride through JSON
losslessly (``repr`` round-trips IEEE doubles exactly), and the LWE
``A`` matrices are regenerated from their stored seeds, which is why
bit-identical reloads are possible at all.

``v1`` persists indexes whose embedder is the in-repo
:class:`~repro.embeddings.lsa.LsaEmbedder` (or none, for the
precomputed-embeddings path); foreign embedder objects are rejected
with a clear error rather than pickled.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.cluster import ClusterIndex
from repro.core.config import TiptoeConfig
from repro.core.costs import CostLedger
from repro.corpus.urls import UrlBatch
from repro.embeddings.lsa import LsaEmbedder
from repro.embeddings.pca import PcaReducer
from repro.embeddings.vocab import Vocabulary
from repro.homenc.double import (
    DoubleLheParams,
    DoubleLheScheme,
    PreprocessedMatrix,
)
from repro.homenc.token import TokenFactory
from repro.lwe.params import LweParams, SecurityLevel
from repro.pir.database import PackedDatabase

SCHEMA = "repro.index/v1"

_MANIFEST = "manifest.json"
_VOCAB = "vocab.json"
_ARRAYS = "arrays.npz"
_BLOBS = "blobs.bin"

_BLOB_LEN = struct.Struct("<I")


class ArtifactError(RuntimeError):
    """The directory does not hold a loadable index artifact."""


# -- ragged helpers -----------------------------------------------------------


def _flatten(lists) -> tuple[np.ndarray, np.ndarray]:
    """(flat values, offsets) for a list of int lists; offsets has one
    entry per list plus a final sentinel, so list i is
    ``flat[offsets[i]:offsets[i + 1]]``."""
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    for i, members in enumerate(lists):
        offsets[i + 1] = offsets[i] + len(members)
    flat = np.fromiter(
        (x for members in lists for x in members),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return flat, offsets


def _unflatten(flat: np.ndarray, offsets: np.ndarray) -> list[list[int]]:
    return [
        [int(x) for x in flat[offsets[i] : offsets[i + 1]]]
        for i in range(len(offsets) - 1)
    ]


# -- scheme (de)serialization -------------------------------------------------


def _scheme_manifest(scheme: DoubleLheScheme) -> dict:
    params = scheme.params
    inner = params.inner
    return {
        "inner": {
            "n": inner.n,
            "q_bits": inner.q_bits,
            "p": inner.p,
            "sigma": inner.sigma,
            "m": inner.m,
        },
        "outer_n": params.outer_n,
        "outer_prime_bits": params.outer_prime_bits,
        "outer_num_primes": params.outer_num_primes,
        "outer_sigma": params.outer_sigma,
        "switch_modulus": params.switch_modulus,
        "a_seed": scheme.inner.a_seed.hex(),
    }


def _scheme_from_manifest(entry: dict) -> DoubleLheScheme:
    return DoubleLheScheme(
        DoubleLheParams(
            inner=LweParams(**entry["inner"]),
            outer_n=entry["outer_n"],
            outer_prime_bits=entry["outer_prime_bits"],
            outer_num_primes=entry["outer_num_primes"],
            outer_sigma=entry["outer_sigma"],
            switch_modulus=entry["switch_modulus"],
        ),
        a_seed=bytes.fromhex(entry["a_seed"]),
    )


def _config_manifest(config: TiptoeConfig) -> dict:
    from dataclasses import fields

    out = {}
    for f in fields(config):
        value = getattr(config, f.name)
        out[f.name] = value.value if f.name == "security" else value
    return out


def _config_from_manifest(entry: dict) -> TiptoeConfig:
    entry = dict(entry)
    entry["security"] = SecurityLevel(entry["security"])
    return TiptoeConfig(**entry)


# -- save ---------------------------------------------------------------------


def save_index(index, path: str | Path) -> Path:
    """Write one index into ``path`` (created if needed)."""
    from repro.core.indexer import TiptoeIndex  # noqa: F401 (docs anchor)

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    embedder = index.embedder
    if embedder is not None and not isinstance(embedder, LsaEmbedder):
        raise ArtifactError(
            f"schema {SCHEMA} persists LsaEmbedder-based indexes only;"
            f" got embedder of type {type(embedder).__name__}"
            " (rebuild from embeddings, or keep the embedder external)"
        )

    arrays: dict[str, np.ndarray] = {
        "layout_matrix": index.layout.matrix,
        "cluster_sizes": index.layout.cluster_sizes,
        "cluster_offsets": index.layout.cluster_offsets,
        "centroids": index.clusters.centroids,
        "url_db_matrix": index.url_db.matrix,
        "ranking_hint": index.ranking_prep.hint,
        "ranking_switched_hint": index.ranking_prep.switched_hint,
        "url_hint": index.url_prep.hint,
        "url_switched_hint": index.url_prep.switched_hint,
        "embeddings": index.embeddings,
    }
    (
        arrays["cluster_docs_flat"],
        arrays["cluster_docs_offsets"],
    ) = _flatten(index.clusters.assignments)
    (
        arrays["doc_clusters_flat"],
        arrays["doc_clusters_offsets"],
    ) = _flatten(index.clusters.doc_to_clusters)
    (
        arrays["batch_doc_ids_flat"],
        arrays["batch_doc_ids_offsets"],
    ) = _flatten([b.doc_ids for b in index.url_batches])
    if index.url_position_map is not None:
        arrays["url_position_map"] = index.url_position_map
    if index.pca is not None:
        arrays["pca_mean"] = index.pca.mean
        arrays["pca_components"] = index.pca.components
        arrays["pca_evr"] = index.pca.explained_variance_ratio
    if embedder is not None:
        arrays["lsa_projection"] = embedder.projection

    manifest = {
        "schema": SCHEMA,
        "config": _config_manifest(index.config),
        "quantization_gain": index.quantization_gain,
        "build_ledger": index.build_ledger.word_ops,
        "schemes": {
            "ranking": _scheme_manifest(index.ranking_scheme),
            "url": _scheme_manifest(index.url_scheme),
        },
        "url_db": {
            "p": index.url_db.p,
            "bits_per_digit": index.url_db.bits_per_digit,
            "num_records": index.url_db.num_records,
            "record_bytes": index.url_db.record_bytes,
            "records_per_column": index.url_db.records_per_column,
            "slot_digits": index.url_db.slot_digits,
        },
        "layout_dim": index.layout.dim,
        "embedder": None
        if embedder is None
        else {"kind": "lsa", "dim": embedder.dim},
        "prep_rows": {
            "ranking": index.ranking_prep.rows,
            "url": index.url_prep.rows,
        },
    }

    with (path / _ARRAYS).open("wb") as fh:
        np.savez(fh, **arrays)
    with (path / _BLOBS).open("wb") as fh:
        for batch in index.url_batches:
            fh.write(_BLOB_LEN.pack(len(batch.payload)))
            fh.write(batch.payload)
    if embedder is not None:
        vocab = embedder.vocab
        (path / _VOCAB).write_text(
            json.dumps(
                {
                    "term_to_id": vocab.term_to_id,
                    "doc_freq": vocab.doc_freq,
                    "num_docs": vocab.num_docs,
                }
            )
        )
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


# -- load ---------------------------------------------------------------------


def _read_blobs(path: Path) -> list[bytes]:
    data = path.read_bytes()
    blobs = []
    cursor = 0
    while cursor < len(data):
        if cursor + _BLOB_LEN.size > len(data):
            raise ArtifactError(f"{path.name}: truncated blob length prefix")
        (length,) = _BLOB_LEN.unpack_from(data, cursor)
        cursor += _BLOB_LEN.size
        if cursor + length > len(data):
            raise ArtifactError(
                f"{path.name}: blob declares {length} bytes but only"
                f" {len(data) - cursor} remain"
            )
        blobs.append(data[cursor : cursor + length])
        cursor += length
    return blobs


def load_index(path: str | Path):
    """Load an index saved by :func:`save_index`."""
    from repro.core.indexer import RankingLayout, TiptoeIndex

    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no {_MANIFEST} in {path}")
    manifest = json.loads(manifest_path.read_text())
    schema = manifest.get("schema")
    if schema != SCHEMA:
        raise ArtifactError(
            f"artifact schema is {schema!r}, this build reads {SCHEMA!r}"
        )

    with np.load(path / _ARRAYS) as npz:
        arrays = {name: npz[name] for name in npz.files}

    config = _config_from_manifest(manifest["config"])

    cluster_docs = _unflatten(
        arrays["cluster_docs_flat"], arrays["cluster_docs_offsets"]
    )
    clusters = ClusterIndex(
        centroids=arrays["centroids"],
        assignments=cluster_docs,
        doc_to_clusters=_unflatten(
            arrays["doc_clusters_flat"], arrays["doc_clusters_offsets"]
        ),
    )
    layout = RankingLayout(
        matrix=arrays["layout_matrix"],
        cluster_doc_ids=[list(m) for m in cluster_docs],
        cluster_sizes=arrays["cluster_sizes"],
        cluster_offsets=arrays["cluster_offsets"],
        dim=int(manifest["layout_dim"]),
    )

    payloads = _read_blobs(path / _BLOBS)
    batch_ids = _unflatten(
        arrays["batch_doc_ids_flat"], arrays["batch_doc_ids_offsets"]
    )
    if len(payloads) != len(batch_ids):
        raise ArtifactError(
            f"{len(payloads)} URL payloads but {len(batch_ids)} id lists"
        )
    url_batches = [
        UrlBatch(payload=payload, doc_ids=tuple(ids))
        for payload, ids in zip(payloads, batch_ids)
    ]

    db_meta = manifest["url_db"]
    url_db = PackedDatabase(
        matrix=arrays["url_db_matrix"],
        p=db_meta["p"],
        bits_per_digit=db_meta["bits_per_digit"],
        num_records=db_meta["num_records"],
        record_bytes=db_meta["record_bytes"],
    )
    url_db.records_per_column = db_meta["records_per_column"]
    url_db.slot_digits = db_meta["slot_digits"]

    ranking_scheme = _scheme_from_manifest(manifest["schemes"]["ranking"])
    url_scheme = _scheme_from_manifest(manifest["schemes"]["url"])
    ranking_prep = PreprocessedMatrix(
        hint=arrays["ranking_hint"],
        switched_hint=arrays["ranking_switched_hint"],
        rows=int(manifest["prep_rows"]["ranking"]),
    )
    url_prep = PreprocessedMatrix(
        hint=arrays["url_hint"],
        switched_hint=arrays["url_switched_hint"],
        rows=int(manifest["prep_rows"]["url"]),
    )
    token_factory = TokenFactory()
    token_factory.register("ranking", ranking_scheme, ranking_prep)
    token_factory.register("url", url_scheme, url_prep)

    embedder = None
    if manifest["embedder"] is not None:
        if manifest["embedder"]["kind"] != "lsa":
            raise ArtifactError(
                f"unknown embedder kind {manifest['embedder']['kind']!r}"
            )
        vocab_meta = json.loads((path / _VOCAB).read_text())
        embedder = LsaEmbedder(
            dim=int(manifest["embedder"]["dim"]),
            vocab=Vocabulary(
                term_to_id=vocab_meta["term_to_id"],
                doc_freq=vocab_meta["doc_freq"],
                num_docs=vocab_meta["num_docs"],
            ),
            projection=arrays["lsa_projection"],
        )

    pca = None
    if "pca_components" in arrays:
        pca = PcaReducer(
            mean=arrays["pca_mean"],
            components=arrays["pca_components"],
            explained_variance_ratio=arrays["pca_evr"],
        )

    ledger = CostLedger()
    for component, ops in manifest["build_ledger"].items():
        ledger.add(component, ops)

    return TiptoeIndex(
        config=config,
        embedder=embedder,
        pca=pca,
        clusters=clusters,
        layout=layout,
        url_batches=url_batches,
        url_db=url_db,
        ranking_scheme=ranking_scheme,
        url_scheme=url_scheme,
        ranking_prep=ranking_prep,
        url_prep=url_prep,
        token_factory=token_factory,
        build_ledger=ledger,
        embeddings=arrays["embeddings"],
        url_position_map=arrays.get("url_position_map"),
        quantization_gain=float(manifest["quantization_gain"]),
    )
