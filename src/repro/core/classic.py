"""The classic (hint-download) client mode -- SS6's counterfactual.

Plain SimplePIR has the client download the hint matrices once; every
later query then reuses them ("99.9% of this download" amortizes,
SS6.1).  Tiptoe instead compresses the hint away with the double
layer, paying ~4x more *per-query* communication but eliminating the
enormous first download and the client-side hint storage.

This client implements the counterfactual so the trade is measurable
end to end: a `hint` phase (once per corpus snapshot), then per-query
`ranking`/`url` phases with fresh inner keys each time and *no* token
phase.  Results are bit-identical to the token-mode client.
"""

from __future__ import annotations

import numpy as np

from repro.core.client import ScoredResult, SearchResult
from repro.core.ranking import RankingAnswer, RankingClient
from repro.core.url_service import UrlServiceClient
from repro.embeddings.quantize import quantize
from repro.lwe import sampling
from repro.net import wire
from repro.net.rpc import RpcChannel
from repro.net.transport import TrafficLog
from repro.pir.simplepir import PirAnswer


class ClassicTiptoeClient:
    """A client that stores the raw hints instead of using tokens."""

    def __init__(self, engine, rng: np.random.Generator | None = None):
        self.engine = engine
        self.rng = sampling.resolve_rng(rng)
        meta = engine.index.client_metadata()
        self.metadata = meta
        self.ranking = RankingClient(
            engine.index.ranking_scheme,
            dim=meta.dim,
            num_clusters=len(meta.cluster_sizes),
        )
        self.url_client = UrlServiceClient(
            scheme=engine.index.url_scheme,
            db_meta=engine.index.url_db,
            batch_size=meta.url_batch_size,
        )
        self._hints = None
        self.hint_traffic = TrafficLog()

    def fetch_hints(self) -> None:
        """The one-time hint download (the cost Tiptoe eliminates)."""
        channel = RpcChannel(self.hint_traffic, self.engine.transport)
        body = channel.call("hint", "hint", "ranking", b"")
        ranking_hint, _ = wire.decode_matrix(body)
        body = channel.call("hint", "hint", "url", b"")
        url_hint, _ = wire.decode_matrix(body)
        self._hints = {"ranking": ranking_hint, "url": url_hint}

    def hint_storage_bytes(self) -> int:
        if self._hints is None:
            return 0
        return sum(h.nbytes for h in self._hints.values())

    def search(self, text: str) -> SearchResult:
        """One private search using stored hints and fresh keys."""
        if self._hints is None:
            self.fetch_hints()
        engine = self.engine
        index = engine.index
        traffic = TrafficLog()
        channel = RpcChannel(traffic, engine.transport)

        # Fresh inner keys per query -- same single-use rule as tokens.
        rank_keys = index.ranking_scheme.gen_keys(self.rng)
        url_keys = index.url_scheme.gen_keys(self.rng)

        vec = engine.embed_query(text)
        gain = self.metadata.quantization_gain
        quantized = quantize(vec * gain, index.config.quantization())
        cluster = int(np.argmax(self.metadata.centroids @ vec))

        rank_query = self.ranking.build_query(
            rank_keys, quantized, cluster, self.rng
        )
        body = channel.call(
            "ranking",
            "ranking",
            "answer",
            # tiptoe-lint: disable=taint-wire -- the ciphertext IS the wire format; semantic security (decision-LWE) covers what it reveals
            wire.encode_ciphertext(rank_query.ciphertext),
        )
        values, q_bits = wire.decode_answer(body)
        # Classic decryption: subtract H s directly from the answer.
        scores = index.ranking_scheme.inner.decrypt_centered(
            rank_keys.inner, self._hints["ranking"], values
        )
        real_rows = int(self.metadata.cluster_sizes[cluster])
        scores = scores[:real_rows]
        order = np.argsort(-scores, kind="stable")
        top_rows = [int(r) for r in order[: self.metadata.results_per_query]]

        offset = int(self.metadata.cluster_offsets[cluster])
        best_storage = engine.storage_position(offset + top_rows[0])
        batch_index = self.url_client.batch_of_position(best_storage)
        url_query = self.url_client.build_query(url_keys, batch_index, self.rng)
        body = channel.call(
            "url",
            "url",
            "answer",
            # tiptoe-lint: disable=taint-wire -- the ciphertext IS the wire format; semantic security (decision-LWE) covers what it reveals
            wire.encode_ciphertext(url_query.ciphertext),
        )
        values, q_bits = wire.decode_answer(body)
        digits = index.url_scheme.inner.decrypt(
            url_keys.inner, self._hints["url"], values
        )
        payload = index.url_db.decode_column(digits)
        from repro.corpus.urls import UrlBatch

        batch_urls = UrlBatch(payload=payload, doc_ids=()).decompress()

        results = []
        for row in top_rows:
            position = offset + row
            storage = engine.storage_position(position)
            results.append(
                ScoredResult(
                    position=position,
                    cluster=cluster,
                    row=row,
                    score=int(scores[row]),
                    url=batch_urls.get(storage) or None,
                )
            )
        return SearchResult(
            query=text,
            cluster=cluster,
            results=results,
            traffic=traffic,
            perceived_latency=traffic.simulated_latency(
                engine.link, ["ranking", "url"]
            ),
            token_latency=0.0,
        )
