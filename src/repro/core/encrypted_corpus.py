"""Private search over client-encrypted documents (SS9).

The client processes its own corpus exactly as Tiptoe's batch jobs
process a public one -- embed, cluster, keep the centroids -- but
uploads *encrypted* embeddings to the server.  At query time the
ranking step must multiply the client's encrypted query with each
encrypted document vector, which needs the degree-two scheme of
:mod:`repro.homenc.degree2`.  The server learns neither the query nor
anything about the corpus beyond its size; the client learns the
scores for its chosen cluster.

URLs (or any per-document metadata) are stored encrypted under a
stream cipher derived from the client key and fetched exactly as in
the public pipeline (PIR hides *which*, encryption hides *what*).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterIndex
from repro.embeddings.quantize import QuantizationConfig, quantize
from repro.homenc.degree2 import (
    Degree2Ciphertext,
    Degree2Params,
    Degree2Scheme,
)


def _keystream(key: bytes, index: int, length: int) -> bytes:
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.blake2b(
            key + index.to_bytes(4, "little") + counter.to_bytes(4, "little"),
            digest_size=64,
        ).digest()
        counter += 1
    return out[:length]


def seal_metadata(key: bytes, index: int, plaintext: bytes) -> bytes:
    """Encrypt one metadata record with a per-record keystream."""
    stream = _keystream(key, index, len(plaintext))
    return bytes(x ^ y for x, y in zip(plaintext, stream))


def open_metadata(key: bytes, index: int, sealed: bytes) -> bytes:
    return seal_metadata(key, index, sealed)  # XOR is its own inverse


@dataclass
class EncryptedCorpusServer:
    """The oblivious server: encrypted vectors + sealed metadata."""

    encrypted_docs: list[Degree2Ciphertext]
    sealed_metadata: list[bytes]

    @property
    def num_docs(self) -> int:
        return len(self.encrypted_docs)

    def score_cluster(
        self, query: Degree2Ciphertext, doc_ids: list[int]
    ) -> list:
        """Degree-two inner products for the requested documents.

        In the full protocol the client hides the cluster with the
        same augmented-vector trick as SS4 (padded to every cluster);
        this reference implementation exposes the per-cluster
        computation the paper describes, scoring the listed rows.
        """
        return [
            Degree2Scheme.inner_product(query, self.encrypted_docs[d])
            for d in doc_ids
        ]


@dataclass
class EncryptedCorpusClient:
    """The data owner: keys, centroids, and the local batch jobs."""

    scheme: Degree2Scheme
    secret: np.ndarray
    metadata_key: bytes
    clusters: ClusterIndex
    quantization: QuantizationConfig

    @classmethod
    def build(
        cls,
        embeddings: np.ndarray,
        metadata: list[bytes],
        target_cluster_size: int,
        rng: np.random.Generator,
        params: Degree2Params | None = None,
        precision_bits: int = 4,
    ) -> tuple["EncryptedCorpusClient", EncryptedCorpusServer]:
        """Run the client-side batch jobs and produce the server state."""
        if len(metadata) != embeddings.shape[0]:
            raise ValueError("need one metadata record per document")
        scheme = Degree2Scheme(params)
        secret = scheme.gen_secret(rng)
        metadata_key = rng.bytes(32)
        quant_cfg = QuantizationConfig(precision_bits=precision_bits)
        clusters = ClusterIndex.build(
            embeddings,
            target_cluster_size=target_cluster_size,
            rng=rng,
            boundary_fraction=0.0,
        )
        quantized = quantize(embeddings, quant_cfg)
        encrypted = [
            scheme.encrypt_vector(secret, quantized[i], rng)
            for i in range(embeddings.shape[0])
        ]
        sealed = [
            seal_metadata(metadata_key, i, record)
            for i, record in enumerate(metadata)
        ]
        client = cls(
            scheme=scheme,
            secret=secret,
            metadata_key=metadata_key,
            clusters=clusters,
            quantization=quant_cfg,
        )
        server = EncryptedCorpusServer(
            encrypted_docs=encrypted, sealed_metadata=sealed
        )
        return client, server

    def search(
        self,
        server: EncryptedCorpusServer,
        query_embedding: np.ndarray,
        rng: np.random.Generator,
        k: int = 5,
    ) -> list[tuple[int, int, bytes]]:
        """One private search: (doc_id, score, metadata) best-first."""
        cluster = self.clusters.nearest_cluster(query_embedding)
        doc_ids = self.clusters.assignments[cluster]
        q = quantize(query_embedding, self.quantization)
        enc_query = self.scheme.encrypt_vector(self.secret, q, rng)
        answers = server.score_cluster(enc_query, doc_ids)
        scored = [
            (doc, self.scheme.decrypt_score(self.secret, ans))
            for doc, ans in zip(doc_ids, answers)
        ]
        scored.sort(key=lambda pair: -pair[1])
        return [
            (doc, score, open_metadata(
                self.metadata_key, doc, server.sealed_metadata[doc]
            ))
            for doc, score in scored[:k]
        ]
