"""Compute-cost accounting in word operations and core-seconds.

The paper reports server compute in core-seconds of r5.xlarge vCPUs
(SS8.1) and models the crypto cost as ~2 word operations per matrix
entry (SS6.1).  The simulation counts word operations exactly and
converts with a calibrated throughput constant; benches can substitute
a machine-measured constant.

Calibration of the default: Table 7 reports ranking throughput of 2.9
queries/s on 160 vCPUs over 364M documents with 192-dim embeddings and
1.2x duplication -- ~1.7e11 word ops in 55 core-seconds, i.e. ~3.0e9
word-ops per core-second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Word-ops per core-second implied by the paper's reported numbers.
PAPER_WORD_OPS_PER_CORE_SECOND = 3.0e9


@dataclass
class CostLedger:
    """Accumulates per-component server work for one query or job."""

    word_ops: dict[str, int] = field(default_factory=dict)

    def add(self, component: str, ops: int) -> None:
        if ops < 0:
            raise ValueError("operation counts cannot be negative")
        self.word_ops[component] = self.word_ops.get(component, 0) + int(ops)

    def total_ops(self, component: str | None = None) -> int:
        if component is not None:
            return self.word_ops.get(component, 0)
        return sum(self.word_ops.values())

    def core_seconds(
        self,
        component: str | None = None,
        ops_per_core_second: float = PAPER_WORD_OPS_PER_CORE_SECOND,
    ) -> float:
        """Convert counted ops to core-seconds at a given throughput."""
        if ops_per_core_second <= 0:
            raise ValueError("throughput must be positive")
        return self.total_ops(component) / ops_per_core_second

    def merge(self, other: "CostLedger") -> None:
        for component, ops in other.word_ops.items():
            self.add(component, ops)
