"""The multi-process fleet plane: router, shards, replicas, swaps.

Tiptoe's deployment (SOSP 2023, SS6/SS8) is a *fleet*: the ranking
scan shards across many machines, each shard runs replicated for
fault-tolerance, and a coordinator fans every query out and folds the
partial answers back together.  This module is that coordinator for
the multi-process reproduction:

* :class:`FleetRouter` is the front door.  It is a normal
  :class:`~repro.net.service.Service` (name ``fleet``) hosted by a
  :class:`~repro.net.tcp.ServerRunner` whose *fallback* handler is
  :meth:`FleetRouter.route` -- so ``ranking`` / ``url`` / ``token`` /
  ``hint`` requests that reach the front door are proxied to worker
  processes, while the ``fleet`` endpoint itself serves health and the
  swap protocol.
* Ranking requests fan out to every shard of one index *generation*;
  each shard worker holds only its cluster-column slice (see
  :meth:`~repro.core.cluster_runtime.ShardedRankingService.build_shard`)
  and returns a partial answer.  The router sums partials with exact
  mod-2^k arithmetic, so a fleet answer is bit-identical to the
  single-process coordinator on the same index.
* URL / token / hint requests are whole on every worker; the router
  round-robins them across live replicas.
* Replica failover: a retryable transport failure marks the replica,
  the same byte-identical request is resent to the next replica
  (``fleet.failovers``), and a background prober revives replicas whose
  ``_meta``/``health`` answers again.  Replica choice depends only on
  liveness and arrival order -- never on the (encrypted) query -- so
  failover leaks nothing query-dependent.
* Admission control: at most ``max_inflight`` proxied requests at
  once; excess load is shed with :class:`FleetOverloaded`
  (``fleet.shed``) instead of queueing without bound.
* Rolling swap: :meth:`add_generation` registers a new index
  generation's workers, :meth:`warm_generation` waits for them to
  answer health one replica at a time, :meth:`cut_over` atomically
  redirects *untagged* traffic, and :meth:`retire_generation` drains
  and disconnects the old fleet.  Sessions pinned by
  ``service@generation`` wire names (see
  :class:`~repro.net.transport.TaggedTransport`) keep answering from
  their own generation throughout, so no query ever mixes indexes.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import Callable

from repro.lwe import modular
from repro.net import rpc, wire
from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service
from repro.net.tcp import PooledSocketTransport
from repro.net.transport import (
    RETRYABLE_ERRORS,
    RemoteCallError,
    Transport,
    TransportError,
    split_service,
)
from repro.obs import runtime as obs
from repro.obs.clock import MONOTONIC, Clock

logger = logging.getLogger(__name__)


class FleetError(RuntimeError):
    """Base class for fleet-plane failures."""


class FleetOverloaded(FleetError):
    """Admission control shed the request; retry after backoff."""


class NoLiveReplica(FleetError):
    """Every replica of a required shard failed the request."""


class UnknownGeneration(FleetError):
    """The request names an index generation this fleet does not hold."""


# -- fleet topology -----------------------------------------------------------


@dataclass(frozen=True)
class ReplicaSpec:
    """One worker process's listening address."""

    host: str
    port: int

    def to_json(self) -> dict:
        return {"host": self.host, "port": self.port}

    @classmethod
    def from_json(cls, data: dict) -> "ReplicaSpec":
        return cls(host=str(data["host"]), port=int(data["port"]))


@dataclass(frozen=True)
class ShardSpec:
    """One ranking shard and the replicas that serve it."""

    shard: int
    replicas: tuple[ReplicaSpec, ...]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError(f"shard {self.shard} has no replicas")

    def to_json(self) -> dict:
        return {
            "shard": self.shard,
            "replicas": [r.to_json() for r in self.replicas],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardSpec":
        return cls(
            shard=int(data["shard"]),
            replicas=tuple(
                ReplicaSpec.from_json(r) for r in data["replicas"]
            ),
        )


@dataclass(frozen=True)
class GenerationSpec:
    """One index generation: its tag and the worker fleet serving it.

    The ``generation`` tag is the 8-hex artifact digest prefix from
    :func:`repro.core.artifacts.generation_tag` -- the identity the
    swap protocol and session pinning key on.
    """

    generation: str
    shards: tuple[ShardSpec, ...]
    artifact: str | None = None

    def __post_init__(self) -> None:
        if not self.generation:
            raise ValueError("a generation needs a non-empty tag")
        if not self.shards:
            raise ValueError("a generation needs at least one shard")
        seen = [s.shard for s in self.shards]
        if seen != list(range(len(seen))):
            raise ValueError(
                f"shards must be 0..{len(seen) - 1} in order, got {seen}"
            )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def to_json(self) -> dict:
        data = {
            "generation": self.generation,
            "shards": [s.to_json() for s in self.shards],
        }
        if self.artifact is not None:
            data["artifact"] = self.artifact
        return data

    @classmethod
    def from_json(cls, data: dict) -> "GenerationSpec":
        return cls(
            generation=str(data["generation"]),
            shards=tuple(ShardSpec.from_json(s) for s in data["shards"]),
            artifact=data.get("artifact"),
        )


@dataclass(frozen=True)
class FleetConfig:
    """Router knobs: admission, failover, and health cadence."""

    #: Maximum concurrently proxied requests before shedding.
    max_inflight: int = 64
    #: Seconds between background health probes of down replicas.
    health_interval_s: float = 0.25
    #: Consecutive request failures before a replica is marked down.
    replica_failure_budget: int = 1
    #: Per-call deadline for requests proxied to workers.
    rpc_timeout_s: float = 5.0
    #: Socket-pool size per replica (concurrent requests it absorbs).
    max_connections_per_replica: int = 8

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.health_interval_s <= 0:
            raise ValueError("health interval must be positive")
        if self.replica_failure_budget < 1:
            raise ValueError("failure budget must be at least 1")
        if self.rpc_timeout_s <= 0:
            raise ValueError("rpc timeout must be positive")
        if self.max_connections_per_replica < 1:
            raise ValueError("need at least one connection per replica")


@dataclass
class FleetStats:
    """Always-on routing counters (obs metrics need obs enabled)."""

    routed: int = 0
    shed: int = 0
    failovers: int = 0
    swaps: int = 0

    def to_json(self) -> dict:
        return {
            "routed": self.routed,
            "shed": self.shed,
            "failovers": self.failovers,
            "swaps": self.swaps,
        }


# -- one upstream worker ------------------------------------------------------


class ReplicaClient:
    """The router's view of one worker process.

    Owns a bounded connection pool to the worker and the replica's
    liveness state: ``mark_failure`` counts consecutive failures and
    takes the replica out of rotation once the budget is spent;
    ``mark_success`` (or a successful background probe) puts it back.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        *,
        failure_budget: int = 1,
        timeout: float = 5.0,
        max_connections: int = 8,
        transport_factory: Callable[[ReplicaSpec], Transport] | None = None,
    ):
        self.spec = spec
        self.failure_budget = failure_budget
        self.transport: Transport = (
            transport_factory(spec)
            if transport_factory is not None
            else PooledSocketTransport(
                spec.host,
                spec.port,
                timeout=timeout,
                max_connections=max_connections,
            )
        )
        self._lock = threading.Lock()
        self._live = True  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock

    @property
    def live(self) -> bool:
        with self._lock:
            return self._live

    def mark_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._live = True

    def mark_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_budget:
                self._live = False

    def request(
        self, service: str, request: bytes, *, timeout: float | None = None
    ) -> bytes:
        return self.transport.request(service, request, timeout=timeout)

    def probe(self, timeout: float | None = None) -> dict:
        """One ``_meta``/``health`` round trip; raises on failure."""
        response = self.request(
            "_meta", rpc.frame("health", b""), timeout=timeout
        )
        _, body = rpc.unframe(response)
        return json.loads(body.decode())

    def health_snapshot(self) -> dict:
        with self._lock:
            return {
                "host": self.spec.host,
                "port": self.spec.port,
                "live": self._live,
                "consecutive_failures": self._consecutive_failures,
            }

    def close(self) -> None:
        self.transport.close()


class _Generation:
    """Router-internal state for one registered generation."""

    def __init__(self, spec: GenerationSpec, clients: list[list[ReplicaClient]]):
        self.spec = spec
        #: ``clients[shard]`` is that shard's replica rotation.
        self.clients = clients
        # The three counters below are all guarded by the owning
        # router's lock; _Generation itself holds no lock.
        self.inflight = 0
        self.retiring = False
        self.rr = 0

    def all_clients(self) -> list[ReplicaClient]:
        return [c for shard in self.clients for c in shard]


# -- the front door -----------------------------------------------------------


class FleetRouter(Service):
    """Admission control, shard fan-out, failover, and rolling swap.

    Deploy as ``ServerRunner([router], fallback=router.route)``: the
    runner's fallback hands every frame addressed to an unregistered
    service name -- which is exactly the worker-plane traffic,
    including ``@generation``-tagged names -- to :meth:`route`.

    Thread-safety: the router lock only ever guards topology lookups
    and counters; all worker I/O happens outside it, so slow replicas
    never serialize unrelated requests.
    """

    service_name = "fleet"

    #: Ranking methods that fan out to every shard and aggregate.
    _FANOUT_METHODS = frozenset({"answer", "answer_batch"})

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        transport_factory: Callable[[ReplicaSpec], Transport] | None = None,
        clock: Clock | None = None,
    ):
        self.config = config if config is not None else FleetConfig()
        self.stats = FleetStats()
        self._transport_factory = transport_factory
        self._clock = clock if clock is not None else MONOTONIC
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._generations: dict[str, _Generation] = {}  # guarded-by: _lock
        self._current: str | None = None  # guarded-by: _lock
        self._inflight = 0  # guarded-by: _lock
        self._pool: ThreadPoolExecutor | None = None
        self._prober: threading.Thread | None = None
        self._stop = threading.Event()

    # -- the fleet control endpoint -----------------------------------------

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("health", self._handle_health)
        endpoint.register("generations", self._handle_generations)
        endpoint.register("add_generation", self._handle_add_generation)
        endpoint.register("cut_over", self._handle_cut_over)
        endpoint.register("retire", self._handle_retire)

    def _handle_health(self, payload: bytes) -> bytes:
        return json.dumps(self.health(), sort_keys=True).encode()

    def _handle_generations(self, payload: bytes) -> bytes:
        with self._lock:
            data = {
                "current": self._current,
                "generations": [
                    gen.spec.to_json() for gen in self._generations.values()
                ],
            }
        return json.dumps(data, sort_keys=True).encode()

    def _handle_add_generation(self, payload: bytes) -> bytes:
        spec = GenerationSpec.from_json(json.loads(payload.decode()))
        self.add_generation(spec)
        self.warm_generation(spec.generation)
        return json.dumps({"generation": spec.generation}).encode()

    def _handle_cut_over(self, payload: bytes) -> bytes:
        generation = json.loads(payload.decode())["generation"]
        self.cut_over(generation)
        return json.dumps({"current": generation}).encode()

    def _handle_retire(self, payload: bytes) -> bytes:
        generation = json.loads(payload.decode())["generation"]
        self.retire_generation(generation)
        return json.dumps({"retired": generation}).encode()

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=16, thread_name_prefix="fleet-fanout"
            )
        if self._prober is None:
            self._stop.clear()
            self._prober = threading.Thread(
                target=self._probe_loop, name="fleet-prober", daemon=True
            )
            self._prober.start()

    def close(self) -> None:
        self._stop.set()
        prober, self._prober = self._prober, None
        if prober is not None:
            prober.join(timeout=5.0)
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._lock:
            generations = list(self._generations.values())
            self._generations.clear()
            self._current = None
        for gen in generations:
            for client in gen.all_clients():
                client.close()

    def health(self) -> dict:
        with self._lock:
            generations = dict(self._generations)
            current = self._current
            inflight = self._inflight
        shards = {}
        for tag, gen in generations.items():
            shards[tag] = [
                {
                    "shard": spec.shard,
                    "replicas": [c.health_snapshot() for c in clients],
                    "live": sum(1 for c in clients if c.live),
                }
                for spec, clients in zip(gen.spec.shards, gen.clients)
            ]
        return {
            "service": self.service_name,
            "status": "ok" if current is not None else "empty",
            "current": current,
            "inflight": inflight,
            "max_inflight": self.config.max_inflight,
            "stats": self.stats.to_json(),
            "generations": shards,
        }

    # -- swap protocol -------------------------------------------------------

    def add_generation(
        self, spec: GenerationSpec, *, make_current: bool = False
    ) -> None:
        """Register a generation's worker fleet (no traffic yet unless
        ``make_current`` or the router was empty)."""
        clients = [
            [
                ReplicaClient(
                    replica,
                    failure_budget=self.config.replica_failure_budget,
                    timeout=self.config.rpc_timeout_s,
                    max_connections=self.config.max_connections_per_replica,
                    transport_factory=self._transport_factory,
                )
                for replica in shard.replicas
            ]
            for shard in spec.shards
        ]
        with self._lock:
            if spec.generation in self._generations:
                raise FleetError(
                    f"generation {spec.generation!r} already registered"
                )
            self._generations[spec.generation] = _Generation(spec, clients)
            if make_current or self._current is None:
                self._current = spec.generation
        logger.info(
            "fleet: added generation %s (%d shards)",
            spec.generation,
            spec.num_shards,
        )

    def warm_generation(
        self, generation: str, *, timeout_s: float = 30.0
    ) -> None:
        """Wait until every replica of a generation answers health.

        Replicas warm *one at a time* (the rolling half of the rolling
        swap): each must answer its ``_meta``/``health`` probe before
        the next is touched, so a cut-over never lands on a fleet whose
        workers are still loading the index.
        """
        gen = self._generation_or_raise(generation)
        deadline = self._clock() + timeout_s
        for shard_clients in gen.clients:
            for client in shard_clients:
                self._warm_replica(client, deadline)
        logger.info("fleet: generation %s warm", generation)

    def _warm_replica(self, client: ReplicaClient, deadline: float) -> None:
        while True:
            try:
                client.probe(timeout=self.config.rpc_timeout_s)
            except TransportError:
                if self._clock() >= deadline:
                    raise FleetError(
                        f"replica {client.spec.host}:{client.spec.port}"
                        " did not become healthy before the warm deadline"
                    )
                time.sleep(min(0.05, self.config.health_interval_s))
                continue
            client.mark_success()
            return

    def cut_over(self, generation: str) -> None:
        """Atomically point untagged traffic at ``generation``.

        In-flight and tagged requests keep their own generation; only
        the default for *new* untagged requests changes, so no query
        ever mixes answers across indexes.
        """
        with self._lock:
            if generation not in self._generations:
                raise UnknownGeneration(
                    f"cannot cut over to unknown generation {generation!r}"
                )
            self._current = generation
            self.stats.swaps += 1
        obs.count("fleet.swaps")
        logger.info("fleet: cut over to generation %s", generation)

    def retire_generation(
        self, generation: str, *, drain_timeout_s: float = 30.0
    ) -> None:
        """Drain a generation's in-flight requests, then disconnect it."""
        deadline = self._clock() + drain_timeout_s
        with self._drained:
            gen = self._generations.get(generation)
            if gen is None:
                raise UnknownGeneration(
                    f"cannot retire unknown generation {generation!r}"
                )
            if self._current == generation:
                raise FleetError(
                    f"generation {generation!r} is current; cut over first"
                )
            gen.retiring = True
            while gen.inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise FleetError(
                        f"generation {generation!r} did not drain"
                        f" within {drain_timeout_s:.1f}s"
                        f" ({gen.inflight} requests in flight)"
                    )
                self._drained.wait(remaining)
            del self._generations[generation]
        for client in gen.all_clients():
            client.close()
        logger.info("fleet: retired generation %s", generation)

    # -- request routing -----------------------------------------------------

    def route(self, service: str, request: bytes) -> bytes:
        """The :class:`~repro.net.tcp.ServerRunner` fallback handler.

        ``service`` is the wire name (possibly ``@generation``-tagged);
        ``request`` is the framed RPC request, forwarded byte-identical
        to workers.  Raising here becomes an error frame to the client.
        """
        name, tag = split_service(service)
        with self._lock:
            generation = tag if tag is not None else self._current
            gen = (
                self._generations.get(generation)
                if generation is not None
                else None
            )
            if gen is None or gen.retiring:
                raise UnknownGeneration(
                    f"no generation serves {service!r}"
                    f" (current: {self._current!r})"
                )
            if self._inflight >= self.config.max_inflight:
                self.stats.shed += 1
                obs.count("fleet.shed")
                raise FleetOverloaded(
                    f"fleet at max inflight ({self.config.max_inflight});"
                    " request shed"
                )
            self._inflight += 1
            gen.inflight += 1
            self.stats.routed += 1
            rr = gen.rr
            gen.rr += 1
        try:
            if name == "ranking":
                method, _ = rpc.unframe(request)
                if method in self._FANOUT_METHODS:
                    return self._route_ranking(gen, method, request)
            return self._route_any(gen, name, request, rr)
        finally:
            with self._drained:
                self._inflight -= 1
                gen.inflight -= 1
                if gen.inflight == 0:
                    self._drained.notify_all()

    def _route_ranking(
        self, gen: _Generation, method: str, request: bytes
    ) -> bytes:
        """Fan one ranking request out to every shard and fold the
        partial answers: wraparound (mod 2^k) addition is associative
        and commutative, so the folded sum is bit-identical to the
        single-process coordinator's."""
        pool = self._pool
        num_shards = len(gen.clients)
        with obs.span("fleet.fanout", shards=num_shards, method=method):
            if pool is not None and num_shards > 1:
                futures = [
                    pool.submit(
                        self._call_shard, gen, shard, "ranking", request
                    )
                    for shard in range(num_shards)
                ]
                responses = [f.result() for f in futures]
            else:
                responses = [
                    self._call_shard(gen, shard, "ranking", request)
                    for shard in range(num_shards)
                ]
        return self._fold_answers(method, responses)

    def _fold_answers(self, method: str, responses: list[bytes]) -> bytes:
        if method == "answer":
            total = None
            q_bits = 0
            for response in responses:
                _, body = rpc.unframe(response)
                values, q_bits = wire.decode_answer(body)
                total = (
                    values
                    if total is None
                    else modular.add(total, values, q_bits)
                )
            return rpc.frame(method, wire.encode_answer(total, q_bits))
        total = None
        q_bits = 0
        for response in responses:
            _, body = rpc.unframe(response)
            stacked, q_bits = wire.decode_batch_answer(body)
            total = (
                stacked
                if total is None
                else modular.add(total, stacked, q_bits)
            )
        return rpc.frame(
            method,
            wire.encode_batch_answer(SimpleNamespace(stacked=total), q_bits),
        )

    def _route_any(
        self, gen: _Generation, service: str, request: bytes, rr: int
    ) -> bytes:
        """Round-robin a whole-index request (url/token/hint/_meta --
        and non-fanout ranking methods, which live on shard 0)."""
        if service == "ranking":
            candidates = list(gen.clients[0])
        else:
            candidates = gen.all_clients()
        start = rr % len(candidates)
        rotation = candidates[start:] + candidates[:start]
        return self._try_replicas(rotation, service, request)

    def _call_shard(
        self, gen: _Generation, shard: int, service: str, request: bytes
    ) -> bytes:
        return self._try_replicas(
            list(gen.clients[shard]), service, request, shard=shard
        )

    def _try_replicas(
        self,
        replicas: list[ReplicaClient],
        service: str,
        request: bytes,
        shard: int | None = None,
    ) -> bytes:
        """One request against a replica rotation with failover.

        Live replicas are tried first; if all are marked down, every
        replica gets a last-resort attempt anyway (a prober may simply
        not have revived one yet).  Each retry resends the *same*
        bytes -- the request is ciphertext of query-independent size,
        so which replica answers reveals nothing about the query.
        """
        ordered = [r for r in replicas if r.live] or list(replicas)
        last: TransportError | None = None
        for attempt, replica in enumerate(ordered):
            try:
                response = replica.request(
                    service, request, timeout=self.config.rpc_timeout_s
                )
            except RemoteCallError:
                # The worker's handler rejected the request; another
                # replica would deterministically do the same.
                replica.mark_success()
                raise
            except RETRYABLE_ERRORS as exc:
                last = exc
                replica.mark_failure()
                if attempt + 1 < len(ordered):
                    self._count_failover(shard)
                continue
            replica.mark_success()
            return response
        where = f"shard {shard}" if shard is not None else service
        raise NoLiveReplica(
            f"no replica of {where} answered"
            f" ({len(ordered)} tried): {last}"
        )

    def _count_failover(self, shard: int | None) -> None:
        with self._lock:
            self.stats.failovers += 1
        obs.count("fleet.failovers")
        logger.warning(
            "fleet: failover on %s",
            f"shard {shard}" if shard is not None else "replica rotation",
        )

    # -- background health probing -------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval_s):
            with self._lock:
                generations = list(self._generations.items())
            for tag, gen in generations:
                for spec, clients in zip(gen.spec.shards, gen.clients):
                    for client in clients:
                        if client.live:
                            continue
                        try:
                            client.probe(
                                timeout=self.config.health_interval_s
                            )
                        except TransportError:
                            continue
                        client.mark_success()
                        logger.info(
                            "fleet: replica %s:%d (gen %s shard %d) revived",
                            client.spec.host,
                            client.spec.port,
                            tag,
                            spec.shard,
                        )
                    obs.gauge(
                        f"fleet.shard{spec.shard}.live_replicas",
                        sum(1 for c in clients if c.live),
                    )

    def _generation_or_raise(self, generation: str) -> _Generation:
        with self._lock:
            gen = self._generations.get(generation)
        if gen is None:
            raise UnknownGeneration(f"unknown generation {generation!r}")
        return gen


# -- spawning worker processes ------------------------------------------------


class FleetLauncher:
    """Spawns and supervises one generation's worker processes.

    Each worker is ``python -m repro serve <artifact> --shard i
    --num-shards S --port 0``; the launcher parses the worker's
    ``serving on host:port`` hand-off line to learn the bound port and
    assembles the :class:`GenerationSpec` the router consumes.  Used by
    the ``serve-fleet`` CLI and the integration tests (which also use
    :meth:`kill_replica` for failover injection).
    """

    def __init__(
        self,
        artifact: str | Path,
        *,
        num_shards: int = 1,
        replicas_per_shard: int = 1,
        host: str = "127.0.0.1",
        python: str | None = None,
    ):
        if num_shards < 1 or replicas_per_shard < 1:
            raise ValueError("need at least one shard and one replica")
        self.artifact = Path(artifact)
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.host = host
        self.python = python if python is not None else sys.executable
        #: ``procs[shard][replica]`` once started.
        self.procs: list[list[subprocess.Popen]] = []
        self._spec: GenerationSpec | None = None

    def start(self) -> GenerationSpec:
        """Launch every worker and wait for each hand-off line."""
        if self.procs:
            raise FleetError("launcher already started")
        from repro.core import artifacts

        generation = artifacts.generation_tag(self.artifact)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        try:
            for shard in range(self.num_shards):
                row = []
                for _ in range(self.replicas_per_shard):
                    proc = subprocess.Popen(
                        [
                            self.python,
                            "-m",
                            "repro",
                            "serve",
                            str(self.artifact),
                            "--host",
                            self.host,
                            "--port",
                            "0",
                            "--shard",
                            str(shard),
                            "--num-shards",
                            str(self.num_shards),
                        ],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.DEVNULL,
                        text=True,
                    )
                    row.append(proc)
                self.procs.append(row)
            spec_shards = []
            for shard, row in enumerate(self.procs):
                addresses = []
                for proc in row:
                    addresses.append(self._read_address(proc))
                spec_shards.append(
                    ShardSpec(shard=shard, replicas=tuple(addresses))
                )
        except Exception:
            self.stop()
            raise
        self._spec = GenerationSpec(
            generation=generation,
            shards=tuple(spec_shards),
            artifact=str(self.artifact),
        )
        return self._spec

    def _read_address(self, proc: subprocess.Popen) -> ReplicaSpec:
        line = proc.stdout.readline().strip()
        if not line.startswith("serving on "):
            raise FleetError(
                f"worker did not hand off (got {line!r});"
                f" exit code {proc.poll()}"
            )
        host, port = line[len("serving on ") :].rsplit(":", 1)
        return ReplicaSpec(host=host, port=int(port))

    @property
    def spec(self) -> GenerationSpec:
        if self._spec is None:
            raise FleetError("launcher is not started")
        return self._spec

    def kill_replica(self, shard: int, replica: int) -> None:
        """Hard-kill one worker (failover injection for tests)."""
        proc = self.procs[shard][replica]
        proc.kill()
        proc.wait()

    def stop(self) -> None:
        """Terminate every worker.  Idempotent."""
        for row in self.procs:
            for proc in row:
                if proc.poll() is None:
                    proc.terminate()
        for row in self.procs:
            for proc in row:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                if proc.stdout is not None:
                    proc.stdout.close()
        self.procs = []
        self._spec = None

    def __enter__(self) -> "FleetLauncher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
