"""Deployment configuration for a Tiptoe instance."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.embeddings.quantize import QuantizationConfig
from repro.lwe.params import SecurityLevel


@dataclass(frozen=True)
class TiptoeConfig:
    """Everything the batch jobs need to build an index.

    Defaults are sized for fast end-to-end tests; the paper-scale
    analytic model lives in :mod:`repro.evalx.costmodel` and does not
    require building an index of that size.
    """

    #: Raw embedding dimension (the paper: 768 for text).
    embedding_dim: int = 24
    #: PCA-reduced dimension; None disables PCA (the paper: 192).
    pca_dim: int | None = 12
    #: Fixed-precision bits for quantized embeddings (the paper: 4).
    precision_bits: int = 4
    #: Target documents per cluster; None picks ~sqrt(N).
    target_cluster_size: int | None = None
    #: Fraction of documents assigned to two clusters (the paper: 0.2).
    boundary_fraction: float = 0.2
    #: URLs per compressed batch (the paper: ~880).
    url_batch_size: int = 40
    #: Group URLs by cluster content (Fig. 9 step 4)?
    group_urls_by_content: bool = True
    #: Lattice security level (TOY for tests, PAPER_128 for benches).
    security: SecurityLevel = SecurityLevel.TOY
    #: Number of ranking worker shards.
    num_workers: int = 4
    #: How many top URLs a search returns (the paper: 100).
    results_per_query: int = 100
    #: Sample size for k-means training; None uses the full corpus.
    cluster_sample_size: int | None = None
    #: Per-call RPC deadline in seconds (socket transport only).
    rpc_timeout_s: float = 5.0
    #: Total tries per RPC (first attempt + retries) on transient errors.
    rpc_max_attempts: int = 3
    #: Wait before the first retry, in seconds.
    rpc_backoff_base_s: float = 0.05
    #: Growth factor between consecutive retry waits.
    rpc_backoff_multiplier: float = 2.0
    #: Ceiling on any single retry wait, in seconds.
    rpc_backoff_max_s: float = 1.0
    #: Largest cross-query batch the ranking scheduler coalesces; 1
    #: disables the admission queue (every query runs immediately).
    max_batch_size: int = 1
    #: How long the scheduler holds an under-full batch open waiting
    #: for more queries, in milliseconds.
    max_batch_wait_ms: float = 2.0
    #: Write the precompute sidecar (``precompute.npz``) when saving an
    #: index, and use it (validated by digest) when loading one.
    precompute_sidecar: bool = False
    #: Target depth of the serving-side pre-mint token pool; 0 disables
    #: the pool (tokens mint on demand, the lazy path).
    token_pool_depth: int = 0
    #: How many tokens one pool refill mints together (`mint_many`
    #: amortizes the hint NTTs across the batch).
    token_pool_batch: int = 4
    #: Target depth of the client-side async token prefetcher; 0
    #: disables it (``search`` mints inline when out of tokens).
    token_prefetch_depth: int = 0
    #: Kernel backend executing the hot GEMMs: "auto" (tuned sidecar
    #: plan if present, else reference), "reference", "multiprocess",
    #: "numba", or "cnative" -- the cffi-compiled GIL-releasing C
    #: kernel, which degrades to reference on compiler-less hosts
    #: (see repro.lwe.backends).
    kernel_backend: str = "auto"
    #: Run the kernel autotuner when writing the precompute sidecar,
    #: persisting the winning KernelPlan for cold-start use.
    kernel_autotune: bool = False

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError("embedding dimension must be positive")
        if self.pca_dim is not None and not (
            1 <= self.pca_dim <= self.embedding_dim
        ):
            raise ValueError("pca_dim must be in [1, embedding_dim]")
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.url_batch_size < 1:
            raise ValueError("URL batch size must be positive")
        if self.rpc_timeout_s <= 0:
            raise ValueError("RPC timeout must be positive")
        if self.rpc_max_attempts < 1:
            raise ValueError("need at least one RPC attempt")
        if self.max_batch_size < 1:
            raise ValueError("max batch size must be at least 1")
        if self.max_batch_wait_ms < 0:
            raise ValueError("max batch wait must be non-negative")
        if self.token_pool_depth < 0:
            raise ValueError("token pool depth must be non-negative")
        if self.token_pool_batch < 1:
            raise ValueError("token pool batch must be at least 1")
        if self.token_prefetch_depth < 0:
            raise ValueError("token prefetch depth must be non-negative")
        if not self.kernel_backend:
            raise ValueError(
                'kernel_backend must name a backend (or "auto")'
            )

    @property
    def effective_dim(self) -> int:
        """The dimension embeddings have when they reach the protocol."""
        return self.pca_dim if self.pca_dim is not None else self.embedding_dim

    def quantization(self) -> QuantizationConfig:
        return QuantizationConfig(precision_bits=self.precision_bits)

    def ranking_plaintext_modulus(self) -> int:
        """Smallest power-of-two p with no inner-product wraparound.

        Appendix B.1 / C: p / 2 > d * 2^(2b); the paper lands on 2^17
        for d = 192 at 4 bits.
        """
        needed = self.quantization().min_plaintext_modulus(self.effective_dim)
        return 1 << math.ceil(math.log2(needed))

    def cluster_size_for(self, num_docs: int) -> int:
        """Target cluster size: explicit, or the sqrt(N) rule (SS4.2)."""
        if self.target_cluster_size is not None:
            return self.target_cluster_size
        return max(2, int(math.isqrt(num_docs)))

    def retry_policy(self):
        """The RPC retry schedule these knobs describe."""
        from repro.net.transport import RetryPolicy

        return RetryPolicy(
            max_attempts=self.rpc_max_attempts,
            base_backoff_s=self.rpc_backoff_base_s,
            backoff_multiplier=self.rpc_backoff_multiplier,
            max_backoff_s=self.rpc_backoff_max_s,
        )

    def with_(self, **changes) -> "TiptoeConfig":
        """A modified copy (used heavily by the ablation harness)."""
        return replace(self, **changes)
