"""The ahead-of-time plane's serving half: pre-minted token pools.

SS6.3 moves the expensive hint-product evaluation off the
latency-critical path; this module moves it off the *request* path
too.  A :class:`TokenPool` keeps a bounded stockpile of fully-minted
:class:`~repro.homenc.token.QueryToken` objects warm: a daemon refill
worker tops the pool up to its target depth in ``mint_many`` batches
(amortizing the hint NTTs across the batch), and takers pop in O(1).

The pool is generic over *how* a token is minted -- it is handed a
``mint_fn(count) -> list[QueryToken]`` closure, which in the engine
runs the full keygen / upload / evaluate / decrypt flow over the real
wire path.  Pre-minted tokens therefore hold client secret keys in
memory until taken (see SECURITY.md); ``close`` drains the pool and
discards them.

Observability: ``token_pool.depth`` (gauge), ``token_pool.refills`` /
``token_pool.minted`` (counters), ``token_pool.refill_seconds``
(histogram) -- all no-ops when :mod:`repro.obs` is disabled.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Callable, Sequence

from repro.obs import runtime as obs

logger = logging.getLogger(__name__)


class TokenPool:
    """A bounded pool of pre-minted query tokens with a refill worker.

    ``start`` spawns the worker; it mints whenever the pool is below
    ``depth`` and sleeps on a condition variable otherwise, so a full
    pool costs nothing.  ``take_nowait`` / ``take`` pop from the left
    of a deque (O(1)); every pop wakes the worker.  ``close`` stops the
    worker, waits out any in-flight mint, and discards pooled tokens
    -- they hold secret keys, so they never outlive the pool.
    """

    def __init__(
        self,
        mint_fn: Callable[[int], Sequence],
        depth: int,
        batch: int = 4,
    ):
        if depth < 1:
            raise ValueError("pool depth must be at least 1")
        if batch < 1:
            raise ValueError("refill batch must be at least 1")
        self._mint_fn = mint_fn
        self.depth = depth
        self.batch = batch
        self._tokens: deque = deque()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._need = threading.Condition(self._lock)  # wakes the worker
        self._avail = threading.Condition(self._lock)  # wakes takers
        self._running = False  # guarded-by: _lock
        self._failed = False  # guarded-by: _lock
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        with self._lock:
            return self._running

    def start(self) -> None:
        """Spawn the refill worker.  Idempotent."""
        with self._lock:
            if self._running:
                return
            self._running = True
            self._failed = False
        self._thread = threading.Thread(
            target=self._refill_loop, name="token-pool-refill", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the worker and drain the pool.  Idempotent."""
        with self._lock:
            self._running = False
            self._need.notify_all()
            self._avail.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        with self._lock:
            # Drain: pre-minted tokens hold client secret keys; they
            # are discarded with the pool rather than left reachable.
            self._tokens.clear()
        obs.gauge("token_pool.depth", 0)

    def __enter__(self) -> "TokenPool":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- taking -------------------------------------------------------------

    def size(self) -> int:
        with self._lock:
            return len(self._tokens)

    def take_nowait(self):
        """Pop one token, or None when the pool is empty right now."""
        with self._lock:
            if not self._tokens:
                return None
            token = self._tokens.popleft()
            self._need.notify()
            obs.gauge("token_pool.depth", len(self._tokens))
            return token

    def take(self, timeout: float | None = None):
        """Pop one token, waiting up to ``timeout`` seconds for a refill.

        Returns None on timeout or when the pool is closed (or its
        worker failed) while empty -- callers then mint inline.
        """
        with self._lock:
            while not self._tokens:
                if not self._running or self._failed:
                    return None
                if not self._avail.wait(timeout):
                    return None
            token = self._tokens.popleft()
            self._need.notify()
            obs.gauge("token_pool.depth", len(self._tokens))
            return token

    def health(self) -> dict:
        with self._lock:
            status = "ok" if self._running and not self._failed else (
                "failed" if self._failed else "stopped"
            )
            return {
                "status": status,
                "depth": len(self._tokens),
                "target_depth": self.depth,
                "refill_batch": self.batch,
            }

    # -- the refill worker ---------------------------------------------------

    def _refill_loop(self) -> None:
        while True:
            with self._lock:
                while self._running and len(self._tokens) >= self.depth:
                    self._need.wait()
                if not self._running:
                    return
                want = min(self.batch, self.depth - len(self._tokens))
            start = time.perf_counter()
            try:
                minted = list(self._mint_fn(want))
            except Exception:
                # A failing mint path must not spin the worker; takers
                # fall back to inline minting and health reports it.
                logger.exception("token pool refill failed; worker stopping")
                with self._lock:
                    self._failed = True
                    self._running = False
                    self._avail.notify_all()
                return
            elapsed = time.perf_counter() - start
            with self._lock:
                if not self._running:
                    # Closed mid-mint: drop the batch (drain-on-close).
                    return
                self._tokens.extend(minted)
                size = len(self._tokens)
                self._avail.notify_all()
            obs.count("token_pool.refills")
            obs.count("token_pool.minted", len(minted))
            obs.observe("token_pool.refill_seconds", elapsed)
            obs.gauge("token_pool.depth", size)
