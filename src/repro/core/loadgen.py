"""Load generation: sustained query throughput (SS8.1, Table 7).

The paper measures throughput by simulating up to 19 clients against
each service until the servers saturate, then reports queries/second
per phase (text search: 0.5 q/s token generation, 2.9 q/s ranking,
5.0 q/s URL retrieval).  This module drives the simulated services the
same way: a batch of pre-built queries per phase, timed end to end on
the server side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize
from repro.lwe import sampling


@dataclass(frozen=True)
class PhaseThroughput:
    """Measured throughput of one protocol phase."""

    phase: str
    queries: int
    wall_seconds: float

    @property
    def queries_per_second(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-12)


@dataclass
class ThroughputReport:
    """Throughput of all three phases, Table 7 style."""

    token: PhaseThroughput
    ranking: PhaseThroughput
    url: PhaseThroughput

    def rows(self) -> list[tuple[str, float]]:
        return [
            (p.phase, p.queries_per_second)
            for p in (self.token, self.ranking, self.url)
        ]


def measure_throughput(
    engine,
    num_queries: int = 8,
    rng: np.random.Generator | None = None,
) -> ThroughputReport:
    """Saturate each service with pre-built queries and time it.

    Client-side work (embedding, encryption, decryption) is excluded,
    matching the paper's server-throughput methodology.
    """
    rng = sampling.resolve_rng(rng, fallback_seed=0)
    index = engine.index

    # Phase 1: token generation (the coordinator's offline work).
    from repro.homenc.token import make_client_keys

    schemes = {
        "ranking": index.ranking_scheme,
        "url": index.url_scheme,
    }
    key_batches = [
        make_client_keys(schemes, rng)[1] for _ in range(max(2, num_queries // 4))
    ]
    start = time.perf_counter()
    for enc_keys in key_batches:
        index.token_factory.mint(enc_keys)
    token = PhaseThroughput(
        "token", len(key_batches), time.perf_counter() - start
    )

    # Phase 2: ranking answers.
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(
                index.embeddings[i % index.num_docs]
                * index.quantization_gain,
                index.config.quantization(),
            ),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(num_queries)
    ]
    start = time.perf_counter()
    for query in queries:
        engine.ranking_service.answer(query)
    ranking = PhaseThroughput(
        "ranking", num_queries, time.perf_counter() - start
    )

    # Phase 3: URL answers.
    url_keys = index.url_scheme.gen_keys(rng)
    from repro.pir.simplepir import PirQuery

    url_queries = []
    for i in range(num_queries):
        sel = index.url_db.selection_vector(i % index.url_db.num_records)
        url_queries.append(
            PirQuery(ciphertext=index.url_scheme.encrypt(url_keys, sel, rng))
        )
    start = time.perf_counter()
    for query in url_queries:
        engine.url_service.answer(query)
    url = PhaseThroughput("url", num_queries, time.perf_counter() - start)

    return ThroughputReport(token=token, ranking=ranking, url=url)
