"""Load generation: sustained query throughput (SS8.1, Table 7).

The paper measures throughput by simulating up to 19 clients against
each service until the servers saturate, then reports queries/second
per phase (text search: 0.5 q/s token generation, 2.9 q/s ranking,
5.0 q/s URL retrieval).  This module drives the simulated services the
same way: a batch of pre-built queries per phase, each timed
individually on the server side, so a run yields both throughput
(queries/second) and the latency distribution (p50/p95/p99).

Timing uses an injectable monotonic clock (``time.perf_counter`` by
default; tests inject :class:`repro.obs.ManualClock`) -- wall-clock
reads are banned in library code by the ``api-wallclock`` lint rule.
Results export to the versioned ``BENCH_throughput.json`` /
``BENCH_latency.json`` files (schema ``repro.obs.bench/v1``, see
EXPERIMENTS.md) so every PR leaves a machine-readable perf trajectory.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize
from repro.lwe import sampling
from repro.obs.clock import Clock
from repro.obs.export import write_bench_json
from repro.obs.metrics import MetricsRegistry, percentile


@dataclass(frozen=True)
class PhaseThroughput:
    """Measured throughput of one protocol phase."""

    phase: str
    queries: int
    wall_seconds: float
    latencies: tuple[float, ...] = field(default=())

    @property
    def queries_per_second(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-12)

    def latency_quantile(self, q: float) -> float | None:
        """Exact per-query latency quantile, or None if not recorded."""
        if not self.latencies:
            return None
        return percentile(self.latencies, q)

    @property
    def p50(self) -> float | None:
        return self.latency_quantile(0.50)

    @property
    def p95(self) -> float | None:
        return self.latency_quantile(0.95)

    @property
    def p99(self) -> float | None:
        return self.latency_quantile(0.99)


@dataclass
class ThroughputReport:
    """Throughput of all three phases, Table 7 style."""

    token: PhaseThroughput
    ranking: PhaseThroughput
    url: PhaseThroughput

    def phases(self) -> tuple[PhaseThroughput, PhaseThroughput, PhaseThroughput]:
        return (self.token, self.ranking, self.url)

    def rows(self) -> list[tuple[str, float]]:
        return [(p.phase, p.queries_per_second) for p in self.phases()]

    def throughput_data(self) -> dict:
        """The ``data`` block of BENCH_throughput.json."""
        return {
            "phases": {
                p.phase: {
                    "queries": p.queries,
                    "wall_seconds": p.wall_seconds,
                    "queries_per_second": p.queries_per_second,
                }
                for p in self.phases()
            }
        }

    def latency_data(self) -> dict:
        """The ``data`` block of BENCH_latency.json."""
        out = {}
        for p in self.phases():
            lats = p.latencies
            out[p.phase] = {
                "count": len(lats),
                "mean_s": sum(lats) / len(lats) if lats else None,
                "min_s": min(lats) if lats else None,
                "max_s": max(lats) if lats else None,
                "p50_s": p.p50,
                "p95_s": p.p95,
                "p99_s": p.p99,
            }
        return {"phases": out}


def write_bench_files(
    report: ThroughputReport, out_dir
) -> tuple[pathlib.Path, pathlib.Path]:
    """Write BENCH_throughput.json + BENCH_latency.json; return paths."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    throughput = write_bench_json(
        out_dir / "BENCH_throughput.json",
        "throughput",
        report.throughput_data(),
    )
    latency = write_bench_json(
        out_dir / "BENCH_latency.json", "latency", report.latency_data()
    )
    return throughput, latency


def _timed_phase(
    phase: str,
    jobs,
    clock: Clock,
    registry: MetricsRegistry | None,
) -> PhaseThroughput:
    """Run the prepared thunks, timing each one individually."""
    latencies = []
    for job in jobs:
        start = clock()
        job()
        elapsed = clock() - start
        latencies.append(elapsed)
        if registry is not None:
            registry.histogram(f"loadgen.{phase}.seconds").observe(elapsed)
    return PhaseThroughput(
        phase=phase,
        queries=len(latencies),
        wall_seconds=sum(latencies),
        latencies=tuple(latencies),
    )


def measure_throughput(
    engine,
    num_queries: int = 8,
    rng: np.random.Generator | None = None,
    clock: Clock | None = None,
    registry: MetricsRegistry | None = None,
    via_rpc: bool = False,
) -> ThroughputReport:
    """Saturate each service with pre-built queries and time it.

    Client-side work (embedding, encryption, decryption) is excluded,
    matching the paper's server-throughput methodology.  Pass a
    ``registry`` to additionally stream per-query latencies into
    ``loadgen.<phase>.seconds`` histograms.

    With ``via_rpc=True`` every job crosses the engine's transport
    (``RpcChannel.call`` with wire encoding) instead of invoking the
    service objects directly, so the measurement includes serialization
    and -- against a socket transport -- the network itself.  This is
    also the only mode a remote-connected engine supports, since it
    holds no local service objects.
    """
    rng = sampling.resolve_rng(rng, fallback_seed=0)
    clock = clock if clock is not None else time.perf_counter
    index = engine.index
    if not via_rpc and engine.ranking_service is None:
        raise ValueError(
            "this engine is remote-connected; pass via_rpc=True"
        )
    if via_rpc:
        from repro.net import wire
        from repro.net.rpc import RpcChannel
        from repro.net.transport import TrafficLog

        channel = RpcChannel(TrafficLog(), engine.transport)

    # Phase 1: token generation (the coordinator's offline work).
    from repro.homenc.token import make_client_keys

    schemes = {
        "ranking": index.ranking_scheme,
        "url": index.url_scheme,
    }
    key_batches = [
        make_client_keys(schemes, rng)[1]
        for _ in range(max(2, num_queries // 4))
    ]
    if via_rpc:
        mint_blobs = [
            wire.encode_mint_request(enc_keys) for enc_keys in key_batches
        ]
        token_jobs = [
            (lambda blob=blob: channel.call("token", "token", "mint", blob))
            for blob in mint_blobs
        ]
    else:
        token_jobs = [
            (lambda enc_keys=enc_keys: index.token_factory.mint(enc_keys))
            for enc_keys in key_batches
        ]
    token = _timed_phase("token", token_jobs, clock, registry)

    # Phase 2: ranking answers.
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(
                index.embeddings[i % index.num_docs]
                * index.quantization_gain,
                index.config.quantization(),
            ),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(num_queries)
    ]
    if via_rpc:
        rank_blobs = [
            wire.encode_ciphertext(query.ciphertext) for query in queries
        ]
        ranking_jobs = [
            (
                lambda blob=blob: channel.call(
                    "ranking", "ranking", "answer", blob
                )
            )
            for blob in rank_blobs
        ]
    else:
        ranking_jobs = [
            (lambda query=query: engine.ranking_service.answer(query))
            for query in queries
        ]
    ranking = _timed_phase("ranking", ranking_jobs, clock, registry)

    # Phase 3: URL answers.
    url_keys = index.url_scheme.gen_keys(rng)
    from repro.pir.simplepir import PirQuery

    url_queries = []
    for i in range(num_queries):
        sel = index.url_db.selection_vector(i % index.url_db.num_records)
        url_queries.append(
            PirQuery(ciphertext=index.url_scheme.encrypt(url_keys, sel, rng))
        )
    if via_rpc:
        url_blobs = [
            wire.encode_ciphertext(query.ciphertext) for query in url_queries
        ]
        url_jobs = [
            (lambda blob=blob: channel.call("url", "url", "answer", blob))
            for blob in url_blobs
        ]
    else:
        url_jobs = [
            (lambda query=query: engine.url_service.answer(query))
            for query in url_queries
        ]
    url = _timed_phase("url", url_jobs, clock, registry)

    return ThroughputReport(token=token, ranking=ranking, url=url)


@dataclass(frozen=True)
class ConcurrentLoadReport:
    """Closed-loop multi-client ranking load, through the batcher."""

    clients: int
    queries: int
    wall_seconds: float
    latencies: tuple[float, ...]
    batches: int
    mean_batch_size: float
    largest_batch: int
    failed_queries: int

    @property
    def queries_per_second(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-12)

    def latency_quantile(self, q: float) -> float | None:
        if not self.latencies:
            return None
        return percentile(self.latencies, q)

    def data(self) -> dict:
        """A ``repro.obs.bench/v1``-ready data block."""
        return {
            "clients": self.clients,
            "queries": self.queries,
            "wall_seconds": self.wall_seconds,
            "queries_per_second": self.queries_per_second,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "largest_batch": self.largest_batch,
            "failed_queries": self.failed_queries,
            "p50_s": self.latency_quantile(0.50),
            "p95_s": self.latency_quantile(0.95),
            "p99_s": self.latency_quantile(0.99),
        }


def measure_concurrent_ranking(
    engine,
    num_clients: int = 4,
    queries_per_client: int = 4,
    max_batch_size: int | None = None,
    max_batch_wait_ms: float = 2.0,
    rng: np.random.Generator | None = None,
    clock: Clock | None = None,
    registry: MetricsRegistry | None = None,
) -> ConcurrentLoadReport:
    """Closed-loop concurrent load: the mode that exercises the batcher.

    ``num_clients`` threads each submit ``queries_per_client`` ranking
    queries back-to-back (closed loop: a client sends its next query
    only after its previous answer arrives), all through one
    :class:`~repro.core.scheduler.BatchScheduler` in front of the
    engine's ranking coordinator.  Because clients block in
    ``submit``, concurrency is what fills batches -- exactly the
    serving-path shape, where transport worker threads park in the
    admission queue.

    Uses the coordinator's attached scheduler when one is running
    (i.e. the engine was built with ``max_batch_size > 1``); otherwise
    a temporary scheduler is started for the run and stopped after.
    Every answer is checked against nothing here -- bit-identity is the
    test suite's job -- but failures are counted, not swallowed.
    """
    if num_clients < 1:
        raise ValueError("need at least one client")
    if queries_per_client < 1:
        raise ValueError("need at least one query per client")
    rng = sampling.resolve_rng(rng, fallback_seed=0)
    clock = clock if clock is not None else time.perf_counter
    index = engine.index
    service = engine.ranking_service
    if service is None:
        raise ValueError(
            "concurrent ranking load needs a local ranking service"
        )

    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    per_client_queries = []
    for c in range(num_clients):
        per_client_queries.append(
            [
                client.build_query(
                    keys,
                    quantize(
                        index.embeddings[(c + i) % index.num_docs]
                        * index.quantization_gain,
                        index.config.quantization(),
                    ),
                    (c + i) % index.layout.num_clusters,
                    rng,
                )
                for i in range(queries_per_client)
            ]
        )

    from repro.core.scheduler import BatchScheduler

    attached = getattr(service, "scheduler", None)
    if attached is not None and attached.running:
        scheduler = attached
        own_scheduler = False
    else:
        scheduler = BatchScheduler(
            service,
            max_batch_size=(
                max_batch_size if max_batch_size is not None else num_clients
            ),
            max_batch_wait_ms=max_batch_wait_ms,
        )
        own_scheduler = True

    lock = threading.Lock()
    latencies: list[float] = []  # guarded-by: lock
    failures: list[BaseException] = []  # guarded-by: lock
    stats_before = (scheduler.stats.batches, scheduler.stats.queries)

    def run_client(qs) -> None:
        mine = []
        errs = []
        for query in qs:
            start = clock()
            try:
                scheduler.submit(query)
            except Exception as exc:  # count, keep the loop closed
                errs.append(exc)
                continue
            mine.append(clock() - start)
        with lock:
            latencies.extend(mine)
            failures.extend(errs)

    if own_scheduler:
        scheduler.start()
    try:
        threads = [
            threading.Thread(target=run_client, args=(qs,), daemon=True)
            for qs in per_client_queries
        ]
        wall_start = clock()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_seconds = clock() - wall_start
    finally:
        if own_scheduler:
            scheduler.stop()

    if registry is not None:
        hist = registry.histogram("loadgen.concurrent_ranking.seconds")
        for lat in latencies:
            hist.observe(lat)
    batches = scheduler.stats.batches - stats_before[0]
    answered = scheduler.stats.queries - stats_before[1]
    return ConcurrentLoadReport(
        clients=num_clients,
        queries=len(latencies),
        wall_seconds=wall_seconds,
        latencies=tuple(latencies),
        batches=batches,
        mean_batch_size=answered / batches if batches else 0.0,
        largest_batch=scheduler.stats.max_batch,
        failed_queries=len(failures),
    )
