"""Load generation: sustained query throughput (SS8.1, Table 7).

The paper measures throughput by simulating up to 19 clients against
each service until the servers saturate, then reports queries/second
per phase (text search: 0.5 q/s token generation, 2.9 q/s ranking,
5.0 q/s URL retrieval).  This module drives the simulated services the
same way: a batch of pre-built queries per phase, each timed
individually on the server side, so a run yields both throughput
(queries/second) and the latency distribution (p50/p95/p99).

Timing uses an injectable monotonic clock (``time.perf_counter`` by
default; tests inject :class:`repro.obs.ManualClock`) -- wall-clock
reads are banned in library code by the ``api-wallclock`` lint rule.
Results export to the versioned ``BENCH_throughput.json`` /
``BENCH_latency.json`` files (schema ``repro.obs.bench/v1``, see
EXPERIMENTS.md) so every PR leaves a machine-readable perf trajectory.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize
from repro.lwe import sampling
from repro.obs.clock import Clock
from repro.obs.export import write_bench_json
from repro.obs.metrics import MetricsRegistry, percentile


@dataclass(frozen=True)
class PhaseThroughput:
    """Measured throughput of one protocol phase."""

    phase: str
    queries: int
    wall_seconds: float
    latencies: tuple[float, ...] = field(default=())

    @property
    def queries_per_second(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-12)

    def latency_quantile(self, q: float) -> float | None:
        """Exact per-query latency quantile, or None if not recorded."""
        if not self.latencies:
            return None
        return percentile(self.latencies, q)

    @property
    def p50(self) -> float | None:
        return self.latency_quantile(0.50)

    @property
    def p95(self) -> float | None:
        return self.latency_quantile(0.95)

    @property
    def p99(self) -> float | None:
        return self.latency_quantile(0.99)


@dataclass
class ThroughputReport:
    """Throughput of all three phases, Table 7 style."""

    token: PhaseThroughput
    ranking: PhaseThroughput
    url: PhaseThroughput

    def phases(self) -> tuple[PhaseThroughput, PhaseThroughput, PhaseThroughput]:
        return (self.token, self.ranking, self.url)

    def rows(self) -> list[tuple[str, float]]:
        return [(p.phase, p.queries_per_second) for p in self.phases()]

    def throughput_data(self) -> dict:
        """The ``data`` block of BENCH_throughput.json."""
        return {
            "phases": {
                p.phase: {
                    "queries": p.queries,
                    "wall_seconds": p.wall_seconds,
                    "queries_per_second": p.queries_per_second,
                }
                for p in self.phases()
            }
        }

    def latency_data(self) -> dict:
        """The ``data`` block of BENCH_latency.json."""
        out = {}
        for p in self.phases():
            lats = p.latencies
            out[p.phase] = {
                "count": len(lats),
                "mean_s": sum(lats) / len(lats) if lats else None,
                "min_s": min(lats) if lats else None,
                "max_s": max(lats) if lats else None,
                "p50_s": p.p50,
                "p95_s": p.p95,
                "p99_s": p.p99,
            }
        return {"phases": out}


def write_bench_files(
    report: ThroughputReport, out_dir
) -> tuple[pathlib.Path, pathlib.Path]:
    """Write BENCH_throughput.json + BENCH_latency.json; return paths."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    throughput = write_bench_json(
        out_dir / "BENCH_throughput.json",
        "throughput",
        report.throughput_data(),
    )
    latency = write_bench_json(
        out_dir / "BENCH_latency.json", "latency", report.latency_data()
    )
    return throughput, latency


def _timed_phase(
    phase: str,
    jobs,
    clock: Clock,
    registry: MetricsRegistry | None,
) -> PhaseThroughput:
    """Run the prepared thunks, timing each one individually."""
    latencies = []
    for job in jobs:
        start = clock()
        job()
        elapsed = clock() - start
        latencies.append(elapsed)
        if registry is not None:
            registry.histogram(f"loadgen.{phase}.seconds").observe(elapsed)
    return PhaseThroughput(
        phase=phase,
        queries=len(latencies),
        wall_seconds=sum(latencies),
        latencies=tuple(latencies),
    )


def measure_throughput(
    engine,
    num_queries: int = 8,
    rng: np.random.Generator | None = None,
    clock: Clock | None = None,
    registry: MetricsRegistry | None = None,
    via_rpc: bool = False,
) -> ThroughputReport:
    """Saturate each service with pre-built queries and time it.

    Client-side work (embedding, encryption, decryption) is excluded,
    matching the paper's server-throughput methodology.  Pass a
    ``registry`` to additionally stream per-query latencies into
    ``loadgen.<phase>.seconds`` histograms.

    With ``via_rpc=True`` every job crosses the engine's transport
    (``RpcChannel.call`` with wire encoding) instead of invoking the
    service objects directly, so the measurement includes serialization
    and -- against a socket transport -- the network itself.  This is
    also the only mode a remote-connected engine supports, since it
    holds no local service objects.
    """
    rng = sampling.resolve_rng(rng, fallback_seed=0)
    clock = clock if clock is not None else time.perf_counter
    index = engine.index
    if not via_rpc and engine.ranking_service is None:
        raise ValueError(
            "this engine is remote-connected; pass via_rpc=True"
        )
    if via_rpc:
        from repro.net import wire
        from repro.net.rpc import RpcChannel
        from repro.net.transport import TrafficLog

        channel = RpcChannel(TrafficLog(), engine.transport)

    # Phase 1: token generation (the coordinator's offline work).
    from repro.homenc.token import make_client_keys

    schemes = {
        "ranking": index.ranking_scheme,
        "url": index.url_scheme,
    }
    key_batches = [
        make_client_keys(schemes, rng)[1]
        for _ in range(max(2, num_queries // 4))
    ]
    if via_rpc:
        mint_blobs = [
            wire.encode_mint_request(enc_keys) for enc_keys in key_batches
        ]
        token_jobs = [
            (lambda blob=blob: channel.call("token", "token", "mint", blob))
            for blob in mint_blobs
        ]
    else:
        token_jobs = [
            (lambda enc_keys=enc_keys: index.token_factory.mint(enc_keys))
            for enc_keys in key_batches
        ]
    token = _timed_phase("token", token_jobs, clock, registry)

    # Phase 2: ranking answers.
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(
                index.embeddings[i % index.num_docs]
                * index.quantization_gain,
                index.config.quantization(),
            ),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(num_queries)
    ]
    if via_rpc:
        rank_blobs = [
            wire.encode_ciphertext(query.ciphertext) for query in queries
        ]
        ranking_jobs = [
            (
                lambda blob=blob: channel.call(
                    "ranking", "ranking", "answer", blob
                )
            )
            for blob in rank_blobs
        ]
    else:
        ranking_jobs = [
            (lambda query=query: engine.ranking_service.answer(query))
            for query in queries
        ]
    ranking = _timed_phase("ranking", ranking_jobs, clock, registry)

    # Phase 3: URL answers.
    url_keys = index.url_scheme.gen_keys(rng)
    from repro.pir.simplepir import PirQuery

    url_queries = []
    for i in range(num_queries):
        sel = index.url_db.selection_vector(i % index.url_db.num_records)
        url_queries.append(
            PirQuery(ciphertext=index.url_scheme.encrypt(url_keys, sel, rng))
        )
    if via_rpc:
        url_blobs = [
            wire.encode_ciphertext(query.ciphertext) for query in url_queries
        ]
        url_jobs = [
            (lambda blob=blob: channel.call("url", "url", "answer", blob))
            for blob in url_blobs
        ]
    else:
        url_jobs = [
            (lambda query=query: engine.url_service.answer(query))
            for query in url_queries
        ]
    url = _timed_phase("url", url_jobs, clock, registry)

    return ThroughputReport(token=token, ranking=ranking, url=url)
