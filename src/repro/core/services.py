"""The serving-plane roster: every service a deployment runs.

One Tiptoe deployment serves four names:

``ranking``
    The sharded coordinator (:class:`ShardedRankingService`).
``url``
    The URL PIR server (:class:`UrlService`).
``token``
    The mint of SS6.3 (:class:`TokenMintService`), which evaluates the
    double layer over the hints under client-supplied encrypted keys.
``hint``
    Raw hint download (:class:`HintService`) for the classic
    (hint-storing) client mode -- the counterfactual SS6 measures
    against.

:func:`build_services` assembles all four from a built
:class:`~repro.core.indexer.TiptoeIndex`; the result plugs equally
into an in-process :class:`~repro.net.transport.LoopbackTransport` or
a :class:`~repro.net.tcp.ServerRunner` listening on TCP.
"""

from __future__ import annotations

import logging

from repro.core.cluster_runtime import ShardedRankingService
from repro.core.url_service import UrlService
from repro.net import wire
from repro.net.rpc import ServiceEndpoint
from repro.net.service import Service

logger = logging.getLogger(__name__)


class TokenMintService(Service):
    """The query-token mint (SS6.3).

    ``mint`` takes the client's outer-encrypted inner keys and returns
    the double-layer hint products; ``mint_many`` does the same for a
    batch of clients in one hint pass (the NTTs amortize).  Nothing
    here depends on any future query.

    A :class:`~repro.core.precompute.TokenPool` may be attached
    (mirroring the ranking service's scheduler): its refill worker then
    starts and stops with this service's ``open`` / ``close``.
    """

    service_name = "token"

    def __init__(self, token_factory):
        self.token_factory = token_factory
        self._pool = None

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("mint", self._handle_mint)
        endpoint.register("mint_many", self._handle_mint_many)

    def _handle_mint(self, payload: bytes) -> bytes:
        enc_keys = wire.decode_mint_request(payload)
        minted = self.token_factory.mint(enc_keys)
        return wire.encode_token_payload(minted)

    def _handle_mint_many(self, payload: bytes) -> bytes:
        enc_keys_list = wire.decode_mint_many_request(payload)
        minted = self.token_factory.mint_many(enc_keys_list)
        return wire.encode_mint_many_payload(minted)

    def attach_pool(self, pool) -> None:
        """Install the pre-mint pool; its lifecycle follows this
        service's ``open``/``close`` once attached."""
        self._pool = pool

    @property
    def pool(self):
        return self._pool

    def open(self) -> None:
        if self._pool is not None:
            self._pool.start()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()

    def health(self) -> dict:
        report = {"service": self.service_name, "status": "ok"}
        if self._pool is not None:
            report["pool"] = self._pool.health()
        return report


class HintService(Service):
    """Raw hint download for the classic client mode (SS6.1).

    Token-mode clients never call this; it exists so the hint-storage
    counterfactual is measurable over the same wire as everything else.
    """

    service_name = "hint"

    def __init__(self, index):
        self.index = index

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("ranking", self._handle_ranking_hint)
        endpoint.register("url", self._handle_url_hint)

    def _handle_ranking_hint(self, payload: bytes) -> bytes:
        return wire.encode_matrix(
            self.index.ranking_prep.hint,
            self.index.ranking_scheme.params.inner.q_bits,
        )

    def _handle_url_hint(self, payload: bytes) -> bytes:
        return wire.encode_matrix(
            self.index.url_prep.hint,
            self.index.url_scheme.params.inner.q_bits,
        )


def resolve_kernel_selection(
    config, precompute: dict | None, which: str
) -> tuple[str | None, dict]:
    """Pick the kernel backend and plan options for one service matrix.

    ``which`` is ``"ranking"`` or ``"url"``.  Precedence:

    1. An explicit ``config.kernel_backend`` (anything but ``"auto"``)
       wins; the sidecar's tuned options apply only when its record was
       tuned for that same backend.
    2. ``"auto"`` with a tuned ``kernel_plan`` sidecar record uses the
       record's backend and options -- ``serve`` cold-starts tuned.
    3. Otherwise the reference backend with defaults (returned as
       ``(None, {})``).

    Sidecars travel: an index tuned on a compiler-equipped build host
    may be served somewhere the tuned backend cannot run (or by a newer
    build that renamed it).  A record naming an unknown/unavailable
    backend -- or one that fails to parse at all -- is *advice we
    cannot take*: log a warning and serve on reference defaults rather
    than refusing to cold-start.

    Selection reads configuration and build-time artifacts only --
    never query data (SECURITY.md).
    """
    from repro.lwe.backends import KernelPlan, backend_available

    record = ((precompute or {}).get("kernel_plan") or {}).get(which)
    configured = getattr(config, "kernel_backend", "auto") or "auto"
    if configured != "auto":
        if record is not None and record.get("backend") == configured:
            try:
                return configured, KernelPlan.from_dict(record).plan_kwargs()
            except ValueError as exc:
                logger.warning(
                    "ignoring malformed %s kernel plan record (%s);"
                    " using %s with default options",
                    which,
                    exc,
                    configured,
                )
        return configured, {}
    if record is not None:
        try:
            tuned = KernelPlan.from_dict(record)
        except ValueError as exc:
            logger.warning(
                "ignoring malformed %s kernel plan record (%s);"
                " falling back to the reference backend",
                which,
                exc,
            )
            return None, {}
        if not backend_available(tuned.backend):
            logger.warning(
                "tuned %s kernel backend %r is not available on this"
                " host; falling back to the reference backend",
                which,
                tuned.backend,
            )
            return None, {}
        return tuned.backend, tuned.plan_kwargs()
    return None, {}


def build_services(
    index, *, shard: int | None = None, num_shards: int = 1
) -> dict[str, Service]:
    """Stand up the full service roster for one built index.

    When the config asks for cross-query batching
    (``max_batch_size > 1``) the ranking coordinator gets a
    :class:`~repro.core.scheduler.BatchScheduler` attached; its
    dispatcher starts and stops with the service's ``open``/``close``.

    An index loaded from a ``repro.index/v2`` artifact with a validated
    precompute sidecar carries plan metadata (``index.precompute``);
    the ranking and URL services then skip their matrix entry scans
    when building stacked-GEMM plans.

    With ``shard``/``num_shards`` set, the ranking service holds only
    that shard's cluster columns and returns *partial* answers (see
    :meth:`ShardedRankingService.build_shard`); url/token/hint remain
    full -- they are cheap relative to the ranking scan and keeping
    them whole lets any fleet worker serve them.
    """
    plans = (index.precompute or {}).get("plans", {})
    ranking_meta = plans.get("ranking")
    entry_bound = (
        int(ranking_meta["entry_bound"]) if ranking_meta is not None else None
    )
    ranking_backend, ranking_opts = resolve_kernel_selection(
        index.config, index.precompute, "ranking"
    )
    url_backend, url_opts = resolve_kernel_selection(
        index.config, index.precompute, "url"
    )
    if shard is not None:
        ranking = ShardedRankingService.build_shard(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            shard=shard,
            num_shards=num_shards,
            num_workers=index.config.num_workers,
            entry_bound=entry_bound,
            kernel_backend=ranking_backend,
            kernel_opts=ranking_opts,
        )
    else:
        ranking = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=index.config.num_workers,
            entry_bound=entry_bound,
            kernel_backend=ranking_backend,
            kernel_opts=ranking_opts,
        )
    if index.config.max_batch_size > 1:
        from repro.core.scheduler import BatchScheduler

        ranking.attach_scheduler(
            BatchScheduler(
                ranking,
                max_batch_size=index.config.max_batch_size,
                max_batch_wait_ms=index.config.max_batch_wait_ms,
            )
        )
    services: list[Service] = [
        ranking,
        UrlService(
            index.url_db,
            index.url_scheme,
            plan_meta=plans.get("url"),
            kernel_backend=url_backend,
            kernel_opts=url_opts,
        ),
        TokenMintService(index.token_factory),
        HintService(index),
    ]
    return {service.service_name: service for service in services}
