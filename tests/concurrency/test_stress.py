"""Dynamic validation of the static lock-order graph.

The lock-discipline checker derives a static acquisition-order graph
(`lock_order_edges`).  This harness swaps instrumented locks into the
real concurrency surfaces -- the token pool's refill/drain path and the
batch scheduler's admission queue -- hammers them from many threads,
and asserts that every lock order actually observed at runtime is an
edge the static graph already knows about (and that both are acyclic).
"""

import threading
import time
from pathlib import Path

import pytest

from repro.analysis.checkers.locks import find_cycles, lock_order_edges
from repro.analysis.ir import CallGraph, Program
from repro.core.precompute import TokenPool
from repro.core.scheduler import BatchScheduler
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry

SRC = Path(__file__).resolve().parents[2] / "src"


# -- the instrumented-lock fixture -------------------------------------------


class LockOrderRecorder:
    """Collects (held, acquired) pairs per thread across all locks."""

    def __init__(self):
        self._local = threading.local()
        self._edges_lock = threading.Lock()
        self.edges: set[tuple[str, str]] = set()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def acquired(self, name: str) -> None:
        stack = self._stack()
        new_edges = {(held, name) for held in stack}
        if new_edges:
            with self._edges_lock:
                self.edges |= new_edges
        stack.append(name)

    def released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break


class InstrumentedLock:
    """A ``threading.Lock`` stand-in that reports to a recorder.

    Only the public lock protocol is implemented, so a
    ``threading.Condition`` built on top of it falls back to plain
    ``acquire``/``release`` -- which keeps every (re)acquisition,
    including the one after ``wait``, visible to the recorder.
    """

    def __init__(self, name: str, recorder: LockOrderRecorder):
        self._name = name
        self._recorder = recorder
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._recorder.acquired(self._name)
        return got

    def release(self) -> None:
        self._recorder.released(self._name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


@pytest.fixture(scope="module")
def static_edges():
    program = Program.load(sorted((SRC / "repro").rglob("*.py")))
    edges = lock_order_edges(program, CallGraph(program))
    assert find_cycles(edges) == [], "static lock-order graph has a cycle"
    return set(edges)


@pytest.fixture
def recorder():
    return LockOrderRecorder()


@pytest.fixture
def instrumented_obs(recorder):
    """An enabled metrics registry whose locks report to the recorder."""
    registry = MetricsRegistry()
    registry._lock = InstrumentedLock("MetricsRegistry._lock", recorder)
    obs.enable(metrics=registry)
    # Pre-create the metrics the pool touches so their locks are ours.
    for name in ("token_pool.depth", "client.tokens_available"):
        registry.gauge(name)._lock = InstrumentedLock(
            "Gauge._lock", recorder
        )
    for name in ("token_pool.refills", "token_pool.minted"):
        registry.counter(name)._lock = InstrumentedLock(
            "Counter._lock", recorder
        )
    registry.histogram("token_pool.refill_seconds")._lock = (
        InstrumentedLock("Histogram._lock", recorder)
    )
    yield registry
    obs.disable()


def instrument_pool(pool: TokenPool, recorder: LockOrderRecorder) -> None:
    pool._lock = InstrumentedLock("TokenPool._lock", recorder)
    pool._need = threading.Condition(pool._lock)
    pool._avail = threading.Condition(pool._lock)


def instrument_scheduler(
    sched: BatchScheduler, recorder: LockOrderRecorder
) -> None:
    sched._lock = InstrumentedLock("BatchScheduler._lock", recorder)
    sched._wakeup = threading.Condition(sched._lock)


# -- the token pool under fire ------------------------------------------------


class TestTokenPoolStress:
    TAKERS = 4
    TAKES_EACH = 40

    def test_refill_drain_hammer_obeys_static_lock_order(
        self, recorder, instrumented_obs
    ):
        minted_ids = []
        mint_lock = threading.Lock()

        def mint(count):
            with mint_lock:
                start = len(minted_ids)
                batch = list(range(start, start + count))
                minted_ids.extend(batch)
            time.sleep(0.0002)  # make refills overlap with takers
            return batch

        taken: list[list] = [[] for _ in range(self.TAKERS)]

        pool = TokenPool(mint, depth=8, batch=4)
        instrument_pool(pool, recorder)

        def taker(slot):
            for _ in range(self.TAKES_EACH):
                token = pool.take(timeout=2.0)
                if token is not None:
                    taken[slot].append(token)

        with pool:
            threads = [
                threading.Thread(target=taker, args=(i,), daemon=True)
                for i in range(self.TAKERS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        got = [tok for slot in taken for tok in slot]
        assert len(got) == len(set(got)), "a token was handed out twice"
        assert got, "the pool never served a token"

        observed = recorder.edges
        assert observed, "instrumentation observed no nested acquisitions"
        assert ("TokenPool._lock", "MetricsRegistry._lock") in observed
        assert ("TokenPool._lock", "Gauge._lock") in observed

    def test_observed_orders_are_a_subset_of_the_static_graph(
        self, recorder, instrumented_obs, static_edges
    ):
        pool = TokenPool(lambda n: list(range(n)), depth=4, batch=2)
        instrument_pool(pool, recorder)
        with pool:
            for _ in range(32):
                pool.take(timeout=2.0)
        observed = recorder.edges
        assert observed <= static_edges, (
            f"runtime lock orders unknown to the static graph: "
            f"{observed - static_edges}"
        )
        dummy = {edge: ("<runtime>", 0) for edge in observed}
        assert find_cycles(dummy) == []


# -- the batch scheduler under fire -------------------------------------------


class _FakeBatch:
    def __init__(self, queries):
        self.queries = queries

    @classmethod
    def from_queries(cls, queries):
        return cls(queries)


class _FakeStacked:
    def __init__(self, answers):
        self._answers = answers

    def split(self):
        return self._answers


class _FakeService:
    """Answers a stacked batch with each query's own payload."""

    def answer_stacked(self, batch):
        time.sleep(0.0005)  # let the admission queue actually fill
        return _FakeStacked([("answer", q) for q in batch.queries])


class TestSchedulerStress:
    CLIENTS = 8
    QUERIES_EACH = 25

    def test_admission_hammer_obeys_static_lock_order(
        self, recorder, instrumented_obs, static_edges, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.core.scheduler.RankingBatch", _FakeBatch
        )
        sched = BatchScheduler(
            _FakeService(), max_batch_size=4, max_batch_wait_ms=1.0
        )
        instrument_scheduler(sched, recorder)

        results: list[list] = [[] for _ in range(self.CLIENTS)]

        def client(slot):
            for i in range(self.QUERIES_EACH):
                results[slot].append(sched.submit((slot, i)))

        with sched:
            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        # Every query got its own answer back, in submission order.
        for slot in range(self.CLIENTS):
            assert results[slot] == [
                ("answer", (slot, i)) for i in range(self.QUERIES_EACH)
            ]
        assert sched.stats.queries == self.CLIENTS * self.QUERIES_EACH
        assert sched.stats.max_batch <= 4

        observed = recorder.edges
        assert observed <= static_edges, (
            f"runtime lock orders unknown to the static graph: "
            f"{observed - static_edges}"
        )
        dummy = {edge: ("<runtime>", 0) for edge in observed}
        assert find_cycles(dummy) == []
