"""Tests for the repro.stage/v1 checkpoint format."""

import json

import pytest

from repro.ingest import SCHEMA, StageError, StageStore
from repro.ingest.stage import stage_key


class TestStageKey:
    def test_deterministic(self):
        a = stage_key("embed", {"dim": 12}, ["abc"])
        assert a == stage_key("embed", {"dim": 12}, ["abc"])

    def test_sensitive_to_every_component(self):
        base = stage_key("embed", {"dim": 12}, ["abc"])
        assert base != stage_key("pack", {"dim": 12}, ["abc"])
        assert base != stage_key("embed", {"dim": 13}, ["abc"])
        assert base != stage_key("embed", {"dim": 12}, ["abd"])
        assert base != stage_key("embed", {"dim": 12}, ["abc", "x"])

    def test_param_order_does_not_matter(self):
        assert stage_key("s", {"a": 1, "b": 2}, []) == stage_key(
            "s", {"b": 2, "a": 1}, []
        )


class TestStageHandle:
    def test_lifecycle(self, tmp_path):
        store = StageStore(tmp_path)
        handle = store.stage("embed", {"dim": 12}, ["abc"])
        assert not handle.is_complete()
        handle.reset()
        (handle.path / "out.bin").write_bytes(b"payload")
        handle.finish({"docs": 7}, {"content_key": "deadbeef"})
        assert handle.is_complete()
        assert handle.counters() == {"docs": 7}
        assert handle.outputs() == {"content_key": "deadbeef"}
        # A fresh handle over the same spool sees the same state.
        again = StageStore(tmp_path).stage("embed", {"dim": 12}, ["abc"])
        assert again.is_complete()

    def test_changed_key_invalidates(self, tmp_path):
        store = StageStore(tmp_path)
        store.stage("embed", {"dim": 12}).reset()
        store.stage("embed", {"dim": 12}).finish()
        # Same stage directory, different params: stale.
        assert not store.stage("embed", {"dim": 16}).is_complete()
        # Different upstream content key: also stale.
        assert not store.stage("embed", {"dim": 12}, ["x"]).is_complete()

    def test_reset_clears_previous_outputs(self, tmp_path):
        handle = StageStore(tmp_path).stage("pack", {})
        handle.reset()
        stale = handle.path / "stale.npy"
        stale.write_bytes(b"old")
        handle.reset()
        assert not stale.exists()
        assert handle.path.is_dir()

    def test_interrupted_stage_is_not_complete(self, tmp_path):
        """A kill before finish() leaves no marker -> recompute."""
        handle = StageStore(tmp_path).stage("cluster", {})
        handle.reset()
        (handle.path / "partial.npy").write_bytes(b"half")
        assert not handle.is_complete()

    def test_foreign_schema_is_rejected(self, tmp_path):
        handle = StageStore(tmp_path).stage("embed", {})
        handle.reset()
        handle.marker_path.write_text(
            json.dumps({"schema": "repro.stage/v999", "complete": True}),
            encoding="utf-8",
        )
        with pytest.raises(StageError, match="schema"):
            handle.is_complete()

    def test_corrupt_marker_is_an_error(self, tmp_path):
        handle = StageStore(tmp_path).stage("embed", {})
        handle.reset()
        handle.marker_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StageError, match="unreadable"):
            handle.is_complete()

    def test_marker_schema_round_trips(self, tmp_path):
        handle = StageStore(tmp_path).stage("source", {"s": 1}, ["k"])
        handle.reset()
        handle.finish({"n": 3}, {"content_key": "c"})
        marker = json.loads(handle.marker_path.read_text(encoding="utf-8"))
        assert marker["schema"] == SCHEMA
        assert marker["stage"] == "source"
        assert marker["key"] == handle.key
        assert marker["complete"] is True


class TestStageStore:
    def test_cache_dir_survives_stage_reset(self, tmp_path):
        store = StageStore(tmp_path)
        cache = store.cache_dir("hint")
        entry = cache / "abc.npy"
        entry.write_bytes(b"contribution")
        for name in ("encrypt", "hint"):
            handle = store.stage(name, {})
            handle.reset()
            handle.reset()
        assert entry.read_bytes() == b"contribution"

    def test_stage_dirs_are_namespaced_by_name(self, tmp_path):
        store = StageStore(tmp_path)
        a = store.stage("embed", {})
        b = store.stage("pack", {})
        assert a.path != b.path
        assert a.path.parent == b.path.parent == store.root
